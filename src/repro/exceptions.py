"""Exception hierarchy for the repro library.

Every error raised on purpose by this library derives from :class:`ReproError`
so that callers can catch library failures without also swallowing genuine
programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A system-model object was constructed with inconsistent parameters."""


class InfeasibleAllocationError(ReproError):
    """An allocation violates a hard constraint of the optimization problem.

    Raised by the strict validators in :mod:`repro.audit.invariants` and
    the audit hooks.  The profit evaluator never raises this; it instead
    reports the violation in the returned
    :class:`~repro.model.profit.ProfitBreakdown` so that search
    algorithms can treat infeasibility as ``-inf`` profit.

    ``violations`` carries the structured
    :class:`~repro.audit.invariants.Violation` records when the raiser
    had them (empty list otherwise), so programmatic callers need not
    parse the message.
    """

    def __init__(self, message: str = "", violations=None) -> None:
        super().__init__(message)
        self.violations = list(violations) if violations else []


class UnstableQueueError(ReproError):
    """A queue was configured with arrival rate >= service rate.

    The M/M/1 mean response time is unbounded in that regime, so analytical
    evaluation is meaningless and the caller made an error upstream.
    """


class SolverError(ReproError):
    """A numerical routine failed to converge or was given bad bracketing."""


class SearchSpaceError(SolverError):
    """An exact solver was asked to enumerate an intractably large space.

    Carries the computed search-space size and the cap it exceeded, so
    callers (the gap harness, tests) can report search effort and decide
    programmatically whether to fall back to branch-and-bound or the
    heuristic instead of parsing the message.
    """

    def __init__(self, message: str, total_assignments: int, cap: int) -> None:
        super().__init__(message)
        self.total_assignments = total_assignments
        self.cap = cap


class WorkloadError(ReproError):
    """A workload/scenario specification is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ConfigurationError(ReproError):
    """A configuration dataclass carries out-of-range values."""


class ExperimentError(ReproError):
    """The experiment engine was asked to run an inconsistent sweep
    (duplicate cell keys, a checkpoint directory from a different sweep,
    an unknown experiment kind)."""


class CellTimeoutError(ReproError):
    """A single experiment cell exceeded its wall-clock budget."""


class ServiceError(ReproError):
    """The online allocation service received an invalid event or was
    asked to restore from an inconsistent snapshot/journal."""
