"""Synthetic arrival-rate traces for the epoch simulation.

The paper treats rate prediction as out of scope but its decision-epoch
design exists *because* traffic moves.  These generators produce the
per-epoch, per-client rate factors (multipliers on the agreed rate) for
the three canonical shapes cloud operators plan around:

* :func:`random_walk_factors` — bounded geometric random walk (the
  default drift model);
* :func:`diurnal_factors` — a day/night sinusoid with per-client phase
  jitter (web traffic);
* :func:`bursty_factors` — a calm baseline punctuated by short
  correlated spikes (flash crowds).

All return an array of shape ``(num_epochs, num_clients)`` clipped to
``[min_factor, max_factor]``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import WorkloadError


def _clip(factors: np.ndarray, min_factor: float, max_factor: float) -> np.ndarray:
    if not 0 < min_factor <= max_factor:
        raise WorkloadError("need 0 < min_factor <= max_factor")
    return np.clip(factors, min_factor, max_factor)


def random_walk_factors(
    num_epochs: int,
    num_clients: int,
    rng: np.random.Generator,
    drift: float = 0.15,
    min_factor: float = 0.3,
    max_factor: float = 1.0,
) -> np.ndarray:
    """Bounded geometric random walk starting at a random level."""
    if num_epochs < 1 or num_clients < 1:
        raise WorkloadError("num_epochs and num_clients must be >= 1")
    levels = np.exp(rng.normal(0.0, drift, size=num_clients))
    rows = []
    for _ in range(num_epochs):
        levels = levels * np.exp(rng.normal(0.0, drift, size=num_clients))
        rows.append(_clip(levels, min_factor, max_factor))
    return np.stack(rows)


def diurnal_factors(
    num_epochs: int,
    num_clients: int,
    rng: np.random.Generator,
    period: int = 8,
    amplitude: float = 0.35,
    base: float = 0.6,
    min_factor: float = 0.1,
    max_factor: float = 1.0,
) -> np.ndarray:
    """Day/night sinusoid; each client gets a random phase offset.

    ``period`` epochs make one "day"; the factor oscillates around
    ``base`` with the given ``amplitude``.
    """
    if num_epochs < 1 or num_clients < 1:
        raise WorkloadError("num_epochs and num_clients must be >= 1")
    if period < 1:
        raise WorkloadError("period must be >= 1")
    phases = rng.uniform(0.0, 2 * math.pi, size=num_clients)
    epochs = np.arange(num_epochs)[:, None]
    wave = base + amplitude * np.sin(2 * math.pi * epochs / period + phases[None, :])
    noise = rng.normal(0.0, amplitude * 0.1, size=wave.shape)
    return _clip(wave + noise, min_factor, max_factor)


def bursty_factors(
    num_epochs: int,
    num_clients: int,
    rng: np.random.Generator,
    baseline: float = 0.4,
    burst_probability: float = 0.15,
    burst_level: float = 1.0,
    correlated_fraction: float = 0.5,
    min_factor: float = 0.1,
    max_factor: float = 1.0,
) -> np.ndarray:
    """Calm baseline with correlated flash-crowd spikes.

    In a burst epoch, ``correlated_fraction`` of the clients (chosen per
    burst) jump to ``burst_level``; everyone else jitters around the
    baseline.
    """
    if num_epochs < 1 or num_clients < 1:
        raise WorkloadError("num_epochs and num_clients must be >= 1")
    if not 0 <= burst_probability <= 1:
        raise WorkloadError("burst_probability must lie in [0, 1]")
    if not 0 <= correlated_fraction <= 1:
        raise WorkloadError("correlated_fraction must lie in [0, 1]")
    rows = []
    for _ in range(num_epochs):
        row = baseline + rng.normal(0.0, baseline * 0.15, size=num_clients)
        if rng.random() < burst_probability:
            num_hot = max(1, int(num_clients * correlated_fraction))
            hot = rng.choice(num_clients, size=num_hot, replace=False)
            row[hot] = burst_level + rng.normal(0.0, 0.05, size=num_hot)
        rows.append(_clip(row, min_factor, max_factor))
    return np.stack(rows)


def make_factors(
    pattern: str,
    num_epochs: int,
    num_clients: int,
    rng: np.random.Generator,
    drift: float = 0.15,
    min_factor: float = 0.3,
    max_factor: float = 1.0,
) -> np.ndarray:
    """Dispatch by pattern name (used by the epoch simulation config)."""
    if pattern == "random_walk":
        return random_walk_factors(
            num_epochs, num_clients, rng, drift, min_factor, max_factor
        )
    if pattern == "diurnal":
        return diurnal_factors(
            num_epochs,
            num_clients,
            rng,
            min_factor=min_factor,
            max_factor=max_factor,
        )
    if pattern == "bursty":
        return bursty_factors(
            num_epochs,
            num_clients,
            rng,
            min_factor=min_factor,
            max_factor=max_factor,
        )
    raise WorkloadError(f"unknown trace pattern {pattern!r}")
