"""Overload template systems: traffic mixes where admission is the lever.

The paper-distribution generator (:mod:`repro.workload.generator`) draws
clients that are profitable on average, so a feasibility-only admission
gate loses little.  Admission policies only separate under a workload
where *some* arrivals are feasible but value-destroying — high service
demand, SLA revenue below its priced power cost.  This module builds
such systems: a normal paper-distribution instance plus a pool of
"junk" template clients (low ``v``, near-flat slope, high arrival rate,
negligible storage) that the open-loop load generator
(:func:`repro.service.loadgen.generate_load`) then clones into the
arrival stream alongside the profitable templates.

Every junk client *fits* — its storage footprint is tiny and its
utilization demand spreads over the fleet — so the baseline
always-admit-if-feasible policy accepts it and pays more in power than
the client returns in revenue.  An opportunity-cost gate refuses it on
sight.  That asymmetry is what ``benchmarks/bench_admission.py``
measures head-to-head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import WorkloadError
from repro.model import Client, ClippedLinearUtility, CloudSystem, UtilityClass
from repro.workload.generator import Range, WorkloadConfig, generate_system

#: Junk utility classes are indexed from here — clear of the paper
#: generator's 0..num_utility_classes range but far below the pricing
#: subsystem's ``PRICED_CLASS_STRIDE``, so repriced junk keeps a unique
#: class index too.
JUNK_CLASS_BASE = 500


@dataclass(frozen=True)
class OverloadConfig:
    """Shape of the junk pool mixed into an overload template system.

    Defaults make each junk client's best-case revenue rate (around
    ``rate * v`` ~ 1) several times smaller than its priced utilization
    cost (around ``rate * (t_proc + t_comm)`` ~ 6 at mean ``P1`` 1.0):
    strongly negative margin, but feasible — the storage footprint is
    negligible and no single-resource demand exceeds a server's
    capacity.
    """

    junk_fraction: float = 0.5
    value_range: Range = (0.2, 0.35)
    slope_range: Range = (0.02, 0.08)
    rate_range: Range = (3.0, 4.5)
    exec_time_range: Range = (0.7, 1.0)
    storage_req_range: Range = (0.1, 0.3)

    def __post_init__(self) -> None:
        if not 0.0 < self.junk_fraction < 1.0:
            raise WorkloadError(
                f"junk_fraction must lie in (0, 1), got {self.junk_fraction}"
            )
        for label in (
            "value_range",
            "slope_range",
            "rate_range",
            "exec_time_range",
            "storage_req_range",
        ):
            lo, hi = getattr(self, label)
            if not 0 < lo <= hi:
                raise WorkloadError(
                    f"{label} must satisfy 0 < lo <= hi, got {lo, hi}"
                )


def _uniform(rng: np.random.Generator, bounds: Range) -> float:
    lo, hi = bounds
    if lo == hi:
        return lo
    return float(rng.uniform(lo, hi))


def overload_system(
    num_clients: int,
    seed: Optional[int] = None,
    overload: Optional[OverloadConfig] = None,
    workload: Optional[WorkloadConfig] = None,
    name: str = "",
) -> CloudSystem:
    """A paper-distribution instance whose template pool is salted with junk.

    ``num_clients`` counts the *profitable* templates (drawn exactly as
    :func:`~repro.workload.generator.generate_system` would, same seed →
    same instance); the junk pool is sized so that it makes up
    ``overload.junk_fraction`` of all templates.  The fleet is sized for
    the profitable clients only, so a load generator cloning from the
    full pool genuinely overloads it.
    """
    overload = overload or OverloadConfig()
    base = generate_system(num_clients, seed=seed, config=workload)
    num_junk = max(
        1,
        round(
            num_clients * overload.junk_fraction / (1.0 - overload.junk_fraction)
        ),
    )
    # Independent stream: adding junk never perturbs the base instance.
    rng = np.random.default_rng(None if seed is None else seed + 7_777_777)
    clients = list(base.clients)
    next_id = max(c.client_id for c in clients) + 1 if clients else 0
    for j in range(num_junk):
        junk_class = UtilityClass(
            index=JUNK_CLASS_BASE + j,
            function=ClippedLinearUtility(
                base_value=_uniform(rng, overload.value_range),
                slope=_uniform(rng, overload.slope_range),
            ),
            name=f"junk-{j}",
        )
        rate = _uniform(rng, overload.rate_range)
        clients.append(
            Client(
                client_id=next_id + j,
                utility_class=junk_class,
                rate_agreed=rate,
                rate_predicted=rate,
                t_proc=_uniform(rng, overload.exec_time_range),
                t_comm=_uniform(rng, overload.exec_time_range),
                storage_req=_uniform(rng, overload.storage_req_range),
            )
        )
    label = name or f"overload({base.name}, junk={num_junk})"
    return CloudSystem(clusters=base.clusters, clients=clients, name=label)
