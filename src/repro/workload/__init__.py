"""Workload generation: the paper's section-VI experimental setup.

:func:`generate_system` reproduces the published randomized instance
family (5 clusters, 10 server classes, 5 utility classes, all uniform
parameter ranges as printed); :mod:`repro.workload.scenarios` adds named
instances used by examples and tests.
"""

from repro.workload.generator import WorkloadConfig, generate_system
from repro.workload.overload import OverloadConfig, overload_system
from repro.workload.scenarios import (
    paper_scenario,
    tiny_system,
    small_system,
    certification_scenario,
    consolidation_scenario,
    tiered_sla_scenario,
)

__all__ = [
    "OverloadConfig",
    "WorkloadConfig",
    "generate_system",
    "overload_system",
    "paper_scenario",
    "tiny_system",
    "small_system",
    "certification_scenario",
    "consolidation_scenario",
    "tiered_sla_scenario",
]
