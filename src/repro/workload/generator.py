"""Randomized instance generator matching section VI of the paper.

Published parameters (quoted ranges are from the paper's text):

* 5 clusters, 10 server classes, 5 utility classes;
* per utility class, the slope ``beta`` of the utility function and the
  clients' mean execution times are drawn from U(0.4, 1);
* the agreed arrival rate ``lambda^a`` of each client from U(0.5, 4.5);
* each client's utility class is a uniform random pick;
* server-class processing and communication capacities from U(2, 6), the
  constant power cost ``P0`` from U(1, 3), storage capacity from U(2, 6);
* each client's storage requirement from U(0.2, 2).

Two quantities the text references but never prints ranges for are
configurable with documented defaults (see DESIGN.md "Substitutions"):
the utility intercept ``v`` (default U(2.0, 4.0), sized so that serving a
client is profitable on average, matching the paper's positive-profit
figures) and the linear cost slope ``P1`` (default U(0.5, 1.5)).  Figures
are normalized by best-found profit, so these scales do not change the
reproduced shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import WorkloadError
from repro.model import (
    ClippedLinearUtility,
    CloudSystem,
    LinearUtility,
    ServerClass,
    StepUtility,
    SystemArrays,
    UtilityClass,
)

Range = Tuple[float, float]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the instance generator; defaults reproduce section VI.

    Attributes:
        num_clusters / num_server_classes / num_utility_classes: the
            paper's 5 / 10 / 5.
        servers_per_cluster: servers in each cluster; ``None`` sizes the
            datacenter automatically to roughly one server per client
            (split evenly, minimum 4 per cluster) so consolidation is a
            real decision at every population size.
        beta_range: utility slope per utility class, U(0.4, 1) (paper).
        base_value_range: utility intercept ``v`` per utility class
            (documented substitution, see module docstring).
        exec_time_range: per-client mean processing / communication
            execution time on a unit resource, U(0.4, 1) (paper).
        rate_range: agreed arrival rate ``lambda^a``, U(0.5, 4.5) (paper).
        predicted_rate_factor: ``lambda = factor * lambda^a``; 1.0 makes
            predicted and agreed rates coincide as in the paper's runs.
        cap_processing_range / cap_bandwidth_range: server-class
            capacities, U(2, 6) (paper).
        cap_storage_range: server-class storage capacity, U(2, 6) (paper).
        power_fixed_range: ``P0``, U(1, 3) (paper).
        power_per_util_range: ``P1`` (documented substitution).
        storage_req_range: client disk need ``m``, U(0.2, 2) (paper).
        utility_form: ``"clipped_linear"`` (default), ``"linear"``, or
            ``"step"`` (a 3-level discretization of the linear SLA, for
            the discrete-utility extension).
        background_load_fraction: fraction of servers given a random
            pre-existing load (the paper's non-empty cluster "initial
            state"); 0 reproduces the published runs.
    """

    num_clusters: int = 5
    num_server_classes: int = 10
    num_utility_classes: int = 5
    servers_per_cluster: Optional[int] = None
    beta_range: Range = (0.4, 1.0)
    base_value_range: Range = (2.0, 4.0)
    exec_time_range: Range = (0.4, 1.0)
    rate_range: Range = (0.5, 4.5)
    predicted_rate_factor: float = 1.0
    cap_processing_range: Range = (2.0, 6.0)
    cap_bandwidth_range: Range = (2.0, 6.0)
    cap_storage_range: Range = (2.0, 6.0)
    power_fixed_range: Range = (1.0, 3.0)
    power_per_util_range: Range = (0.5, 1.5)
    storage_req_range: Range = (0.2, 2.0)
    utility_form: str = "clipped_linear"
    background_load_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise WorkloadError("num_clusters must be >= 1")
        if self.num_server_classes < 1:
            raise WorkloadError("num_server_classes must be >= 1")
        if self.num_utility_classes < 1:
            raise WorkloadError("num_utility_classes must be >= 1")
        if self.servers_per_cluster is not None and self.servers_per_cluster < 1:
            raise WorkloadError("servers_per_cluster must be >= 1 when given")
        if not 0 < self.predicted_rate_factor <= 1.0:
            raise WorkloadError("predicted_rate_factor must lie in (0, 1]")
        if self.utility_form not in ("clipped_linear", "linear", "step"):
            raise WorkloadError(f"unknown utility_form {self.utility_form!r}")
        if not 0.0 <= self.background_load_fraction <= 1.0:
            raise WorkloadError("background_load_fraction must lie in [0, 1]")
        for label in (
            "beta_range",
            "base_value_range",
            "exec_time_range",
            "rate_range",
            "cap_processing_range",
            "cap_bandwidth_range",
            "cap_storage_range",
            "power_fixed_range",
            "power_per_util_range",
            "storage_req_range",
        ):
            lo, hi = getattr(self, label)
            if not (0 <= lo <= hi):
                raise WorkloadError(f"{label} must satisfy 0 <= lo <= hi, got {lo, hi}")


def _uniform(rng: np.random.Generator, bounds: Range) -> float:
    lo, hi = bounds
    if lo == hi:
        return lo
    return float(rng.uniform(lo, hi))


def _make_utility_classes(
    rng: np.random.Generator, config: WorkloadConfig
) -> List[UtilityClass]:
    classes: List[UtilityClass] = []
    for index in range(config.num_utility_classes):
        beta = _uniform(rng, config.beta_range)
        base = _uniform(rng, config.base_value_range)
        if config.utility_form == "linear":
            function = LinearUtility(base_value=base, slope=beta)
        elif config.utility_form == "clipped_linear":
            function = ClippedLinearUtility(base_value=base, slope=beta)
        else:  # "step": 3 discrete levels tracking the linear SLA.
            horizon = base / beta if beta > 0 else 1.0
            deadlines = (horizon / 4, horizon / 2, horizon)
            values = tuple(max(base - beta * d, 0.0) for d in deadlines)
            function = StepUtility(levels=tuple(zip(deadlines, values)))
        classes.append(
            UtilityClass(index=index, function=function, name=f"class-{index}")
        )
    return classes


def _make_server_classes(
    rng: np.random.Generator, config: WorkloadConfig
) -> List[ServerClass]:
    classes: List[ServerClass] = []
    for index in range(config.num_server_classes):
        classes.append(
            ServerClass(
                index=index,
                cap_processing=_uniform(rng, config.cap_processing_range),
                cap_bandwidth=_uniform(rng, config.cap_bandwidth_range),
                cap_storage=_uniform(rng, config.cap_storage_range),
                power_fixed=_uniform(rng, config.power_fixed_range),
                power_per_util=_uniform(rng, config.power_per_util_range),
                name=f"sku-{index}",
            )
        )
    return classes


def _default_servers_per_cluster(num_clients: int, num_clusters: int) -> int:
    return max(4, math.ceil(num_clients / num_clusters))


def generate_system(
    num_clients: int,
    seed: Optional[int] = None,
    config: Optional[WorkloadConfig] = None,
    name: str = "",
    backing: str = "arrays",
) -> CloudSystem:
    """Draw one random problem instance from the paper's distribution.

    The same ``(num_clients, seed, config)`` triple always produces an
    identical :class:`~repro.model.CloudSystem`, which is what lets every
    solver in an experiment see the same scenarios.

    ``backing`` selects the storage layout, not the values: ``"arrays"``
    (default) returns an array-backed system whose clients/servers live
    in a :class:`~repro.model.SystemArrays` column store and materialize
    as views on demand; ``"objects"`` builds the classic object graph.
    Both backings hold bit-identical field values — the random draws
    happen in one per-item loop either way, in the exact published call
    order, so the RNG stream (and hence every downstream solve) is
    independent of the layout choice.
    """
    if num_clients < 1:
        raise WorkloadError(f"num_clients must be >= 1, got {num_clients}")
    if backing not in ("arrays", "objects"):
        raise WorkloadError(f"unknown backing {backing!r}")
    config = config or WorkloadConfig()
    rng = np.random.default_rng(seed)

    utility_classes = _make_utility_classes(rng, config)
    server_classes = _make_server_classes(rng, config)

    per_cluster = config.servers_per_cluster
    if per_cluster is None:
        per_cluster = _default_servers_per_cluster(num_clients, config.num_clusters)

    num_servers = config.num_clusters * per_cluster
    server_class_idx = np.zeros(num_servers, dtype=np.int64)
    background_p = np.zeros(num_servers)
    background_b = np.zeros(num_servers)
    background_m = np.zeros(num_servers)
    for row in range(num_servers):
        sku_idx = int(rng.integers(0, len(server_classes)))
        server_class_idx[row] = sku_idx
        if (
            config.background_load_fraction > 0.0
            and rng.random() < config.background_load_fraction
        ):
            background_p[row] = float(rng.uniform(0.0, 0.5))
            background_b[row] = float(rng.uniform(0.0, 0.5))
            background_m[row] = (
                float(rng.uniform(0.0, 0.5)) * server_classes[sku_idx].cap_storage
            )

    client_uclass = np.zeros(num_clients, dtype=np.int64)
    rate_agreed = np.zeros(num_clients)
    t_proc = np.zeros(num_clients)
    t_comm = np.zeros(num_clients)
    storage_req = np.zeros(num_clients)
    for row in range(num_clients):
        client_uclass[row] = int(rng.integers(0, len(utility_classes)))
        rate_agreed[row] = _uniform(rng, config.rate_range)
        t_proc[row] = _uniform(rng, config.exec_time_range)
        t_comm[row] = _uniform(rng, config.exec_time_range)
        storage_req[row] = _uniform(rng, config.storage_req_range)

    arrays = SystemArrays(
        utility_classes=tuple(utility_classes),
        server_classes=tuple(server_classes),
        client_ids=np.arange(num_clients, dtype=np.int64),
        client_uclass=client_uclass,
        rate_agreed=rate_agreed,
        rate_predicted=rate_agreed * config.predicted_rate_factor,
        t_proc=t_proc,
        t_comm=t_comm,
        storage_req=storage_req,
        server_ids=np.arange(num_servers, dtype=np.int64),
        server_cluster=np.repeat(
            np.arange(config.num_clusters, dtype=np.int64), per_cluster
        ),
        server_class_idx=server_class_idx,
        background_processing=background_p,
        background_bandwidth=background_b,
        background_storage=background_m,
    )

    label = name or f"paper-instance(n={num_clients}, seed={seed})"
    system = CloudSystem.from_arrays(arrays, name=label)
    if backing == "objects":
        return system.materialize()
    return system
