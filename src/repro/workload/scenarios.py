"""Named problem instances used by tests, examples and benchmarks.

Everything here is a thin, deterministic wrapper around
:func:`repro.workload.generator.generate_system` or a hand-built system
small enough for exhaustive reference solvers.
"""

from __future__ import annotations

from typing import Optional

from numpy.random import SeedSequence, default_rng

from repro.model import (
    Client,
    ClippedLinearUtility,
    CloudSystem,
    UtilityClass,
)
from repro.model.cluster import Cluster
from repro.model.server import Server, ServerClass
from repro.workload.generator import WorkloadConfig, generate_system


def paper_scenario(num_clients: int, seed: int) -> CloudSystem:
    """One instance exactly as drawn for Figures 4 and 5 (section VI)."""
    return generate_system(
        num_clients=num_clients,
        seed=seed,
        name=f"fig-scenario(n={num_clients}, seed={seed})",
    )


def tiny_system(seed: Optional[int] = 0) -> CloudSystem:
    """2 clusters x 2 servers, 3 clients — small enough to enumerate.

    Used by tests that compare heuristics against exhaustive search.
    """
    config = WorkloadConfig(
        num_clusters=2,
        num_server_classes=2,
        num_utility_classes=2,
        servers_per_cluster=2,
    )
    return generate_system(num_clients=3, seed=seed, config=config, name="tiny")


def small_system(seed: Optional[int] = 0, num_clients: int = 10) -> CloudSystem:
    """3 clusters x 4 servers — fast integration-test size."""
    config = WorkloadConfig(
        num_clusters=3,
        num_server_classes=4,
        num_utility_classes=3,
        servers_per_cluster=4,
    )
    return generate_system(
        num_clients=num_clients, seed=seed, config=config, name="small"
    )


def consolidation_scenario(seed: Optional[int] = 11) -> CloudSystem:
    """Over-provisioned datacenter: far more servers than the load needs.

    The profit-optimal solution keeps most servers OFF, which exercises
    the ``TurnOFF_servers`` move; used by the consolidation example.
    """
    config = WorkloadConfig(
        num_clusters=3,
        num_server_classes=5,
        num_utility_classes=3,
        servers_per_cluster=10,
        power_fixed_range=(2.0, 4.0),
    )
    return generate_system(
        num_clients=8, seed=seed, config=config, name="consolidation"
    )


def certification_scenario(num_clients: int = 20, seed: int = 0) -> CloudSystem:
    """Light-load, hardware-asymmetric family built for gap certification.

    The gap subsystem (:mod:`repro.gap`) needs instances where the
    Lagrangian relaxation is *tight enough* that branch-and-bound can
    close the frontier within a small MIP-style tolerance.  Three design
    choices make that possible:

    * **light per-client loads** — every client fits in a single branch
      of the fastest server class, so the conservative leaf builder in
      :mod:`repro.baselines.assignment` loses nothing to multi-branch
      splitting (the dominant source of relaxation gap on generic
      instances);
    * **tiny fixed power** — ``P0`` is small relative to utilization
      cost, so the activation integrality the dual relaxes away carries
      little profit;
    * **asymmetric hardware** — a premium cluster (fast, expensive per
      utilization) against an economy cluster (slow, cheap) with a
      continuum of client price slopes, so the client -> cluster decision
      is *economically* discriminating and the conditional dual bound
      separates prefixes.

    Server counts scale with ``num_clients`` to keep the load/capacity
    ratio roughly constant, so the family stays in the light-load regime
    at every matrix point.
    """
    rng = default_rng(SeedSequence((seed, 77)))
    premium = ServerClass(0, 6.0, 6.0, 8.0, 0.2, 2.0, "premium")
    economy = ServerClass(1, 3.0, 3.0, 8.0, 0.1, 0.5, "economy")
    num_premium = max(4, round(num_clients / 5))
    num_economy = max(6, round(num_clients * 0.3))
    clusters = [
        Cluster(
            cluster_id=0,
            servers=[
                Server(server_id=i, cluster_id=0, server_class=premium)
                for i in range(num_premium)
            ],
            name="premium",
        ),
        Cluster(
            cluster_id=1,
            servers=[
                Server(
                    server_id=num_premium + i,
                    cluster_id=1,
                    server_class=economy,
                )
                for i in range(num_economy)
            ],
            name="economy",
        ),
    ]
    clients = []
    for i in range(num_clients):
        lam = rng.uniform(0.5, 1.0)
        t_proc = rng.uniform(0.4, 0.7)
        t_comm = rng.uniform(0.4, 0.7)
        slope = rng.uniform(0.3, 2.8)
        base_value = rng.uniform(2.5, 3.5)
        utility = UtilityClass(
            i, ClippedLinearUtility(base_value=base_value, slope=slope)
        )
        clients.append(
            Client(
                client_id=i,
                utility_class=utility,
                rate_agreed=lam,
                rate_predicted=lam,
                t_proc=t_proc,
                t_comm=t_comm,
                storage_req=rng.uniform(0.2, 1.0),
            )
        )
    return CloudSystem(
        clusters=clusters,
        clients=clients,
        name=f"certification(n={num_clients}, seed={seed})",
    )


def tiered_sla_scenario(seed: Optional[int] = 23, num_clients: int = 30) -> CloudSystem:
    """Gold/silver/bronze SLA tiers built by hand on top of generated hardware.

    Demonstrates heterogeneous utility classes: gold clients pay 4x bronze
    but their price decays 4x faster with response time.
    """
    base = generate_system(
        num_clients=num_clients,
        seed=seed,
        config=WorkloadConfig(num_clusters=3, servers_per_cluster=None),
        name="tiered-sla",
    )
    tiers = [
        UtilityClass(0, ClippedLinearUtility(base_value=4.0, slope=2.0), "gold"),
        UtilityClass(1, ClippedLinearUtility(base_value=2.0, slope=1.0), "silver"),
        UtilityClass(2, ClippedLinearUtility(base_value=1.0, slope=0.5), "bronze"),
    ]
    clients = [
        Client(
            client_id=client.client_id,
            utility_class=tiers[client.client_id % len(tiers)],
            rate_agreed=client.rate_agreed,
            rate_predicted=client.rate_predicted,
            t_proc=client.t_proc,
            t_comm=client.t_comm,
            storage_req=client.storage_req,
        )
        for client in base.clients
    ]
    return CloudSystem(clusters=base.clusters, clients=clients, name="tiered-sla")
