"""JSON serialization for problem instances and allocations.

A reproduction library lives or dies by shareable artifacts: this module
round-trips :class:`~repro.model.CloudSystem` and
:class:`~repro.model.Allocation` through plain JSON-compatible dicts so
instances and solutions can be archived, diffed, and re-scored later
(``repro-cloud`` experiments write them next to their reports).

Utility functions are tagged by type; adding a new
:class:`~repro.model.utility.UtilityFunction` subclass requires
registering a codec pair in ``_UTILITY_CODECS``.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Tuple

from repro.exceptions import ReproError
from repro.model.allocation import Allocation
from repro.model.client import Client
from repro.model.cluster import Cluster
from repro.model.datacenter import CloudSystem
from repro.model.server import Server, ServerClass
from repro.model.utility import (
    ClippedLinearUtility,
    LinearUtility,
    PiecewiseLinearUtility,
    StepUtility,
    UtilityClass,
    UtilityFunction,
)


class SerializationError(ReproError):
    """A document does not describe a valid system/allocation."""


# -- versioned envelopes ----------------------------------------------------

def require_format(doc: Any, expected: str, max_version: int) -> int:
    """Check a document's ``format``/``version`` envelope.

    Returns the document's version.  Raises :class:`SerializationError`
    when the format tag differs or the version is newer than this library
    understands (older versions are accepted — decoders default missing
    fields), so stale readers fail loudly instead of mis-parsing.
    """
    if not isinstance(doc, dict):
        raise SerializationError(f"expected a {expected} document, got {type(doc).__name__}")
    if doc.get("format") != expected:
        raise SerializationError(
            f"not a {expected} document (format={doc.get('format')!r})"
        )
    version = doc.get("version", 1)
    if not isinstance(version, int) or version < 1:
        raise SerializationError(f"malformed version field {version!r}")
    if version > max_version:
        raise SerializationError(
            f"{expected} document is version {version}, but this library "
            f"only understands versions <= {max_version}"
        )
    return version


def dump_canonical(doc: Dict[str, Any]) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace drift).

    Two equal documents always produce identical bytes, which is what the
    service's snapshot hashing and the replay-determinism CI gate compare.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


# -- utility functions ---------------------------------------------------

def _encode_linear(fn: LinearUtility) -> Dict[str, Any]:
    return {"base_value": fn.base_value, "slope": fn.slope}


def _decode_linear(doc: Dict[str, Any]) -> LinearUtility:
    return LinearUtility(base_value=doc["base_value"], slope=doc["slope"])


def _encode_clipped(fn: ClippedLinearUtility) -> Dict[str, Any]:
    return {"base_value": fn.base_value, "slope": fn.slope}


def _decode_clipped(doc: Dict[str, Any]) -> ClippedLinearUtility:
    return ClippedLinearUtility(base_value=doc["base_value"], slope=doc["slope"])


def _encode_piecewise(fn: PiecewiseLinearUtility) -> Dict[str, Any]:
    return {"points": [list(p) for p in fn.points]}


def _decode_piecewise(doc: Dict[str, Any]) -> PiecewiseLinearUtility:
    return PiecewiseLinearUtility(
        points=tuple((float(t), float(v)) for t, v in doc["points"])
    )


def _encode_step(fn: StepUtility) -> Dict[str, Any]:
    return {"levels": [list(l) for l in fn.levels], "fallback": fn.fallback}


def _decode_step(doc: Dict[str, Any]) -> StepUtility:
    return StepUtility(
        levels=tuple((float(d), float(v)) for d, v in doc["levels"]),
        fallback=float(doc.get("fallback", 0.0)),
    )


_UTILITY_CODECS: Dict[str, Tuple[type, Callable, Callable]] = {
    "linear": (LinearUtility, _encode_linear, _decode_linear),
    "clipped_linear": (ClippedLinearUtility, _encode_clipped, _decode_clipped),
    "piecewise_linear": (PiecewiseLinearUtility, _encode_piecewise, _decode_piecewise),
    "step": (StepUtility, _encode_step, _decode_step),
}


def utility_to_dict(fn: UtilityFunction) -> Dict[str, Any]:
    for tag, (cls, encode, _) in _UTILITY_CODECS.items():
        if type(fn) is cls:
            return {"type": tag, **encode(fn)}
    raise SerializationError(f"no codec for utility type {type(fn).__name__}")


def utility_from_dict(doc: Dict[str, Any]) -> UtilityFunction:
    try:
        tag = doc["type"]
    except (KeyError, TypeError):
        raise SerializationError("utility document lacks a 'type' tag") from None
    try:
        _, _, decode = _UTILITY_CODECS[tag]
    except KeyError:
        raise SerializationError(f"unknown utility type {tag!r}") from None
    return decode(doc)


# -- system ---------------------------------------------------------------

def system_to_dict(system: CloudSystem) -> Dict[str, Any]:
    """Encode a full problem instance as a JSON-compatible dict."""
    server_classes: Dict[int, ServerClass] = {}
    utility_classes: Dict[int, UtilityClass] = {}
    for server in system.servers():
        server_classes.setdefault(server.server_class.index, server.server_class)
    for client in system.clients:
        utility_classes.setdefault(client.utility_class.index, client.utility_class)

    return {
        "format": "repro.cloud-system",
        "version": 1,
        "name": system.name,
        "server_classes": [
            {
                "index": sc.index,
                "name": sc.name,
                "cap_processing": sc.cap_processing,
                "cap_bandwidth": sc.cap_bandwidth,
                "cap_storage": sc.cap_storage,
                "power_fixed": sc.power_fixed,
                "power_per_util": sc.power_per_util,
            }
            for sc in sorted(server_classes.values(), key=lambda s: s.index)
        ],
        "utility_classes": [
            {
                "index": uc.index,
                "name": uc.name,
                "function": utility_to_dict(uc.function),
            }
            for uc in sorted(utility_classes.values(), key=lambda u: u.index)
        ],
        "clusters": [
            {
                "cluster_id": cluster.cluster_id,
                "name": cluster.name,
                "servers": [
                    {
                        "server_id": s.server_id,
                        "server_class": s.server_class.index,
                        "background_processing": s.background_processing,
                        "background_bandwidth": s.background_bandwidth,
                        "background_storage": s.background_storage,
                    }
                    for s in cluster
                ],
            }
            for cluster in system.clusters
        ],
        "clients": [
            {
                "client_id": c.client_id,
                "utility_class": c.utility_class.index,
                "rate_agreed": c.rate_agreed,
                "rate_predicted": c.rate_predicted,
                "t_proc": c.t_proc,
                "t_comm": c.t_comm,
                "storage_req": c.storage_req,
            }
            for c in system.clients
        ],
    }


def system_from_dict(doc: Dict[str, Any]) -> CloudSystem:
    """Decode a problem instance; raises :class:`SerializationError`."""
    require_format(doc, "repro.cloud-system", max_version=1)
    try:
        server_classes = {
            sc["index"]: ServerClass(
                index=sc["index"],
                name=sc.get("name", ""),
                cap_processing=sc["cap_processing"],
                cap_bandwidth=sc["cap_bandwidth"],
                cap_storage=sc["cap_storage"],
                power_fixed=sc["power_fixed"],
                power_per_util=sc["power_per_util"],
            )
            for sc in doc["server_classes"]
        }
        utility_classes = {
            uc["index"]: UtilityClass(
                index=uc["index"],
                name=uc.get("name", ""),
                function=utility_from_dict(uc["function"]),
            )
            for uc in doc["utility_classes"]
        }
        clusters = [
            Cluster(
                cluster_id=cl["cluster_id"],
                name=cl.get("name", ""),
                servers=[
                    Server(
                        server_id=s["server_id"],
                        cluster_id=cl["cluster_id"],
                        server_class=server_classes[s["server_class"]],
                        background_processing=s.get("background_processing", 0.0),
                        background_bandwidth=s.get("background_bandwidth", 0.0),
                        background_storage=s.get("background_storage", 0.0),
                    )
                    for s in cl["servers"]
                ],
            )
            for cl in doc["clusters"]
        ]
        clients = [
            Client(
                client_id=c["client_id"],
                utility_class=utility_classes[c["utility_class"]],
                rate_agreed=c["rate_agreed"],
                rate_predicted=c.get("rate_predicted", -1.0),
                t_proc=c["t_proc"],
                t_comm=c["t_comm"],
                storage_req=c["storage_req"],
            )
            for c in doc["clients"]
        ]
        return CloudSystem(
            clusters=clusters, clients=clients, name=doc.get("name", "")
        )
    except SerializationError:
        raise
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed cloud-system document: {exc}") from exc


# -- standalone clients (online admission events) ---------------------------

def client_to_dict(client: Client) -> Dict[str, Any]:
    """Encode one client *with its utility class embedded*.

    The system document deduplicates utility classes in a side table; an
    online ``ClientAdmit`` event must be self-contained, so this codec
    inlines the class instead.
    """
    return {
        "client_id": client.client_id,
        "utility_class": {
            "index": client.utility_class.index,
            "name": client.utility_class.name,
            "function": utility_to_dict(client.utility_class.function),
        },
        "rate_agreed": client.rate_agreed,
        "rate_predicted": client.rate_predicted,
        "t_proc": client.t_proc,
        "t_comm": client.t_comm,
        "storage_req": client.storage_req,
    }


def client_from_dict(doc: Dict[str, Any]) -> Client:
    try:
        uc = doc["utility_class"]
        utility_class = UtilityClass(
            index=uc["index"],
            name=uc.get("name", ""),
            function=utility_from_dict(uc["function"]),
        )
        return Client(
            client_id=doc["client_id"],
            utility_class=utility_class,
            rate_agreed=doc["rate_agreed"],
            rate_predicted=doc.get("rate_predicted", -1.0),
            t_proc=doc["t_proc"],
            t_comm=doc["t_comm"],
            storage_req=doc["storage_req"],
        )
    except SerializationError:
        raise
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed client document: {exc}") from exc


# -- allocation ---------------------------------------------------------------

def allocation_to_dict(allocation: Allocation) -> Dict[str, Any]:
    """Encode an allocation (decision variables only)."""
    return {
        "format": "repro.allocation",
        "version": 1,
        "assignments": [
            {"client_id": cid, "cluster_id": kid}
            for cid, kid in sorted(allocation.cluster_of.items())
        ],
        "entries": [
            {
                "client_id": cid,
                "server_id": sid,
                "alpha": entry.alpha,
                "phi_p": entry.phi_p,
                "phi_b": entry.phi_b,
            }
            for cid, sid, entry in sorted(
                allocation.iter_entries(), key=lambda t: (t[0], t[1])
            )
        ],
    }


def allocation_from_dict(doc: Dict[str, Any]) -> Allocation:
    require_format(doc, "repro.allocation", max_version=1)
    try:
        allocation = Allocation()
        for item in doc["assignments"]:
            allocation.assign_client(item["client_id"], item["cluster_id"])
        for entry in doc["entries"]:
            allocation.set_entry(
                entry["client_id"],
                entry["server_id"],
                entry["alpha"],
                entry["phi_p"],
                entry["phi_b"],
            )
        return allocation
    except SerializationError:
        raise
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed allocation document: {exc}") from exc


# -- file helpers ---------------------------------------------------------------

def save_system(system: CloudSystem, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(system_to_dict(system), handle, indent=2)


def load_system(path: str) -> CloudSystem:
    with open(path) as handle:
        return system_from_dict(json.load(handle))


def save_allocation(allocation: Allocation, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(allocation_to_dict(allocation), handle, indent=2)


def load_allocation(path: str) -> Allocation:
    with open(path) as handle:
        return allocation_from_dict(json.load(handle))
