"""repro — reproduction of Goudarzi & Pedram, "Maximizing Profit in Cloud
Computing System via Resource Allocation" (2011).

Public API quick tour::

    from repro import generate_system, ResourceAllocator, evaluate_profit

    system = generate_system(num_clients=50, seed=7)
    allocator = ResourceAllocator()
    result = allocator.solve(system)
    print(evaluate_profit(system, result.allocation).summary())

See README.md for the architecture overview and DESIGN.md for the mapping
between paper sections and modules.
"""

from repro.config import SolverConfig
from repro.exceptions import (
    ReproError,
    ModelError,
    InfeasibleAllocationError,
    UnstableQueueError,
    SolverError,
    WorkloadError,
    SimulationError,
    ServiceError,
    ConfigurationError,
)
from repro.model import (
    Allocation,
    Client,
    ClippedLinearUtility,
    CloudSystem,
    Cluster,
    LinearUtility,
    PiecewiseLinearUtility,
    ProfitBreakdown,
    Server,
    ServerClass,
    StepUtility,
    UtilityClass,
    client_response_time,
    evaluate_profit,
    find_violations,
    validate_allocation,
)
from repro.workload import WorkloadConfig, generate_system
from repro.core import AllocationResult, ResourceAllocator

__version__ = "1.0.0"

__all__ = [
    "SolverConfig",
    "ReproError",
    "ModelError",
    "InfeasibleAllocationError",
    "UnstableQueueError",
    "SolverError",
    "WorkloadError",
    "SimulationError",
    "ServiceError",
    "ConfigurationError",
    "Allocation",
    "Client",
    "ClippedLinearUtility",
    "CloudSystem",
    "Cluster",
    "LinearUtility",
    "PiecewiseLinearUtility",
    "ProfitBreakdown",
    "Server",
    "ServerClass",
    "StepUtility",
    "UtilityClass",
    "client_response_time",
    "evaluate_profit",
    "find_violations",
    "validate_allocation",
    "WorkloadConfig",
    "generate_system",
    "AllocationResult",
    "ResourceAllocator",
    "__version__",
]
