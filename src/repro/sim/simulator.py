"""End-to-end datacenter simulation of an allocation.

Builds the queueing system that eq. (1) models — Poisson sources, a
probabilistic dispatcher (branch ``j`` with probability ``alpha_ij``, the
Poisson-splitting property the paper invokes), and per-server tandem
processing -> communication resources — then measures per-client response
times.  With ``SharingMode.PARTITIONED`` and exponential work, the
measured means converge on :func:`repro.model.profit.client_response_time`
(the validation benchmark asserts this); with ``SharingMode.GPS`` they
fall below it (work conservation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem
from repro.model.profit import client_response_time
from repro.sim.events import EventQueue
from repro.sim.gps import GpsResource, SharingMode
from repro.sim.measure import StreamingStats


@dataclass
class _Request:
    client_id: int
    server_id: int
    arrived_at: float


@dataclass
class ClientStats:
    """Measured vs analytical response time for one client."""

    client_id: int
    completed: int
    response: StreamingStats
    analytical_mean: float

    @property
    def measured_mean(self) -> float:
        return self.response.mean

    def relative_error(self) -> float:
        if self.analytical_mean == 0 or math.isinf(self.analytical_mean):
            return math.nan
        return (self.measured_mean - self.analytical_mean) / self.analytical_mean


@dataclass
class SimulationReport:
    """Outcome of one simulation run."""

    duration: float
    total_arrivals: int
    total_completed: int
    clients: Dict[int, ClientStats] = field(default_factory=dict)

    def worst_relative_error(self) -> float:
        errors = [
            abs(stats.relative_error())
            for stats in self.clients.values()
            if stats.completed > 0 and not math.isnan(stats.relative_error())
        ]
        return max(errors) if errors else math.nan


class DatacenterSimulator:
    """Simulate a (system, allocation) pair and measure response times."""

    def __init__(
        self,
        system: CloudSystem,
        allocation: Allocation,
        mode: SharingMode = SharingMode.PARTITIONED,
        seed: Optional[int] = None,
        warmup_fraction: float = 0.1,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise SimulationError("warmup_fraction must lie in [0, 1)")
        self.system = system
        self.allocation = allocation
        self.mode = mode
        self.warmup_fraction = warmup_fraction
        self._rng = np.random.default_rng(seed)
        self._events = EventQueue()
        self._proc: Dict[int, GpsResource] = {}
        self._comm: Dict[int, GpsResource] = {}
        self._branches: Dict[int, Tuple[List[int], List[float]]] = {}
        self._stats: Dict[int, StreamingStats] = {}
        self._arrivals = 0
        self._completions = 0
        self._warmup_end = 0.0
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        proc_weights: Dict[int, Dict[int, float]] = {}
        comm_weights: Dict[int, Dict[int, float]] = {}
        for client_id, server_id, entry in self.allocation.iter_entries():
            if entry.alpha <= 0:
                continue
            proc_weights.setdefault(server_id, {})[client_id] = entry.phi_p
            comm_weights.setdefault(server_id, {})[client_id] = entry.phi_b
            ids, probs = self._branches.setdefault(client_id, ([], []))
            ids.append(server_id)
            probs.append(entry.alpha)
        for client_id, (_, probs) in self._branches.items():
            total = sum(probs)
            if abs(total - 1.0) > 1e-6:
                raise SimulationError(
                    f"client {client_id} traffic portions sum to {total}"
                )
            probs[:] = [p / total for p in probs]
            self._stats[client_id] = StreamingStats()
        for server_id, weights in proc_weights.items():
            server = self.system.server(server_id)
            self._proc[server_id] = GpsResource(
                name=f"proc-{server_id}",
                capacity=server.cap_processing,
                weights=weights,
                mode=self.mode,
                events=self._events,
                on_complete=self._processing_done,
            )
            self._comm[server_id] = GpsResource(
                name=f"comm-{server_id}",
                capacity=server.cap_bandwidth,
                weights=comm_weights[server_id],
                mode=self.mode,
                events=self._events,
                on_complete=self._request_done,
            )

    # -- event handlers -------------------------------------------------------

    def _schedule_arrival(self, client_id: int) -> None:
        client = self.system.client(client_id)
        gap = float(self._rng.exponential(1.0 / client.rate_predicted))
        self._events.schedule(
            self._events.now + gap, lambda _t, cid=client_id: self._arrive(cid)
        )

    def _arrive(self, client_id: int) -> None:
        now = self._events.now
        self._arrivals += 1
        client = self.system.client(client_id)
        ids, probs = self._branches[client_id]
        idx = int(self._rng.choice(len(ids), p=probs))
        server_id = ids[idx]
        work = float(self._rng.exponential(client.t_proc))
        request = _Request(client_id=client_id, server_id=server_id, arrived_at=now)
        self._proc[server_id].submit(client_id, work, payload=request)
        self._schedule_arrival(client_id)

    def _processing_done(self, class_id: int, payload: object, now: float) -> None:
        request = payload
        assert isinstance(request, _Request)
        client = self.system.client(request.client_id)
        work = float(self._rng.exponential(client.t_comm))
        self._comm[request.server_id].submit(class_id, work, payload=request)

    def _request_done(self, class_id: int, payload: object, now: float) -> None:
        request = payload
        assert isinstance(request, _Request)
        self._completions += 1
        if now >= self._warmup_end:
            self._stats[request.client_id].add(now - request.arrived_at)

    # -- driving ----------------------------------------------------------------

    def run(self, duration: float) -> SimulationReport:
        """Simulate for ``duration`` time units (after seeding all sources)."""
        if duration <= 0:
            raise SimulationError(f"duration must be > 0, got {duration}")
        self._warmup_end = duration * self.warmup_fraction
        for client_id in self._branches:
            self._schedule_arrival(client_id)
        while True:
            nxt = self._events.peek_time()
            if nxt is None or nxt > duration:
                break
            popped = self._events.pop()
            assert popped is not None
            _, payload = popped
            payload(self._events.now)
        clients = {
            client_id: ClientStats(
                client_id=client_id,
                completed=stats.count,
                response=stats,
                analytical_mean=client_response_time(
                    self.system, self.allocation, client_id
                ),
            )
            for client_id, stats in self._stats.items()
        }
        return SimulationReport(
            duration=duration,
            total_arrivals=self._arrivals,
            total_completed=self._completions,
            clients=clients,
        )
