"""Fluid weighted-sharing server resource.

Models one resource (processing *or* communication) of one server.  Each
client with a GPS share on the server is a *class* with weight
``phi_ij``; jobs within a class are served FCFS, and the head job of each
backlogged class receives fluid service at a rate set by the sharing
mode:

* ``PARTITIONED`` — exactly ``weight * capacity``, always.  This is the
  decoupling the paper's analysis assumes: every class is an independent
  M/M/1 queue with service rate ``phi * C / t``.
* ``GPS`` — true work-conserving Generalized Processor Sharing: the
  capacity is split among *backlogged* classes in proportion to weights,
  so idle classes' capacity is recycled.  Response times under GPS are
  stochastically dominated by the partitioned bound, which the validation
  benchmark demonstrates.

Work amounts are expressed in capacity-time units: a job with work ``w``
served at rate ``r`` (capacity units per second) finishes in ``w / r``
seconds.  Drawing ``w ~ Exp(mean_exec_time)`` and serving at the constant
partitioned rate ``phi * C`` reproduces service rate ``phi * C / t``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, Optional

from repro.exceptions import SimulationError
from repro.sim.events import EventHandle, EventQueue

#: Called when a job completes: (class_id, payload, completion_time).
CompletionCallback = Callable[[int, object, float], None]


class SharingMode(Enum):
    PARTITIONED = "partitioned"
    GPS = "gps"


@dataclass
class _Job:
    class_id: int
    work: float
    payload: object = None


@dataclass
class _ClassState:
    weight: float
    queue: Deque[_Job] = field(default_factory=deque)
    rate: float = 0.0
    last_update: float = 0.0
    completion: Optional[EventHandle] = None

    @property
    def backlogged(self) -> bool:
        return bool(self.queue)


class GpsResource:
    """One server resource shared by weighted client classes."""

    def __init__(
        self,
        name: str,
        capacity: float,
        weights: Dict[int, float],
        mode: SharingMode,
        events: EventQueue,
        on_complete: CompletionCallback,
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        for class_id, weight in weights.items():
            if weight <= 0:
                raise SimulationError(
                    f"class {class_id} has non-positive weight {weight}"
                )
        self.name = name
        self.capacity = capacity
        self.mode = mode
        self._events = events
        self._on_complete = on_complete
        self._classes: Dict[int, _ClassState] = {
            class_id: _ClassState(weight=weight)
            for class_id, weight in weights.items()
        }
        self.jobs_completed = 0

    # -- public API ---------------------------------------------------------

    def submit(self, class_id: int, work: float, payload: object = None) -> None:
        """Enqueue a job (``work`` in capacity-time units) for a class."""
        if class_id not in self._classes:
            raise SimulationError(f"unknown class {class_id} on resource {self.name}")
        if work <= 0:
            raise SimulationError(f"job work must be > 0, got {work}")
        state = self._classes[class_id]
        was_backlogged = state.backlogged
        state.queue.append(_Job(class_id=class_id, work=work, payload=payload))
        if not was_backlogged:
            state.last_update = self._events.now
            self._rates_changed()

    def backlog(self, class_id: int) -> int:
        return len(self._classes[class_id].queue)

    def total_backlog(self) -> int:
        return sum(len(state.queue) for state in self._classes.values())

    # -- internals ------------------------------------------------------------

    def _current_rate(self, state: _ClassState) -> float:
        if self.mode is SharingMode.PARTITIONED:
            return state.weight * self.capacity
        active_weight = sum(
            s.weight for s in self._classes.values() if s.backlogged
        )
        if active_weight <= 0:
            return 0.0
        return self.capacity * state.weight / active_weight

    def _advance(self, state: _ClassState, now: float) -> None:
        """Consume the head job's work for the elapsed interval."""
        if state.backlogged and state.rate > 0:
            elapsed = now - state.last_update
            if elapsed > 0:
                state.queue[0].work = max(
                    state.queue[0].work - state.rate * elapsed, 0.0
                )
        state.last_update = now

    def _reschedule(self, state: _ClassState, class_id: int) -> None:
        if state.completion is not None:
            self._events.cancel(state.completion)
            state.completion = None
        if not state.backlogged or state.rate <= 0:
            return
        finish = self._events.now + state.queue[0].work / state.rate
        state.completion = self._events.schedule(
            finish, lambda _t, cid=class_id: self._complete(cid)
        )

    def _rates_changed(self) -> None:
        """Recompute rates; in GPS mode every backlogged class is touched."""
        now = self._events.now
        for class_id, state in self._classes.items():
            if not state.backlogged:
                state.rate = 0.0
                if state.completion is not None:
                    self._events.cancel(state.completion)
                    state.completion = None
                continue
            self._advance(state, now)
            new_rate = self._current_rate(state)
            if (
                state.completion is None
                or abs(new_rate - state.rate) > 1e-15 * max(new_rate, 1.0)
            ):
                state.rate = new_rate
                self._reschedule(state, class_id)

    def _complete(self, class_id: int) -> None:
        state = self._classes[class_id]
        now = self._events.now
        self._advance(state, now)
        if not state.queue:
            raise SimulationError(
                f"completion fired for empty class {class_id} on {self.name}"
            )
        job = state.queue.popleft()
        state.completion = None
        self.jobs_completed += 1
        if self.mode is SharingMode.GPS and not state.backlogged:
            # The active set shrank: every surviving class speeds up.
            self._rates_changed()
        else:
            self._reschedule(state, class_id)
        self._on_complete(class_id, job.payload, now)
