"""Event calendar for the discrete-event simulator.

A thin, allocation-free wrapper over :mod:`heapq`.  Events are arbitrary
payloads ordered by time with a monotonically increasing sequence number
breaking ties, so same-time events run in schedule order (deterministic
replays for a fixed seed).

Cancellation is handled by lazy invalidation: :meth:`EventQueue.cancel`
marks the handle and :meth:`EventQueue.pop` skips dead entries, which is
the textbook approach when most cancellations happen near the queue head
(as with rescheduled departures in a fluid server).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.exceptions import SimulationError


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    payload: Any = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.schedule`."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled


class EventQueue:
    """Time-ordered event calendar with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)

    def schedule(self, time: float, payload: Any) -> EventHandle:
        """Add an event; ``time`` must not precede the current clock."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        entry = _Entry(time=time, seq=next(self._counter), payload=payload)
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def cancel(self, handle: EventHandle) -> None:
        handle._entry.cancelled = True

    def pop(self) -> Optional[Tuple[float, Any]]:
        """Advance the clock to the next live event and return it."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._now = entry.time
            return entry.time, entry.payload
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
