"""Discrete-event simulation substrate.

The paper's evaluation is purely analytical (GPS + M/M/1 formulas).  This
subpackage provides the queueing system those formulas model, so the
library can *validate* the analytical response times instead of assuming
them:

* :mod:`repro.sim.events` — the event calendar;
* :mod:`repro.sim.gps` — a fluid weighted-sharing server resource with two
  modes: ``partitioned`` (each class permanently owns ``phi * C``, the
  exact M/M/1 decoupling of eq. (1)) and ``gps`` (work-conserving
  Generalized Processor Sharing, which redistributes idle classes'
  capacity and therefore stochastically dominates the partitioned bound);
* :mod:`repro.sim.measure` — streaming statistics with confidence
  intervals;
* :mod:`repro.sim.simulator` — wires a :class:`~repro.model.CloudSystem`
  plus an :class:`~repro.model.Allocation` into Poisson sources, a
  probabilistic per-client dispatcher, and tandem processing->bandwidth
  queues per server, and measures per-client mean response times;
* :mod:`repro.sim.epoch` — epoch-driven re-allocation under drifting
  arrival rates (the "decision epoch" dynamics of section III).
"""

from repro.sim.events import EventQueue
from repro.sim.gps import SharingMode, GpsResource
from repro.sim.measure import StreamingStats
from repro.sim.simulator import DatacenterSimulator, SimulationReport, ClientStats
from repro.sim.epoch import EpochConfig, EpochReport, run_epoch_simulation

__all__ = [
    "EventQueue",
    "SharingMode",
    "GpsResource",
    "StreamingStats",
    "DatacenterSimulator",
    "SimulationReport",
    "ClientStats",
    "EpochConfig",
    "EpochReport",
    "run_epoch_simulation",
]
