"""Streaming statistics for simulation measurements.

Welford's online algorithm: numerically stable single-pass mean/variance,
plus a normal-approximation confidence interval (simulation runs collect
thousands of samples, where the CLT is comfortably in force).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

#: Two-sided z-values for common confidence levels.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass
class StreamingStats:
    """Single-pass mean / variance / extrema accumulator."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        if self.count < 1:
            return math.inf
        return self.stddev / math.sqrt(self.count)

    def confidence_interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation CI for the mean."""
        try:
            z = _Z_VALUES[level]
        except KeyError:
            raise ValueError(
                f"unsupported confidence level {level}; "
                f"choose from {sorted(_Z_VALUES)}"
            ) from None
        half_width = z * self.stderr
        return self.mean - half_width, self.mean + half_width

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Chan et al. parallel combination of two accumulators."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / total
        )
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self
