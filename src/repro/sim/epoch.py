"""Epoch-driven dynamic re-allocation (section III's "decision epochs").

The paper's allocator runs once per decision epoch with *predicted*
arrival rates; between epochs the rates drift and the stale allocation
degrades until the next decision.  This module simulates that lifecycle
analytically:

1. draw a problem instance;
2. per epoch, evolve every client's true arrival rate along a workload
   trace (:mod:`repro.workload.traces`);
3. score three policies against the *true* rates:

   * ``reallocate`` — re-run the batch allocator from scratch (cold);
   * ``static`` — keep the day-one allocation forever;
   * ``warm`` (opt-in) — feed the rate deltas as events to the online
     :class:`~repro.service.AllocationService`, which repairs the
     previous epoch's allocation incrementally and falls back to a full
     solve only when drift exceeds its policy threshold.

The cold solver is the profit oracle; the gap to ``static`` is the value
of per-epoch decisions, and the gap to ``warm`` is the price of warm
starting (typically ~0 profit for a fraction of the wall time).

Epochs whose rate row is bit-identical to the last *solved* row skip the
cold solve entirely: the batch solver is deterministic given (system,
seed), so re-running it would reproduce the cached allocation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.audit.hooks import audit_point
from repro.config import SolverConfig
from repro.core.allocator import ResourceAllocator
from repro.exceptions import ConfigurationError
from repro.model.client import Client
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit
from repro.workload.traces import make_factors


@dataclass(frozen=True)
class EpochConfig:
    """Dynamics of the epoch simulation.

    ``pattern`` selects the trace generator from
    :mod:`repro.workload.traces`: ``"random_walk"`` (default, ``drift``
    is the per-epoch standard deviation of the log arrival rate),
    ``"diurnal"`` (day/night sinusoid) or ``"bursty"`` (flash crowds).
    Rates are clamped to ``[min_rate_factor, max_rate_factor]`` times the
    contractual rate (the SLA bounds the believable range).

    ``warm_start`` additionally runs the online service as a third
    policy (see module docs).
    """

    num_epochs: int = 10
    drift: float = 0.15
    min_rate_factor: float = 0.3
    max_rate_factor: float = 1.0
    pattern: str = "random_walk"
    seed: Optional[int] = None
    warm_start: bool = False

    def __post_init__(self) -> None:
        if self.num_epochs < 1:
            raise ConfigurationError("num_epochs must be >= 1")
        if self.drift < 0:
            raise ConfigurationError("drift must be >= 0")
        if not 0 < self.min_rate_factor <= self.max_rate_factor:
            raise ConfigurationError(
                "need 0 < min_rate_factor <= max_rate_factor"
            )
        if self.pattern not in ("random_walk", "diurnal", "bursty"):
            raise ConfigurationError(f"unknown pattern {self.pattern!r}")


@dataclass
class EpochReport:
    """Per-epoch profits of the re-allocating, static and warm policies.

    ``warm_profits`` is empty unless the simulation ran with
    ``warm_start=True``.  ``cold_solves`` counts the batch solver runs
    the reallocate policy actually performed (identical-rate epochs are
    served from cache).
    """

    reallocate_profits: List[float] = field(default_factory=list)
    static_profits: List[float] = field(default_factory=list)
    warm_profits: List[float] = field(default_factory=list)
    cold_solves: int = 0

    @property
    def total_reallocate(self) -> float:
        return sum(self.reallocate_profits)

    @property
    def total_static(self) -> float:
        return sum(self.static_profits)

    @property
    def total_warm(self) -> float:
        return sum(self.warm_profits)

    @property
    def reallocation_gain(self) -> float:
        """Total profit gained by deciding every epoch."""
        return self.total_reallocate - self.total_static


def _with_rates(system: CloudSystem, factors: np.ndarray) -> CloudSystem:
    """Copy the system with each client's predicted rate scaled."""
    clients: List[Client] = []
    for idx, client in enumerate(system.clients):
        clients.append(
            replace(client, rate_predicted=client.rate_agreed * float(factors[idx]))
        )
    return CloudSystem(clusters=system.clusters, clients=clients, name=system.name)


def run_epoch_simulation(
    system: CloudSystem,
    epoch_config: Optional[EpochConfig] = None,
    solver_config: Optional[SolverConfig] = None,
    service_policy: Optional["ServicePolicy"] = None,
) -> EpochReport:
    """Compare per-epoch re-allocation against a static day-one allocation.

    All policies are scored on the epoch's *true* rates: the evaluator
    recomputes response times (and hence revenues) for the rates the
    clients actually offered, so a stale allocation whose queues go
    unstable earns nothing for those clients.  ``service_policy``
    configures the warm policy's drift trigger (only meaningful with
    ``epoch_config.warm_start``).
    """
    epoch_config = epoch_config or EpochConfig()
    solver_config = solver_config or SolverConfig()
    rng = np.random.default_rng(epoch_config.seed)
    num_clients = system.num_clients

    schedule = make_factors(
        epoch_config.pattern,
        epoch_config.num_epochs + 1,
        num_clients,
        rng,
        drift=epoch_config.drift,
        min_factor=epoch_config.min_rate_factor,
        max_factor=epoch_config.max_rate_factor,
    )
    initial_system = _with_rates(system, schedule[0])
    allocator = ResourceAllocator(solver_config)
    static_result = allocator.solve(initial_system)
    static_allocation = static_result.allocation
    audit_point(
        initial_system, static_allocation, "epoch.day_one_solve"
    )

    service = None
    if epoch_config.warm_start:
        # Local import: repro.service builds on repro.core; importing it
        # lazily keeps repro.sim importable without the service package.
        from repro.service.engine import AllocationService
        from repro.service.events import RateUpdate

        service = AllocationService(
            initial_system,
            config=solver_config,
            policy=service_policy,
            allocation=static_allocation,
        )

    report = EpochReport()
    report.cold_solves = 1  # the day-one solve shared by all policies
    solved_row = schedule[0]
    solved_allocation = static_allocation
    for epoch in range(epoch_config.num_epochs):
        row = schedule[epoch + 1]
        true_system = _with_rates(system, row)

        # Cold policy, with the no-op-epoch short circuit: the solver is a
        # deterministic function of (system, seed), so an identical rate
        # row reproduces the cached allocation exactly.
        if not np.array_equal(row, solved_row):
            solved_allocation = allocator.solve(true_system).allocation
            solved_row = row
            report.cold_solves += 1
            audit_point(
                true_system, solved_allocation, f"epoch[{epoch}].cold_solve"
            )
        report.reallocate_profits.append(
            evaluate_profit(
                true_system, solved_allocation, require_all_served=False
            ).total_profit
        )
        report.static_profits.append(
            evaluate_profit(
                true_system, static_allocation, require_all_served=False
            ).total_profit
        )
        if service is not None:
            updates = []
            for idx, client in enumerate(system.clients):
                rate = client.rate_agreed * float(row[idx])
                if service.system.has_client(client.client_id):
                    if service.system.client(client.client_id).rate_predicted != rate:
                        updates.append(
                            RateUpdate(client_id=client.client_id, rate_predicted=rate)
                        )
                else:  # queued client: keep its offered rate current too
                    updates.append(
                        RateUpdate(client_id=client.client_id, rate_predicted=rate)
                    )
            service.apply_many(updates)
            report.warm_profits.append(
                evaluate_profit(
                    true_system, service.allocation, require_all_served=False
                ).total_profit
            )
    return report
