"""Epoch-driven dynamic re-allocation (section III's "decision epochs").

The paper's allocator runs once per decision epoch with *predicted*
arrival rates; between epochs the rates drift and the stale allocation
degrades until the next decision.  This module simulates that lifecycle
analytically:

1. draw a problem instance;
2. per epoch, evolve every client's true arrival rate by a bounded
   geometric random walk;
3. either re-run the allocator on the new predictions (``reallocate``)
   or keep the stale allocation (``static``), and score both against the
   *true* rates.

The gap between the two policies is the value of per-epoch decisions —
an extension experiment the paper motivates but does not plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.config import SolverConfig
from repro.core.allocator import ResourceAllocator
from repro.exceptions import ConfigurationError
from repro.model.client import Client
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit
from repro.workload.traces import make_factors


@dataclass(frozen=True)
class EpochConfig:
    """Dynamics of the epoch simulation.

    ``pattern`` selects the trace generator from
    :mod:`repro.workload.traces`: ``"random_walk"`` (default, ``drift``
    is the per-epoch standard deviation of the log arrival rate),
    ``"diurnal"`` (day/night sinusoid) or ``"bursty"`` (flash crowds).
    Rates are clamped to ``[min_rate_factor, max_rate_factor]`` times the
    contractual rate (the SLA bounds the believable range).
    """

    num_epochs: int = 10
    drift: float = 0.15
    min_rate_factor: float = 0.3
    max_rate_factor: float = 1.0
    pattern: str = "random_walk"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_epochs < 1:
            raise ConfigurationError("num_epochs must be >= 1")
        if self.drift < 0:
            raise ConfigurationError("drift must be >= 0")
        if not 0 < self.min_rate_factor <= self.max_rate_factor:
            raise ConfigurationError(
                "need 0 < min_rate_factor <= max_rate_factor"
            )
        if self.pattern not in ("random_walk", "diurnal", "bursty"):
            raise ConfigurationError(f"unknown pattern {self.pattern!r}")


@dataclass
class EpochReport:
    """Per-epoch profits of the re-allocating and static policies."""

    reallocate_profits: List[float] = field(default_factory=list)
    static_profits: List[float] = field(default_factory=list)

    @property
    def total_reallocate(self) -> float:
        return sum(self.reallocate_profits)

    @property
    def total_static(self) -> float:
        return sum(self.static_profits)

    @property
    def reallocation_gain(self) -> float:
        """Total profit gained by deciding every epoch."""
        return self.total_reallocate - self.total_static


def _with_rates(system: CloudSystem, factors: np.ndarray) -> CloudSystem:
    """Copy the system with each client's predicted rate scaled."""
    clients: List[Client] = []
    for idx, client in enumerate(system.clients):
        clients.append(
            replace(client, rate_predicted=client.rate_agreed * float(factors[idx]))
        )
    return CloudSystem(clusters=system.clusters, clients=clients, name=system.name)


def run_epoch_simulation(
    system: CloudSystem,
    epoch_config: Optional[EpochConfig] = None,
    solver_config: Optional[SolverConfig] = None,
) -> EpochReport:
    """Compare per-epoch re-allocation against a static day-one allocation.

    Both policies are scored on the epoch's *true* rates: the evaluator
    recomputes response times (and hence revenues) for the rates the
    clients actually offered, so a stale allocation whose queues go
    unstable earns nothing for those clients.
    """
    epoch_config = epoch_config or EpochConfig()
    solver_config = solver_config or SolverConfig()
    rng = np.random.default_rng(epoch_config.seed)
    num_clients = system.num_clients

    schedule = make_factors(
        epoch_config.pattern,
        epoch_config.num_epochs + 1,
        num_clients,
        rng,
        drift=epoch_config.drift,
        min_factor=epoch_config.min_rate_factor,
        max_factor=epoch_config.max_rate_factor,
    )
    initial_system = _with_rates(system, schedule[0])
    allocator = ResourceAllocator(solver_config)
    static_result = allocator.solve(initial_system)
    static_allocation = static_result.allocation

    report = EpochReport()
    for epoch in range(epoch_config.num_epochs):
        true_system = _with_rates(system, schedule[epoch + 1])

        fresh = allocator.solve(true_system)
        report.reallocate_profits.append(
            evaluate_profit(
                true_system, fresh.allocation, require_all_served=False
            ).total_profit
        )
        report.static_profits.append(
            evaluate_profit(
                true_system, static_allocation, require_all_served=False
            ).total_profit
        )
    return report
