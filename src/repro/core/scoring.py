"""Move-acceptance scoring for the heuristic's local search.

Every accept-if-better gate in the improvement loop compares allocations
by :func:`score`: the evaluated total profit, except that any *hard*
violation (share budgets, storage, stability, traffic sums) scores
``-inf``.  Unserved clients are allowed — they simply earn nothing — so
the search can pass through partially-assigned states, but it can never
"improve" into a state that cheats a capacity constraint.

Hot paths go through :func:`score_state` instead: when the working state
has a :class:`~repro.core.delta.DeltaScorer` attached the gate costs
``O(touched)``; otherwise it falls back to the full evaluation, so every
move module works with or without the incremental engine.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.state import WorkingState


def score(system: CloudSystem, allocation: Allocation) -> float:
    """Profit of the allocation, or ``-inf`` on any hard violation."""
    breakdown = evaluate_profit(system, allocation, require_all_served=False)
    if breakdown.violations:
        return -math.inf
    return breakdown.total_profit


def score_state(state: "WorkingState") -> float:
    """:func:`score` of a working state, incrementally when possible."""
    scorer = state.scorer
    if scorer is not None:
        return scorer.profit()
    return score(state.system, state.allocation)
