"""Scoped repair operations over a live :class:`~repro.core.state.WorkingState`.

The batch heuristic sweeps every server and client each improvement round;
the online allocation service (:mod:`repro.service`) instead repairs the
few entities an event touched.  This module packages the solver's move
primitives as reusable, scoped operations:

* :func:`rebalance_servers` — shares + dispersion repair on a server set
  (transaction-safe: undoes itself move by move, so it may run inside an
  open ``begin_txn`` frame);
* :func:`place_client` — admit one client via the constructor's
  ``best_placement`` plus a scoped rebalance of the servers it landed on;
* :func:`consolidate_servers` — the ``TurnOFF_servers`` evaluation
  restricted to a candidate set (snapshot-based, NOT transaction-safe);
* :func:`drain_server` — forced evacuation of a failed server, keeping
  the state feasible and reporting which clients could not be rehomed.

Every operation preserves the accept-if-better (or, for forced drains,
stay-feasible) discipline of the offline moves, so a service built on top
of them can hold the same exact-evaluator invariants as the batch solver.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Iterable, List, Optional, Tuple

from repro.audit.hooks import audit_point
from repro.audit.invariants import ACCEPT_TOLERANCE
from repro.config import SolverConfig
from repro.core.assign import apply_placement, best_placement
from repro.core.dispersion import adjust_dispersion_rates
from repro.core.power import (
    _approximated_utility,
    evacuate_client,
    try_shutdown_server,
)
from repro.core.scoring import score_state
from repro.core.shares import adjust_resource_shares
from repro.core.state import WorkingState
from repro.model.client import Client


def rebalance_servers(
    state: WorkingState,
    server_ids: Iterable[int],
    config: SolverConfig,
) -> float:
    """Re-optimize shares on the given servers, then re-split every client
    hosted there.  Returns the realized profit delta.

    Both underlying moves undo themselves entry by entry, so this pass is
    safe inside an open transaction.

    No audit hook here (or in :func:`place_client`): both run as building
    blocks inside surgery whose intermediate states are legitimately
    infeasible until the caller's accept-if-better gate rules; the hooks
    sit on the compound ops that promise feasibility on return.
    """
    delta = 0.0
    touched_clients: set = set()
    for server_id in sorted(set(server_ids)):
        hosted = state.allocation.clients_on_server(server_id)
        if hosted:
            delta += adjust_resource_shares(state, server_id, config)
        touched_clients.update(state.allocation.clients_on_server(server_id))
    for client_id in sorted(touched_clients):
        delta += adjust_dispersion_rates(state, client_id, config)
    return delta


def place_client(
    state: WorkingState,
    client: Client,
    config: SolverConfig,
    excluded_server_ids: Optional[AbstractSet[int]] = None,
) -> bool:
    """Place one unserved client and rebalance the servers it landed on.

    Returns ``False`` (leaving the state untouched) when no cluster can
    stably host the client under current free capacities.  Transaction-
    safe; the service wraps it in a ``begin_txn`` so a placement whose
    rebalance goes sour can be rolled back atomically.
    """
    placement = best_placement(
        state, client, config, excluded_server_ids=excluded_server_ids
    )
    if placement is None:
        return False
    apply_placement(state, placement)
    rebalance_servers(state, placement.entries.keys(), config)
    return True


def reseat_client(
    state: WorkingState,
    client: Client,
    config: SolverConfig,
    excluded_server_ids: Optional[AbstractSet[int]] = None,
) -> bool:
    """Accept-if-better re-placement of one already-served client.

    A rate change can leave a client on servers that were only best for
    its *old* rate; share rebalancing cannot fix that, only moving the
    client can.  This tears the client out, re-runs ``best_placement``
    against current free capacities, and keeps the move only if profit
    strictly improves — all inside a transaction, so a losing candidate
    rolls back in O(mutations).  Returns ``True`` iff the move was kept.
    """
    scorer = state.scorer
    before = scorer.profit() if scorer is not None else score_state(state)
    old_servers = sorted(state.allocation.entries_of_client(client.client_id))
    state.begin_txn()
    state.unassign_client(client.client_id)
    rebalance_servers(state, old_servers, config)
    if not place_client(state, client, config, excluded_server_ids):
        state.rollback_txn()
        return False
    after = scorer.profit() if scorer is not None else score_state(state)
    if after > before + ACCEPT_TOLERANCE:
        state.commit_txn()
        audit_point(state.system, state.allocation, "repair.reseat_client")
        return True
    state.rollback_txn()
    return False


def consolidate_servers(
    state: WorkingState,
    server_ids: Iterable[int],
    config: SolverConfig,
    excluded_server_ids: Optional[AbstractSet[int]] = None,
) -> float:
    """``TurnOFF_servers`` scoped to a candidate set (e.g. the servers a
    departure just released shares on).  Returns the realized delta.

    Snapshot-based like the offline pass — must not run inside an open
    transaction.
    """
    # Sorted before the utility sort: Python's sort is stable, so ties must
    # break on server id, not on set-iteration history (replay determinism).
    candidates: List[int] = [
        sid
        for sid in sorted(set(server_ids))
        if state.server_is_active(sid)
        and not state.system.server(sid).has_background_load
        and state.allocation.clients_on_server(sid)
    ]
    candidates.sort(key=lambda sid: _approximated_utility(state, sid))
    delta = 0.0
    for victim in candidates:
        delta += try_shutdown_server(state, victim, config, excluded_server_ids)
    audit_point(state.system, state.allocation, "repair.consolidate_servers")
    return delta


def drain_server(
    state: WorkingState,
    server_id: int,
    config: SolverConfig,
    excluded_server_ids: Optional[AbstractSet[int]] = None,
) -> Tuple[List[int], List[int]]:
    """Forcibly evacuate every client off one (failed) server.

    Unlike :func:`try_shutdown_server` this is not accept-if-better — the
    server is gone whether or not profit improves — but each per-client
    move must leave the state *feasible*.  A client whose traffic cannot
    be stably rehomed is fully unassigned instead (it keeps earning
    nothing until re-admitted).  Returns ``(rehomed, stranded)`` client
    id lists.  Snapshot-based — not transaction-safe.
    """
    rehomed: List[int] = []
    stranded: List[int] = []
    for client_id in sorted(state.allocation.clients_on_server(server_id)):
        snapshot = state.snapshot()
        if (
            evacuate_client(
                state, client_id, server_id, config, excluded_server_ids
            )
            and not math.isinf(score_state(state))
        ):
            rehomed.append(client_id)
        else:
            state.restore(snapshot)
            state.unassign_client(client_id)
            stranded.append(client_id)
    audit_point(state.system, state.allocation, "repair.drain_server")
    return rehomed, stranded
