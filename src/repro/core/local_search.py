"""Cluster-level client reassignment local search.

Section VI describes the move precisely: "the clients are picked one at a
time and [each] is removed from the assigned cluster and then the best
cluster to serve the client is found based on the available condition of
the clusters.  This repeats until no further reassignment is possible."

The same routine serves two masters:

* inside :class:`~repro.core.allocator.ResourceAllocator` it is the
  "change client assignment" part of the paper's local search;
* standing alone it upgrades the random assignments of the Monte Carlo
  reference (:mod:`repro.baselines.monte_carlo`) and of Figure 5's
  worst-initial-solution study.

Hot-path engineering: a pass used to pay a *full* ``score`` before and
after every client move plus an O(entries) snapshot per client.  Moves
now run inside a :class:`~repro.core.state.WorkingState` transaction
(O(touched) undo on rejection) and are gated by
:func:`~repro.core.scoring.score_state`, which re-scores only the
touched clients/servers when a :class:`~repro.core.delta.DeltaScorer` is
attached.  The accept/reject decisions are unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.audit.hooks import audit_point
from repro.audit.invariants import ACCEPT_TOLERANCE
from repro.config import SolverConfig
from repro.core.assign import apply_placement, best_placement
from repro.core.cache import maybe_attach_cache
from repro.core.delta import DeltaScorer
from repro.core.power import force_client_into_cluster
from repro.core.scoring import score_state
from repro.core.state import WorkingState
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem


def reassignment_pass(
    state: WorkingState,
    config: SolverConfig,
    rng: np.random.Generator,
) -> float:
    """One pass: each client gets one chance to move; returns profit delta."""
    order = list(state.system.client_ids())
    rng.shuffle(order)
    total_delta = 0.0
    for client_id in order:
        client = state.system.client(client_id)
        before = score_state(state)
        state.begin_txn()
        state.unassign_client(client_id)
        placement = best_placement(state, client, config)
        if placement is not None:
            apply_placement(state, placement)
        else:
            # No cluster has *free* room: try the squeeze-and-resplit
            # force move so clients locked into a bad forced spot can
            # still relocate.
            placed = False
            for cluster_id in state.system.cluster_ids():
                state.begin_txn()
                if (
                    force_client_into_cluster(state, client_id, cluster_id, config)
                    and score_state(state) > before + ACCEPT_TOLERANCE
                ):
                    state.commit_txn()
                    placed = True
                    break
                state.rollback_txn()
            if not placed:
                state.rollback_txn()
                continue
        after = score_state(state)
        if after > before + ACCEPT_TOLERANCE:
            total_delta += after - before
            state.commit_txn()
        else:
            state.rollback_txn()
    audit_point(
        state.system, state.allocation, "local_search.reassignment_pass"
    )
    return total_delta


def cluster_reassignment_search(
    system: CloudSystem,
    allocation: Allocation,
    config: Optional[SolverConfig] = None,
    rng: Optional[np.random.Generator] = None,
    max_passes: int = 10,
) -> Allocation:
    """Repeat reassignment passes until none improves; returns a new allocation."""
    config = config or SolverConfig()
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    state = WorkingState(system, allocation.copy())
    if config.use_delta_scoring:
        DeltaScorer(state, validate=config.validate_delta_scoring)
    maybe_attach_cache(state, config)
    for _ in range(max_passes):
        delta = reassignment_pass(state, config, rng)
        if delta <= config.improvement_tolerance:
            break
    return state.allocation
