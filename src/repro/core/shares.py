"""``Adjust_ResourceShares`` — per-server convex share reallocation (V.B.1).

With the client set and traffic portions of a server frozen, redistributing
its GPS shares is a convex problem; the paper's eq. (18) gives the KKT
closed form and a bisection on the capacity multiplier finishes the job.
Processing shares are priced at the server's real marginal energy cost
``P1`` (so the optimizer will deliberately leave capacity idle when the
marginal revenue no longer pays for the energy); bandwidth has no energy
cost and is limited only by the capacity multiplier.

The move is applied only if the *exact* evaluated profit does not drop —
the closed form optimizes the linear utility surrogate, and a clipped
utility can disagree near its zero crossing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.audit.invariants import ACCEPT_TOLERANCE
from repro.config import SolverConfig
from repro.core.scoring import score_state
from repro.core.state import WorkingState
from repro.optim.kkt import ShareProblemItem, waterfill_shares


def _share_items(
    state: WorkingState,
    server_id: int,
    client_ids: List[int],
    resource: str,
    budget: float,
    config: SolverConfig,
) -> Optional[List[ShareProblemItem]]:
    """Build the eq.-(18) problem for one resource of one server."""
    server = state.system.server(server_id)
    items: List[ShareProblemItem] = []
    for client_id in client_ids:
        client = state.system.client(client_id)
        entry = state.allocation.entry(client_id, server_id)
        assert entry is not None
        if resource == "processing":
            service_per_share = server.cap_processing / client.t_proc
        else:
            service_per_share = server.cap_bandwidth / client.t_comm
        arrival = entry.alpha * client.rate_predicted
        weight = (
            client.rate_agreed
            * client.utility_class.linear_approximation().slope
            * entry.alpha
        )
        lower = arrival / service_per_share * config.stability_margin + config.min_share
        if lower > budget:
            return None
        items.append(
            ShareProblemItem(
                service_per_share=service_per_share,
                arrival_rate=arrival,
                weight=weight,
                lower=lower,
                upper=budget,
            )
        )
    return items


def adjust_resource_shares(
    state: WorkingState,
    server_id: int,
    config: SolverConfig,
) -> float:
    """Re-optimize one server's shares; returns the realized profit delta.

    No-op (returns 0.0) when the server hosts no traffic, when the KKT
    system is infeasible under the configured stability margin, or when
    the exact evaluation rejects the surrogate's proposal.
    """
    client_ids = sorted(
        cid
        for cid in state.allocation.clients_on_server(server_id)
        if (entry := state.allocation.entry(cid, server_id)) is not None
        and entry.alpha > 0.0
    )
    if not client_ids:
        return 0.0
    server = state.system.server(server_id)
    budget_p = 1.0 - server.background_processing
    budget_b = 1.0 - server.background_bandwidth

    items_p = _share_items(state, server_id, client_ids, "processing", budget_p, config)
    items_b = _share_items(state, server_id, client_ids, "bandwidth", budget_b, config)
    if items_p is None or items_b is None:
        return 0.0

    solved_p = waterfill_shares(
        items_p, budget_p, price_floor=server.server_class.power_per_util
    )
    solved_b = waterfill_shares(
        items_b, budget_b, price_floor=config.bandwidth_shadow_price
    )
    if solved_p is None or solved_b is None:
        return 0.0
    shares_p, _ = solved_p
    shares_b, _ = solved_b

    before = score_state(state)
    previous: Dict[int, Tuple[float, float]] = {}
    for idx, client_id in enumerate(client_ids):
        entry = state.allocation.entry(client_id, server_id)
        assert entry is not None
        previous[client_id] = (entry.phi_p, entry.phi_b)
        state.set_entry(
            client_id, server_id, entry.alpha, shares_p[idx], shares_b[idx]
        )
    after = score_state(state)
    if after < before - ACCEPT_TOLERANCE:
        for client_id, (phi_p, phi_b) in previous.items():
            entry = state.allocation.entry(client_id, server_id)
            assert entry is not None
            state.set_entry(client_id, server_id, entry.alpha, phi_p, phi_b)
        return 0.0
    return after - before
