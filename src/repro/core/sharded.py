"""Sharded hierarchical solver: price-coordinated shard decomposition.

The paper's clients interact only through two couplings: the shared
capacity of their cluster's servers and the cross-cluster assignment
step.  That makes the problem decomposable: partition the clients *and*
each cluster's servers into disjoint shards, solve every shard as a
standalone instance of the full heuristic, and the union of the shard
allocations is feasible by construction — no server is visible to two
shards, so no capacity constraint can be violated by the merge.

What the decomposition loses is the couplings, and the hierarchy puts
them back:

* **price coordination** — after each round the coordinator sums every
  shard's per-cluster usage summary and re-prices bandwidth per cluster
  (``price_k = base * (1 + gain * utilization_k)``); shards see the new
  prices through ``SolverConfig.cluster_bandwidth_prices`` and their
  eq.-(16) curves — the marginal-profit response — steer traffic away
  from congested clusters in the next improvement round;
* **straggler reassignment** — clients a shard could not place are moved
  (between rounds) to the shard with the most free capacity whose
  eq.-(16) probe says it can still host profitably.

Workers keep a resident :class:`_ShardRuntime` per shard — sub-system,
working state, delta scorer and :class:`~repro.core.cache.MemoCache` —
so a warm coordination round revalidates its curve blocks instead of
rebuilding them.  Warm-vs-cold is bit-transparent: every round starts by
canonicalizing the state and resyncing the scorer from scratch, so the
merged result does not depend on which worker ran which shard, or on
whether a runtime survived between rounds (the same discipline the
snapshot/restore machinery uses).

The merge is O(rows): shards export :class:`~repro.model.allocation.AllocationRows`
tables (struct-of-arrays) and the coordinator concatenates them.  The
profit of the merged allocation is exactly the sum of shard profits —
the shards share no servers and no clients — so round-over-round
acceptance needs no global re-evaluation; only the returned best is
re-scored (and audited) against the full system.

The gap vs. the unsharded heuristic comes from placements the partition
forbids (a client can only use its own shard's server slices).  Striding
both clients and servers keeps every shard a balanced miniature of the
full instance — each shard sees ~1/S of every cluster's servers and a
demand-representative 1/S of the clients — which empirically holds the
gap within the benchmark's 1% bound at n <= 1k (see BENCH_scale.json)
while the per-shard solve cost drops superlinearly.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.config import SolverConfig
from repro.core import distributed
from repro.core.allocator import AllocationResult, ResourceAllocator
from repro.core.assign import batched_server_curves
from repro.core.cache import maybe_attach_cache
from repro.core.delta import DeltaScorer
from repro.core.distributed import WorkerPool
from repro.core.local_search import reassignment_pass
from repro.core.state import ClusterUsage, WorkingState
from repro.model.allocation import Allocation, AllocationRows
from repro.model.cluster import Cluster
from repro.model.datacenter import ArrayBackedCloudSystem, CloudSystem
from repro.model.profit import evaluate_profit
from repro.optim.dp import NEG_INF

#: The per-cluster price tuple shipped to shards (None = flat base price).
PriceTuple = Optional[Tuple[Tuple[int, float], ...]]


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the system: disjoint clients and servers."""

    shard_id: int
    client_ids: Tuple[int, ...]
    server_ids: Tuple[int, ...]


@dataclass(frozen=True)
class ShardRoundResult:
    """What one shard reports back after a solve/improve round."""

    shard_id: int
    rows: AllocationRows
    profit: float
    initial_profit: float
    usage: Dict[int, ClusterUsage]
    unplaced: Tuple[int, ...]
    marginal: Dict[int, float]
    cache_stats: Dict[str, int]
    nonce: Tuple[int, int]
    #: Wall seconds the worker spent inside this round's solve/improve
    #: (excludes dispatch); drives adaptive shard sizing and the scale
    #: benchmark's per-shard cost statistics.
    solve_seconds: float = 0.0


def deal_servers(system: CloudSystem, num_shards: int) -> List[Tuple[int, ...]]:
    """Deal the cluster-ordered server list round-robin into ``num_shards`` hands.

    Striding the (cluster-contiguous) server list deals each cluster's
    servers round-robin, so every hand holds ~1/S of every cluster's
    capacity — a balanced capacity miniature of the full fleet.  Clamped
    so every hand owns at least one server.  Shared by the batch
    hierarchy (:func:`plan_shards`) and the online service tier
    (:class:`repro.service.router.ServiceRouter`), which partitions only
    servers because its clients arrive later, as events.
    """
    servers = [s.server_id for s in system.servers()]
    count = max(1, min(num_shards, len(servers)))
    return [tuple(servers[s::count]) for s in range(count)]


def plan_shards(system: CloudSystem, num_shards: int) -> List[ShardSpec]:
    """Partition clients and servers into balanced disjoint shards.

    Both partitions stride sorted id order: shard ``s`` takes every
    ``S``-th client and every ``S``-th server of the cluster-ordered
    server list (:func:`deal_servers`), so every shard holds ~1/S of
    every cluster's capacity and a demand-representative client sample —
    a balanced miniature of the full instance.  ``num_shards`` is
    clamped so every shard owns at least one client and one server.
    """
    clients = sorted(system.client_ids())
    count = max(1, min(num_shards, len(clients), system.num_servers))
    hands = deal_servers(system, count)
    return [
        ShardSpec(
            shard_id=s,
            client_ids=tuple(clients[s::count]),
            server_ids=hands[s],
        )
        for s in range(count)
    ]


def shard_subsystem(system: CloudSystem, spec: ShardSpec) -> CloudSystem:
    """One shard's standalone instance.

    Cluster ids are preserved — a shard's cluster ``k`` is a slice of the
    real cluster ``k`` — so per-cluster prices and the merged allocation
    speak the global id space.  Clusters with no servers in the slice are
    omitted.

    On an array-backed system this is O(fields): each client/server
    column is fancy-indexed once and the slice is wrapped as a new
    array-backed system — no per-object work at all.  On an object-backed
    system the Server/Client objects are shared (never copied), and a
    shard that owns *every* server of a cluster reuses the system's own
    Cluster object instead of constructing (and re-validating) a new one.
    Both backings produce systems with bit-identical field values, so the
    shard solve does not depend on the backing.
    """
    if isinstance(system, ArrayBackedCloudSystem) and system.is_array_backed:
        arrays = system.arrays
        client_pos = np.searchsorted(
            arrays.client_ids, np.asarray(spec.client_ids, dtype=np.int64)
        )
        # Server ids are dealt from the cluster-ordered (= id-sorted) row
        # order, so sorting the spec's ids keeps the slice
        # cluster-contiguous — the layout invariant SystemArrays requires.
        server_pos = np.searchsorted(
            arrays.server_ids, np.sort(np.asarray(spec.server_ids, dtype=np.int64))
        )
        sub_arrays = arrays.slice_clients(client_pos).slice_servers(server_pos)
        return CloudSystem.from_arrays(
            sub_arrays, name=f"{system.name}/shard-{spec.shard_id}"
        )
    by_cluster: Dict[int, List] = {}
    for sid in spec.server_ids:
        by_cluster.setdefault(system.cluster_of_server(sid), []).append(
            system.server(sid)
        )
    clusters = []
    for kid in sorted(by_cluster):
        whole = system.cluster(kid)
        if len(by_cluster[kid]) == len(whole):
            # The shard owns the entire cluster: reuse the existing
            # (already-validated) Cluster object rather than building a
            # duplicate around the same Server objects.
            clusters.append(whole)
        else:
            clusters.append(Cluster(cluster_id=kid, servers=by_cluster[kid]))
    clients = [system.client(cid) for cid in spec.client_ids]
    return CloudSystem(
        clusters=clusters,
        clients=clients,
        name=f"{system.name}/shard-{spec.shard_id}",
    )


# -- worker side --------------------------------------------------------------

#: shard_id -> resident runtime, per worker process.  Bounded: each
#: runtime pins a sub-system, a working state and a curve cache, so at
#: hundreds of shards per worker the oldest runtimes are dropped and
#: simply rebuild cold from their shipped rows on the next touch.
_SHARD_RUNTIMES: Dict[int, "_ShardRuntime"] = {}
_RUNTIME_LIMIT = 8
_NONCE_COUNTER = 0


def _next_nonce() -> Tuple[int, int]:
    """Identity of one runtime state epoch (pid + per-process counter).

    The coordinator echoes the nonce back with the next round's task; a
    worker warm-continues only when its resident runtime is the exact
    state that produced the rows the coordinator holds.
    """
    global _NONCE_COUNTER
    _NONCE_COUNTER += 1
    return (os.getpid(), _NONCE_COUNTER)


class _ShardRuntime:
    """Worker-resident persistent solve state for one shard."""

    def __init__(
        self, system: CloudSystem, spec: ShardSpec, base_config: SolverConfig
    ) -> None:
        self.spec = spec
        self.base_config = base_config
        self.sub_system = shard_subsystem(system, spec)
        self.state = WorkingState(self.sub_system)
        if base_config.use_delta_scoring:
            DeltaScorer(self.state, validate=base_config.validate_delta_scoring)
        maybe_attach_cache(self.state, base_config)
        self.last_prices: PriceTuple = None
        self.nonce: Optional[Tuple[int, int]] = None

    def _round_config(self, seed: int, prices: PriceTuple) -> SolverConfig:
        return replace(
            self.base_config, seed=seed, cluster_bandwidth_prices=prices
        )

    def solve_initial(self, seed: int, prices: PriceTuple) -> ShardRoundResult:
        """Round 0: the full heuristic on the shard's standalone instance."""
        config = self._round_config(seed, prices)
        self.last_prices = prices
        result = ResourceAllocator(config).solve(self.sub_system)
        self.state.restore_rows(result.allocation.to_rows())
        return self._export(config, initial_profit=result.initial_profit)

    def improve_round(self, seed: int, prices: PriceTuple) -> ShardRoundResult:
        """One coordinated improvement round under the given prices.

        Warm and cold runtimes converge to bit-identical states here:
        canonicalize sorts the allocation and recounts aggregates in that
        order, and the scorer is resynced from scratch, so nothing of the
        runtime's mutation (or shipping) history survives into the round.
        A price change invalidates the curve cache wholesale — curve
        blocks validate against capacity inputs only, not prices — while
        unchanged prices keep the blocks warm (the all-hit round).
        """
        config = self._round_config(seed, prices)
        if prices != self.last_prices:
            if self.state.cache is not None:
                self.state.cache.clear()
            self.last_prices = prices
        self.state.canonicalize()
        if self.state.scorer is not None:
            self.state.scorer.mark_all()
            self.state.scorer.resync()
        allocator = ResourceAllocator(config)
        rng = np.random.default_rng(seed)
        allocator.improvement_round(self.state, rng)
        return self._export(config, initial_profit=NEG_INF)

    def _export(
        self, config: SolverConfig, initial_profit: float
    ) -> ShardRoundResult:
        profit = evaluate_profit(
            self.sub_system, self.state.allocation, require_all_served=False
        ).total_profit
        unplaced = tuple(
            cid
            for cid in self.spec.client_ids
            if not self.state.allocation.entries_of_client(cid)
        )
        cache = self.state.cache
        self.nonce = _next_nonce()
        return ShardRoundResult(
            shard_id=self.spec.shard_id,
            rows=self.state.export_rows(),
            profit=profit,
            initial_profit=initial_profit,
            usage=self.state.cluster_usage_summary(),
            unplaced=unplaced,
            marginal=self._marginal_response(config),
            cache_stats=dict(cache.stats) if cache is not None else {},
            nonce=self.nonce,
        )

    def _marginal_response(self, config: SolverConfig) -> Dict[int, float]:
        """Best eq.-(16) one-grid-unit profit per cluster, probe clients.

        The shard's marginal-profit response surface, reported upward so
        the coordinator can route stragglers toward shards that can still
        host profitably (``-inf`` marks a saturated cluster slice).
        """
        probes = [
            self.sub_system.client(cid) for cid in self.spec.client_ids[:3]
        ]
        response: Dict[int, float] = {}
        for kid, sids in self.state.cluster_server_ids.items():
            best = NEG_INF
            for client in probes:
                _, values, _, _ = batched_server_curves(
                    self.state, client, sids, config
                )
                if values.shape[1] > 1:
                    best = max(best, float(values[:, 1].max()))
            response[kid] = best
        return response


def _store_runtime(runtime: _ShardRuntime) -> None:
    _SHARD_RUNTIMES[runtime.spec.shard_id] = runtime
    while len(_SHARD_RUNTIMES) > _RUNTIME_LIMIT:
        _SHARD_RUNTIMES.pop(next(iter(_SHARD_RUNTIMES)))


def _shard_solve_task(
    args: Tuple[ShardSpec, int, PriceTuple]
) -> ShardRoundResult:
    """Round-0 task: cold-build the runtime and run the full heuristic."""
    spec, seed, prices = args
    assert distributed._WORKER_SYSTEM is not None
    assert distributed._WORKER_CONFIG is not None
    started = time.perf_counter()
    runtime = _ShardRuntime(
        distributed._WORKER_SYSTEM, spec, distributed._WORKER_CONFIG
    )
    result = runtime.solve_initial(seed, prices)
    _store_runtime(runtime)
    return replace(result, solve_seconds=time.perf_counter() - started)


def _shard_improve_task(
    args: Tuple[ShardSpec, AllocationRows, int, PriceTuple, Tuple[int, int]]
) -> ShardRoundResult:
    """Coordination-round task: warm-continue or cold-rebuild, then improve."""
    spec, rows, seed, prices, expected_nonce = args
    assert distributed._WORKER_SYSTEM is not None
    assert distributed._WORKER_CONFIG is not None
    started = time.perf_counter()
    runtime = _SHARD_RUNTIMES.get(spec.shard_id)
    if (
        runtime is None
        or runtime.spec != spec
        or runtime.nonce != expected_nonce
    ):
        runtime = _ShardRuntime(
            distributed._WORKER_SYSTEM, spec, distributed._WORKER_CONFIG
        )
        runtime.state.restore_rows(rows)
        runtime.last_prices = None
        _store_runtime(runtime)
    result = runtime.improve_round(seed, prices)
    return replace(result, solve_seconds=time.perf_counter() - started)


def _polish_cluster_task(
    task: Tuple[int, Tuple, int]
) -> AllocationRows:
    """One polish round on a single cluster's slice of the merged state.

    The parallel-polish variant of the repair step: the coordinator
    partitions the merged allocation by cluster (the natural seam — a
    polish round's share/dispersion/power moves are all cluster-local,
    only the reassignment pass crosses clusters, and that runs
    sequentially afterwards), and each task replays the
    :class:`~repro.core.distributed.DistributedAllocator` worker recipe:
    rebuild the cluster subproblem from the shared system plus compact
    row deltas, run one improvement round, ship the rows back.
    """
    cluster_id, rows, seed = task
    assert distributed._WORKER_SYSTEM is not None
    assert distributed._WORKER_CONFIG is not None
    config = distributed._WORKER_CONFIG
    sub_system, sub_allocation = distributed._subproblem_from_rows(
        distributed._WORKER_SYSTEM, cluster_id, rows
    )
    state = WorkingState(sub_system, sub_allocation)
    if config.use_delta_scoring:
        DeltaScorer(state, validate=config.validate_delta_scoring)
    maybe_attach_cache(state, config)
    state.canonicalize()
    if state.scorer is not None:
        state.scorer.mark_all()
        state.scorer.resync()
    rng = np.random.default_rng(seed)
    ResourceAllocator(config).improvement_round(state, rng)
    return state.export_rows()


class _InlineExecutor:
    """Drop-in for the worker pool when only one worker would exist.

    On a single-core host a process pool buys no parallelism but still
    pays system pickling, task serialization and IPC on every dispatch.
    This executor runs the very same task functions in-process: it
    installs the system/config in :mod:`repro.core.distributed`'s
    worker globals (exactly what ``_pool_initializer`` does in a worker)
    and maps tasks synchronously, so shard runtimes, nonces and results
    are bit-identical to a one-worker pool — the tasks are deterministic
    functions of their arguments and the installed system.
    """

    def __init__(self, system: CloudSystem, worker_config: SolverConfig) -> None:
        self._system = system
        self._worker_config = worker_config

    def map(self, fn, tasks):
        distributed._pool_initializer(self._system, self._worker_config)
        return [fn(task) for task in tasks]


# -- coordinator --------------------------------------------------------------


#: Candidate shard sizes the adaptive planner chooses between, and the
#: two probe sizes it measures.  The floor keeps shards large enough
#: that the merged gap stays repairable; the ceiling keeps the probe
#: itself cheap.
_ADAPTIVE_CANDIDATES = (48, 64, 96, 128, 192, 256, 384, 512)
_ADAPTIVE_PROBE_SIZES = (192, 96)
#: Estimated fixed cost per shard dispatch (runtime build + rows export
#: + result shipping), folded into the adaptive cost model so it does
#: not pick absurdly small shards.
_ADAPTIVE_OVERHEAD_SECONDS = 0.05


def _adaptive_shard_count(
    system: CloudSystem, worker_config: SolverConfig, planned_count: int
) -> Tuple[int, Dict[str, float]]:
    """Pick the shard count from two measured probe solves.

    The per-shard solve cost is superlinear in shard size (the local
    search's shutdown sweep re-snapshots per candidate), so the optimal
    size balances that against per-shard fixed overhead.  Two probe
    shards — representative strided slices of sizes
    ``_ADAPTIVE_PROBE_SIZES`` — are solved inline and timed; fitting
    ``cost(s) = c * s**gamma`` through the two points gives the
    superlinearity exponent, and the total-cost model
    ``n/s * (cost(s) + overhead)`` is evaluated over the candidate
    sizes.  Returns the new shard count plus the probe telemetry
    (exposed in the scale benchmark).
    """
    n = system.num_clients
    sizes = [min(size, max(1, n // 2)) for size in _ADAPTIVE_PROBE_SIZES]
    if sizes[0] == sizes[1] or n < 4 * _ADAPTIVE_PROBE_SIZES[1]:
        return planned_count, {}
    measured: List[Tuple[int, float]] = []
    for size in sizes:
        spec = plan_shards(system, max(1, round(n / size)))[0]
        sub = shard_subsystem(system, spec)
        probe_config = replace(
            worker_config,
            seed=0 if worker_config.seed is None else worker_config.seed,
        )
        started = time.perf_counter()
        ResourceAllocator(probe_config).solve(sub)
        measured.append((len(spec.client_ids), time.perf_counter() - started))
    (s1, t1), (s2, t2) = measured
    if t1 <= 0 or t2 <= 0 or s1 == s2:
        return planned_count, {}
    gamma = float(np.log(t1 / t2) / np.log(s1 / s2))
    gamma = min(max(gamma, 1.0), 3.0)
    scale = t2 / (s2**gamma)

    def total_cost(size: int) -> float:
        per_shard = scale * (size**gamma) + _ADAPTIVE_OVERHEAD_SECONDS
        return (n / size) * per_shard

    best_size = min(_ADAPTIVE_CANDIDATES, key=total_cost)
    count = max(1, min(round(n / best_size), n, system.num_servers))
    telemetry = {
        "probe_size_large": float(s1),
        "probe_seconds_large": t1,
        "probe_size_small": float(s2),
        "probe_seconds_small": t2,
        "gamma": gamma,
        "chosen_shard_size": float(best_size),
    }
    return count, telemetry


def _super_shard_groups(count: int) -> List[range]:
    """Contiguous shard-index ranges, one per super-shard (level 2).

    ~sqrt(count) groups of ~sqrt(count) shards: the root coordinator
    then deals with group summaries and group row-merges only, never
    with more than ~sqrt(count) objects at a level.
    """
    num_groups = max(1, int(np.ceil(np.sqrt(count))))
    bounds = np.linspace(0, count, num_groups + 1).astype(int)
    return [
        range(int(start), int(stop))
        for start, stop in zip(bounds[:-1], bounds[1:])
        if stop > start
    ]


def _coordination_prices(
    config: SolverConfig, results: Sequence[ShardRoundResult]
) -> PriceTuple:
    """Congestion re-pricing from the merged per-cluster usage summaries."""
    used: Dict[int, float] = {}
    servers: Dict[int, int] = {}
    for result in results:
        for kid, usage in result.usage.items():
            used[kid] = used.get(kid, 0.0) + usage.used_bandwidth
            servers[kid] = servers.get(kid, 0) + usage.total_servers
    base = config.bandwidth_shadow_price
    pairs = []
    for kid in sorted(used):
        utilization = used[kid] / servers[kid] if servers[kid] else 0.0
        pairs.append((kid, base * (1.0 + config.shard_price_gain * utilization)))
    return tuple(pairs)


def _strip_clients(rows: AllocationRows, drop: Set[int]) -> AllocationRows:
    if not drop:
        return rows
    drop_list = list(drop)
    keep_a = ~np.isin(rows.assign_clients, drop_list)
    keep_e = ~np.isin(rows.entry_clients, drop_list)
    return AllocationRows(
        rows.assign_clients[keep_a],
        rows.assign_clusters[keep_a],
        rows.entry_clients[keep_e],
        rows.entry_servers[keep_e],
        rows.alpha[keep_e],
        rows.phi_p[keep_e],
        rows.phi_b[keep_e],
    )


def _reassign_stragglers(
    system: CloudSystem,
    specs: List[ShardSpec],
    results: Sequence[ShardRoundResult],
) -> Tuple[List[ShardSpec], Dict[int, Set[int]]]:
    """Move unplaced clients to the shard most likely to host them.

    Targets are ranked by (can any cluster slice still host a probe
    client profitably, total free capacity); the free-capacity score is
    decremented by a rough demand estimate as clients are routed, so one
    round spreads stragglers instead of dogpiling the roomiest shard.
    Returns the updated specs plus, per donor shard, the clients to strip
    from its shipped rows.
    """
    free_score = {
        r.shard_id: sum(
            u.free_processing + u.free_bandwidth for u in r.usage.values()
        )
        for r in results
    }
    can_host = {
        r.shard_id: any(m > NEG_INF for m in r.marginal.values())
        for r in results
    }
    members: Dict[int, Set[int]] = {
        spec.shard_id: set(spec.client_ids) for spec in specs
    }
    moved_from: Dict[int, Set[int]] = {}
    moved_any = False
    for result in results:
        for cid in sorted(result.unplaced):
            source = result.shard_id
            candidates = [s for s in free_score if s != source]
            if not candidates:
                continue
            target = max(
                candidates, key=lambda s: (can_host[s], free_score[s], -s)
            )
            if not can_host[target] or free_score[target] <= free_score[source]:
                continue
            client = system.client(cid)
            members[source].discard(cid)
            members[target].add(cid)
            moved_from.setdefault(source, set()).add(cid)
            free_score[target] -= client.rate_predicted * (
                client.t_proc + client.t_comm
            )
            moved_any = True
    if not moved_any:
        return specs, {}
    new_specs = [
        ShardSpec(
            shard_id=spec.shard_id,
            client_ids=tuple(sorted(members[spec.shard_id])),
            server_ids=spec.server_ids,
        )
        for spec in specs
    ]
    return new_specs, moved_from


class ShardedAllocator:
    """Hierarchical solver: disjoint shard solves + price coordination.

    Partitions the system into ``config.num_shards`` balanced shards
    (:func:`plan_shards`), solves each with the full heuristic on the
    persistent worker pool, then runs ``config.shard_coordination_rounds``
    rounds of per-cluster price updates, straggler reassignment and
    shard-local improvement.  Returns the best merged allocation found
    across rounds (shards are disjoint, so the sum of shard profits *is*
    the merged profit).  Use as a context manager — or call
    :meth:`close` — to release the worker processes.
    """

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        base = config or SolverConfig()
        self.config = base
        # Shards run the full heuristic (they hold every cluster's slice,
        # so cross-cluster reassignment stays on); nested sharding and
        # nested pools are off.
        self._worker_config = replace(
            base, parallel_clusters=False, num_shards=1
        )
        self._pool_manager = WorkerPool()
        #: Telemetry of the most recent :meth:`solve` — shard count,
        #: adaptive-probe fit, aggregate per-shard solve seconds.  Read by
        #: the scale benchmark; not part of the result contract.
        self.last_telemetry: Dict[str, object] = {}

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        self._pool_manager.close()

    def __enter__(self) -> "ShardedAllocator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def solve(self, system: CloudSystem) -> AllocationResult:
        started = time.perf_counter()
        config = self.config
        self.last_telemetry = {}
        count = max(1, min(config.num_shards, system.num_clients, system.num_servers))
        if config.adaptive_shard_sizing and count > 1:
            count, probe_info = _adaptive_shard_count(
                system, self._worker_config, count
            )
            count = max(1, min(count, system.num_clients, system.num_servers))
            if probe_info:
                self.last_telemetry["adaptive"] = probe_info
        self.last_telemetry["shard_count"] = count
        if count <= 1:
            # Degenerate partition: the hierarchy adds nothing over the
            # plain heuristic, so run it directly.
            return ResourceAllocator(config).solve(system)

        specs = plan_shards(system, count)
        max_workers = config.num_workers or min(count, os.cpu_count() or 1)
        if max_workers == 1:
            # A one-worker pool has no parallelism to offer; run the same
            # task functions in-process and skip pickling/IPC entirely.
            pool = _InlineExecutor(system, self._worker_config)
        else:
            pool = self._pool_manager.acquire(
                system, self._worker_config, max_workers
            )
        seed_source = np.random.default_rng(config.seed)
        rounds = config.shard_coordination_rounds
        seeds = seed_source.integers(0, 2**31 - 1, size=(rounds + 1, count))

        if config.shard_levels == 2 and count >= 4:
            return self._solve_two_tier(system, specs, pool, seeds, started)

        results: List[ShardRoundResult] = list(
            pool.map(
                _shard_solve_task,
                [
                    (spec, int(seeds[0, i]), None)
                    for i, spec in enumerate(specs)
                ],
            )
        )
        initial_profit = sum(r.initial_profit for r in results)
        round_profit = sum(r.profit for r in results)
        history = [round_profit]
        best_profit = round_profit
        best_rows = AllocationRows.concatenate([r.rows for r in results])
        shard_seconds = [r.solve_seconds for r in results]

        for round_index in range(1, rounds + 1):
            prices = _coordination_prices(config, results)
            specs, moved_from = _reassign_stragglers(system, specs, results)
            by_shard = {r.shard_id: r for r in results}
            tasks = []
            for i, spec in enumerate(specs):
                prev = by_shard[spec.shard_id]
                rows = _strip_clients(
                    prev.rows, moved_from.get(spec.shard_id, set())
                )
                # Shards whose client set changed (donors and receivers)
                # fail the worker-side spec comparison and rebuild cold
                # from these rows; unchanged shards warm-continue only
                # when the nonce proves their resident state produced
                # exactly the rows the coordinator holds.
                tasks.append(
                    (spec, rows, int(seeds[round_index, i]), prices, prev.nonce)
                )
            results = list(pool.map(_shard_improve_task, tasks))
            round_profit = sum(r.profit for r in results)
            history.append(round_profit)
            shard_seconds.extend(r.solve_seconds for r in results)
            if round_profit > best_profit:
                best_profit = round_profit
                best_rows = AllocationRows.concatenate([r.rows for r in results])

        self._record_shard_seconds(shard_seconds)
        return self._finalize(
            system, pool, best_rows, initial_profit, history, started
        )

    def _solve_two_tier(
        self,
        system: CloudSystem,
        specs: List[ShardSpec],
        pool,
        seeds: np.ndarray,
        started: float,
    ) -> AllocationResult:
        """Level-2 topology: super-shard groups between shards and root.

        The shard *plan* is the flat plan; only the coordination topology
        changes.  Shards are grouped into ~sqrt(S) contiguous super-shards
        (:func:`_super_shard_groups`).  Each super-shard dispatches its
        member shards and merges their row tables once per round; the
        root then merges the ~sqrt(S) group tables — so every
        ``AllocationRows.concatenate`` call sees one level's children,
        never all S row sets at once, yet the final table is
        bitwise-identical to the flat merge of the same results
        (concatenation in shard order is associative; property-tested).
        Prices stay global — the usage summaries are summed in shard
        order, the same accumulation the flat coordinator performs —
        while straggler reassignment is confined within each super-shard
        (a donor's rows and a receiver's spec then never cross a group
        boundary, keeping every group merge self-contained).

        With ``shard_coordination_rounds == 0`` the per-shard results are
        released as soon as their group is merged, bounding peak memory
        by one group's row tables plus the running merges — the
        million-client profile.
        """
        config = self.config
        count = len(specs)
        groups = _super_shard_groups(count)
        rounds = config.shard_coordination_rounds
        shard_seconds: List[float] = []

        group_results: List[List[ShardRoundResult]] = []
        group_rows: List[AllocationRows] = []
        # Per-shard profits are collected in flat shard order and summed
        # once: summing per group and then across groups would change the
        # float accumulation order and drift a ulp from the flat
        # coordinator's totals.
        initial_profits: List[float] = []
        round_profits: List[float] = []
        for group in groups:
            results = list(
                pool.map(
                    _shard_solve_task,
                    [(specs[i], int(seeds[0, i]), None) for i in group],
                )
            )
            initial_profits.extend(r.initial_profit for r in results)
            round_profits.extend(r.profit for r in results)
            shard_seconds.extend(r.solve_seconds for r in results)
            group_rows.append(
                AllocationRows.concatenate([r.rows for r in results])
            )
            if rounds > 0:
                group_results.append(results)
            del results
        initial_profit = sum(initial_profits)
        round_profit = sum(round_profits)
        history = [round_profit]
        best_profit = round_profit
        best_rows = AllocationRows.concatenate(group_rows)
        del group_rows

        for round_index in range(1, rounds + 1):
            prices = _coordination_prices(
                config, [r for results in group_results for r in results]
            )
            new_group_results: List[List[ShardRoundResult]] = []
            new_group_rows: List[AllocationRows] = []
            round_profits = []
            for gi, group in enumerate(groups):
                g_specs = [specs[i] for i in group]
                g_specs, moved_from = _reassign_stragglers(
                    system, g_specs, group_results[gi]
                )
                for local, i in enumerate(group):
                    specs[i] = g_specs[local]
                by_shard = {r.shard_id: r for r in group_results[gi]}
                tasks = []
                for local, i in enumerate(group):
                    spec = g_specs[local]
                    prev = by_shard[spec.shard_id]
                    rows = _strip_clients(
                        prev.rows, moved_from.get(spec.shard_id, set())
                    )
                    tasks.append(
                        (spec, rows, int(seeds[round_index, i]), prices, prev.nonce)
                    )
                results = list(pool.map(_shard_improve_task, tasks))
                round_profits.extend(r.profit for r in results)
                shard_seconds.extend(r.solve_seconds for r in results)
                new_group_rows.append(
                    AllocationRows.concatenate([r.rows for r in results])
                )
                new_group_results.append(results)
            group_results = new_group_results
            round_profit = sum(round_profits)
            history.append(round_profit)
            if round_profit > best_profit:
                best_profit = round_profit
                best_rows = AllocationRows.concatenate(new_group_rows)

        self._record_shard_seconds(shard_seconds)
        return self._finalize(
            system, pool, best_rows, initial_profit, history, started
        )

    def _record_shard_seconds(self, shard_seconds: List[float]) -> None:
        if shard_seconds:
            self.last_telemetry["shard_solve_seconds_total"] = sum(shard_seconds)
            self.last_telemetry["shard_solve_seconds_max"] = max(shard_seconds)

    def _finalize(
        self,
        system: CloudSystem,
        pool,
        best_rows: AllocationRows,
        initial_profit: float,
        history: List[float],
        started: float,
    ) -> AllocationResult:
        """Shared tail of both topologies: polish, score, package."""
        config = self.config
        merged = Allocation.from_rows(best_rows)
        if config.shard_final_rounds > 0:
            merged, polish_history = self._polish_merged(system, merged, pool)
            history.extend(polish_history)
        # Same scoring discipline as the unsharded allocator: an unserved
        # client (one no shard managed to place) marks the breakdown
        # infeasible rather than being silently dropped.
        breakdown = evaluate_profit(system, merged)
        return AllocationResult(
            allocation=merged,
            breakdown=breakdown,
            initial_profit=initial_profit,
            profit_history=history,
            rounds=len(history) - 1,
            runtime_seconds=time.perf_counter() - started,
        )

    def _polish_merged(
        self, system: CloudSystem, merged: Allocation, pool
    ) -> Tuple[Allocation, List[float]]:
        """The hierarchy's repair step: global rounds on the merged state.

        Shard-local solving can never consider a placement that crosses
        shard boundaries; these sequential improvement rounds see the
        whole system, so clients re-disperse onto any server and the
        usual tolerance exit applies.  This closes most of the partition
        gap (measured in BENCH_scale.json).

        With ``config.parallel_polish`` the improvement rounds are
        instead partitioned by cluster across the worker pool
        (:func:`_polish_cluster_task`) and followed by the sequential
        cross-cluster reassignment passes, exactly the
        :class:`~repro.core.distributed.DistributedAllocator` recipe.
        """
        config = self.config
        if config.parallel_polish:
            return self._polish_merged_parallel(system, merged, pool)
        state = WorkingState(system, merged)
        if config.use_delta_scoring:
            DeltaScorer(state, validate=config.validate_delta_scoring)
        maybe_attach_cache(state, config)
        state.canonicalize()
        if state.scorer is not None:
            state.scorer.mark_all()
            state.scorer.resync()
        allocator = ResourceAllocator(config)
        rng = np.random.default_rng(config.seed)
        blocked: Set[int] = set()
        history: List[float] = []
        profit = evaluate_profit(
            system, state.allocation, require_all_served=False
        ).total_profit
        for _ in range(config.shard_final_rounds):
            allocator.improvement_round(state, rng, blocked)
            new_profit = evaluate_profit(
                system, state.allocation, require_all_served=False
            ).total_profit
            history.append(new_profit)
            if new_profit <= profit + config.improvement_tolerance:
                break
            profit = new_profit
        return state.allocation, history

    def _polish_merged_parallel(
        self, system: CloudSystem, merged: Allocation, pool
    ) -> Tuple[Allocation, List[float]]:
        """Cluster-partitioned polish rounds + sequential cross-cluster pass.

        Each round ships every populated cluster's slice of the merged
        allocation (compact row deltas against the pool's shared system)
        to :func:`_polish_cluster_task`, concatenates the returned row
        tables, and keeps going while the merged profit improves.  The
        per-cluster moves (share adjustment, dispersion, power control,
        straggler placement) are exactly a polish round's cluster-local
        content; the one cross-cluster move — reassignment — runs
        sequentially afterwards, with the same two-pass/tolerance
        schedule :class:`~repro.core.distributed.DistributedAllocator`
        uses.  Not bit-comparable to the sequential polish (clusters no
        longer see each other inside a round), which is why the knob
        defaults off; the result is audited by the same caller.
        """
        config = self.config
        rng = np.random.default_rng(config.seed)
        history: List[float] = []
        profit = evaluate_profit(
            system, merged, require_all_served=False
        ).total_profit
        allocation = merged
        for _ in range(config.shard_final_rounds):
            cluster_ids = [
                kid
                for kid in system.cluster_ids()
                if allocation.clients_in_cluster(kid)
            ]
            if not cluster_ids:
                break
            round_seeds = rng.integers(0, 2**31 - 1, size=len(cluster_ids))
            tasks = [
                (kid, distributed._cluster_rows(allocation, kid), int(seed))
                for kid, seed in zip(cluster_ids, round_seeds)
            ]
            pieces = list(pool.map(_polish_cluster_task, tasks))
            allocation = Allocation.from_rows(AllocationRows.concatenate(pieces))
            new_profit = evaluate_profit(
                system, allocation, require_all_served=False
            ).total_profit
            history.append(new_profit)
            if new_profit <= profit + config.improvement_tolerance:
                break
            profit = new_profit
        state = WorkingState(system, allocation)
        maybe_attach_cache(state, config)
        # A client no shard ever assigned appears in no cluster task; the
        # sequential polish rescues those through the improvement round's
        # straggler placement, so this path must too — serving every
        # client is constraint (6), not a preference.
        ResourceAllocator(config)._place_stragglers(state)
        if config.include_cluster_reassignment:
            for _ in range(2):
                delta = reassignment_pass(state, config, rng)
                history.append(
                    evaluate_profit(
                        system, state.allocation, require_all_served=False
                    ).total_profit
                )
                if delta <= config.improvement_tolerance:
                    break
        return state.allocation, history
