"""``Adjust_DispersionRates`` — per-client traffic resplit (section V.B).

The dual of the share adjustment: with every GPS share frozen, the branch
service rates ``r^p = phi^p C^p / t^p`` and ``r^b = phi^b C^b / t^b`` are
constants and re-splitting the client's unit of traffic across its servers
is convex.  :func:`repro.optim.kkt.optimal_dispersion` solves it by nested
bisection; branches that end up with (numerically) zero traffic are
dropped, releasing their disk reservation and possibly letting a server
power off.

Like every improvement move, the result is committed only when the exact
evaluator agrees it does not lose profit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.audit.invariants import ACCEPT_TOLERANCE, NEGLIGIBLE_ALPHA
from repro.config import SolverConfig
from repro.core.scoring import score_state
from repro.core.state import WorkingState
from repro.optim.kkt import DispersionBranch, optimal_dispersion

#: Traffic portions below this are treated as "do not use the branch".
_NEGLIGIBLE_ALPHA = NEGLIGIBLE_ALPHA


def cached_optimal_dispersion(
    state: WorkingState,
    branches: Sequence[DispersionBranch],
    arrival_rate: float,
    config: SolverConfig,
) -> Optional[Tuple[float, ...]]:
    """:func:`~repro.optim.kkt.optimal_dispersion` through the memo cache.

    The resplit is a pure function of the branch service rates, the
    arrival rate, and the stability margin, so the cache key is those
    values verbatim — a hit replays the exact bisection result (including
    cached ``None`` for infeasible branch sets).  Used by this module and
    by the evacuation path in :mod:`repro.core.power`.
    """
    cache = state.cache
    if cache is None:
        alphas = optimal_dispersion(
            branches,
            arrival_rate,
            total=1.0,
            stability_margin=config.stability_margin,
        )
        return tuple(alphas) if alphas is not None else None
    key = (arrival_rate, config.stability_margin) + tuple(
        (branch.rate_processing, branch.rate_bandwidth) for branch in branches
    )
    found, alphas = cache.lookup_dispersion(key)
    if not found:
        solved = optimal_dispersion(
            branches,
            arrival_rate,
            total=1.0,
            stability_margin=config.stability_margin,
        )
        alphas = tuple(solved) if solved is not None else None
        cache.store_dispersion(key, alphas)
    return alphas


def adjust_dispersion_rates(
    state: WorkingState,
    client_id: int,
    config: SolverConfig,
) -> float:
    """Re-split one client's traffic across its current servers.

    Returns the realized profit delta (0.0 when the client has fewer than
    two branches, the KKT system is infeasible, or the exact evaluation
    rejects the proposal).
    """
    entries = state.allocation.entries_of_client(client_id)
    if len(entries) < 2:
        return 0.0
    client = state.system.client(client_id)
    server_ids = sorted(entries)
    branches: List[DispersionBranch] = []
    for server_id in server_ids:
        entry = entries[server_id]
        server = state.system.server(server_id)
        branches.append(
            DispersionBranch(
                rate_processing=entry.phi_p * server.cap_processing / client.t_proc,
                rate_bandwidth=entry.phi_b * server.cap_bandwidth / client.t_comm,
            )
        )
    alphas = cached_optimal_dispersion(state, branches, client.rate_predicted, config)
    if alphas is None:
        return 0.0

    before = score_state(state)
    previous: Dict[int, Tuple[float, float, float]] = {
        sid: (entries[sid].alpha, entries[sid].phi_p, entries[sid].phi_b)
        for sid in server_ids
    }
    for idx, server_id in enumerate(server_ids):
        alpha = alphas[idx]
        _, phi_p, phi_b = previous[server_id]
        if alpha <= _NEGLIGIBLE_ALPHA:
            state.remove_entry(client_id, server_id)
        else:
            state.set_entry(client_id, server_id, alpha, phi_p, phi_b)
    after = score_state(state)
    if after < before - ACCEPT_TOLERANCE:
        for server_id, (alpha, phi_p, phi_b) in previous.items():
            state.set_entry(client_id, server_id, alpha, phi_p, phi_b)
        return 0.0
    return after - before
