"""``TurnON_servers`` / ``TurnOFF_servers`` — server power moves (V.B.2).

Activating a server pays its fixed cost ``P0`` but relieves congestion;
deactivating one saves ``P0`` but squeezes its clients onto the rest of
the cluster.  Both moves follow the paper's structure:

* **TurnON** — for every server class with an idle unit, estimate for each
  client the value of shifting a grid fraction of its traffic onto a fresh
  server of that class (closed-form shares, linear utility surrogate),
  pick the best fraction per client, then solve a 0/1 knapsack over the
  new server's (quantized) processing share to select the client set.
  The move is applied tentatively and kept only if the exactly evaluated
  profit beats the activation cost.  (The paper notes its own selection is
  a low-complexity suboptimal decomposition + DP; this is our reading —
  see DESIGN.md "Substitutions".)
* **TurnOFF** — rank active servers by their approximated utility
  contribution, try to evacuate the lowest-ranked one by re-dispersing
  each hosted client over its remaining branches (falling back to a full
  in-cluster ``Assign_Distribute`` that excludes the victim), and keep the
  shutdown only when the evaluated profit improves.  Rejected candidates
  go onto a ``blocked`` set so later rounds explore other servers, exactly
  as the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.audit.invariants import (
    ACCEPT_TOLERANCE,
    NEGLIGIBLE_ALPHA,
    SHARE_BUDGET_TOLERANCE,
)
from repro.config import SolverConfig
from repro.core.assign import apply_placement, assign_distribute, _closed_form_share
from repro.core.dispersion import adjust_dispersion_rates, cached_optimal_dispersion
from repro.core.shares import adjust_resource_shares
from repro.core.scoring import score_state
from repro.core.state import WorkingState
from repro.model.client import Client
from repro.optim.kkt import DispersionBranch


@dataclass(frozen=True)
class _ActivationCandidate:
    """One client's best traffic shift onto a server being activated."""

    client_id: int
    value: float
    fraction: float
    share_units: int
    phi_p: float
    phi_b: float


def _branch_response_costs(
    state: WorkingState, client_id: int, scale: float = 1.0
) -> float:
    """Sum of ``alpha * (W_p + W_b)`` over a client's current branches.

    ``scale`` multiplies every alpha (used to estimate the relief from
    moving ``1 - scale`` of the traffic elsewhere); returns ``inf`` when
    any scaled branch would be unstable, which cannot happen for
    ``scale <= 1`` on a stable allocation.
    """
    client = state.system.client(client_id)
    total = 0.0
    for server_id, entry in state.allocation.entries_of_client(client_id).items():
        alpha = entry.alpha * scale
        if alpha <= 0.0:
            continue
        server = state.system.server(server_id)
        rate_p = entry.phi_p * server.cap_processing / client.t_proc
        rate_b = entry.phi_b * server.cap_bandwidth / client.t_comm
        arrival = alpha * client.rate_predicted
        head_p = rate_p - arrival
        head_b = rate_b - arrival
        if head_p <= 0.0 or head_b <= 0.0:
            return math.inf
        total += alpha * (1.0 / head_p + 1.0 / head_b)
    return total


def _knapsack_select(
    candidates: Sequence[_ActivationCandidate], capacity_units: int
) -> List[int]:
    """0/1 knapsack over share units; returns indices of chosen candidates."""
    best: List[float] = [0.0] * (capacity_units + 1)
    take: List[List[bool]] = []
    for candidate in candidates:
        row = [False] * (capacity_units + 1)
        weight = candidate.share_units
        for units in range(capacity_units, weight - 1, -1):
            with_it = best[units - weight] + candidate.value
            if with_it > best[units]:
                best[units] = with_it
                row[units] = True
        take.append(row)
    chosen: List[int] = []
    units = capacity_units
    for idx in range(len(candidates) - 1, -1, -1):
        if take[idx][units]:
            chosen.append(idx)
            units -= candidates[idx].share_units
    chosen.reverse()
    return chosen


def _activation_profile(
    client: Client,
    server,
    free_p: float,
    free_b: float,
    config: SolverConfig,
) -> List[Tuple[int, float, float, float]]:
    """Feasible grid points ``(g, phi_p, phi_b, cost_new_branch)`` for one
    client joining one idle server.

    Pure in (client, server class, free capacities, config): nothing here
    reads the allocation, so the result is cacheable under exactly that
    key.  The early ``break`` on the stability lower bounds and the
    ``continue`` on non-positive headroom are part of the contract — the
    returned list is precisely the grid points the original inline loop
    would have priced.
    """
    granularity = config.alpha_granularity
    linear = client.utility_class.linear_approximation()
    weight_base = client.rate_agreed * linear.slope
    s_p = server.cap_processing / client.t_proc
    s_b = server.cap_bandwidth / client.t_comm
    # Same opportunity-cost sizing as the constructor, so several
    # clients can share the freshly activated server.
    amortized = config.capacity_price_factor * server.server_class.power_fixed
    price_p = server.server_class.power_per_util + amortized
    price_b = config.bandwidth_shadow_price + amortized
    profile: List[Tuple[int, float, float, float]] = []
    for g in range(1, granularity + 1):
        fraction = g / granularity
        arrival = fraction * client.rate_predicted
        lower_p = arrival / s_p * config.stability_margin + config.min_share
        lower_b = arrival / s_b * config.stability_margin + config.min_share
        if lower_p > free_p or lower_b > free_b:
            break
        phi_p = _closed_form_share(
            s_p, arrival, weight_base * fraction, price_p, lower_p, free_p
        )
        phi_b = _closed_form_share(
            s_b, arrival, weight_base * fraction, price_b, lower_b, free_b
        )
        head_p = s_p * phi_p - arrival
        head_b = s_b * phi_b - arrival
        if head_p <= 0.0 or head_b <= 0.0:
            continue
        cost_new_branch = fraction * (1.0 / head_p + 1.0 / head_b)
        profile.append((g, phi_p, phi_b, cost_new_branch))
    return profile


def _activation_candidates(
    state: WorkingState,
    cluster_id: int,
    server_id: int,
    config: SolverConfig,
) -> List[_ActivationCandidate]:
    """Per-client best traffic shift onto the (still idle) ``server_id``."""
    granularity = config.alpha_granularity
    server = state.system.server(server_id)
    free_p = state.free_processing(server_id)
    free_b = state.free_bandwidth(server_id)
    cache = state.cache
    class_index = server.server_class.index
    candidates: List[_ActivationCandidate] = []
    for client_id in state.allocation.clients_in_cluster(cluster_id):
        entries = state.allocation.entries_of_client(client_id)
        if not entries or server_id in entries:
            continue
        client = state.system.client(client_id)
        if state.free_storage(server_id) < client.storage_req:
            continue
        linear = client.utility_class.linear_approximation()
        weight_base = client.rate_agreed * linear.slope
        cost_now = _branch_response_costs(state, client_id)
        if math.isinf(cost_now):
            continue
        # The grid-point pricing depends only on (client, server class,
        # free capacity); memoize it and replay the stored shares through
        # the state-dependent valuation below, which is arithmetic the
        # inline loop performed on the identical operands.
        if cache is not None:
            profile_key = (
                cache.client_token(client), class_index, free_p, free_b
            )
            profile = cache.lookup_activation(profile_key)
            if profile is None:
                profile = _activation_profile(client, server, free_p, free_b, config)
                cache.store_activation(profile_key, profile)
        else:
            profile = _activation_profile(client, server, free_p, free_b, config)
        best: Optional[_ActivationCandidate] = None
        for g, phi_p, phi_b, cost_new_branch in profile:
            fraction = g / granularity
            cost_scaled = _branch_response_costs(state, client_id, 1.0 - fraction)
            value = (
                weight_base * (cost_now - cost_scaled - cost_new_branch)
                - server.server_class.power_per_util * phi_p
            )
            if value <= 0.0:
                continue
            units = max(1, math.ceil(phi_p * granularity))
            if best is None or value > best.value:
                best = _ActivationCandidate(
                    client_id=client_id,
                    value=value,
                    fraction=fraction,
                    share_units=units,
                    phi_p=phi_p,
                    phi_b=phi_b,
                )
        if best is not None:
            candidates.append(best)
    return candidates


def _try_activate(
    state: WorkingState,
    cluster_id: int,
    server_id: int,
    config: SolverConfig,
) -> float:
    """Tentatively power on one server; returns the realized profit delta."""
    candidates = _activation_candidates(state, cluster_id, server_id, config)
    if not candidates:
        return 0.0
    server = state.system.server(server_id)
    capacity_units = int(state.free_processing(server_id) * config.alpha_granularity)
    chosen = _knapsack_select(candidates, capacity_units)
    expected_gain = sum(candidates[idx].value for idx in chosen)
    if expected_gain <= server.server_class.power_fixed:
        return 0.0

    before = score_state(state)
    snapshot = state.snapshot()
    for idx in sorted(chosen, key=lambda i: candidates[i].value, reverse=True):
        candidate = candidates[idx]
        client = state.system.client(candidate.client_id)
        if state.free_storage(server_id) < client.storage_req:
            continue
        # Re-bound the shares against whatever capacity is left after the
        # clients applied before this one.
        phi_p = min(candidate.phi_p, state.free_processing(server_id))
        phi_b = min(candidate.phi_b, state.free_bandwidth(server_id))
        arrival = candidate.fraction * client.rate_predicted
        if (
            phi_p * server.cap_processing / client.t_proc <= arrival
            or phi_b * server.cap_bandwidth / client.t_comm <= arrival
        ):
            continue
        keep = 1.0 - candidate.fraction
        for sid, entry in list(
            state.allocation.entries_of_client(candidate.client_id).items()
        ):
            state.set_entry(
                candidate.client_id, sid, entry.alpha * keep, entry.phi_p, entry.phi_b
            )
        state.set_entry(
            candidate.client_id, server_id, candidate.fraction, phi_p, phi_b
        )
        adjust_dispersion_rates(state, candidate.client_id, config)
    after = score_state(state)
    if after <= before + ACCEPT_TOLERANCE:
        state.restore(snapshot)
        return 0.0
    return after - before


def turn_on_servers(
    state: WorkingState, cluster_id: int, config: SolverConfig
) -> float:
    """Consider activating one idle server per server class in the cluster."""
    cluster = state.system.cluster(cluster_id)
    total_delta = 0.0
    for _, servers in sorted(cluster.servers_by_class().items()):
        idle = [
            s.server_id for s in servers if not state.server_is_active(s.server_id)
        ]
        if not idle:
            continue
        total_delta += _try_activate(state, cluster_id, idle[0], config)
    return total_delta


def _approximated_utility(state: WorkingState, server_id: int) -> float:
    """Net linear-surrogate profit flowing through one server (for ranking)."""
    server = state.system.server(server_id)
    total = -(
        server.server_class.power_fixed
        + server.server_class.power_per_util * state.used_processing(server_id)
    )
    for client_id in state.allocation.clients_on_server(server_id):
        entry = state.allocation.entry(client_id, server_id)
        if entry is None or entry.alpha <= 0.0:
            continue
        client = state.system.client(client_id)
        linear = client.utility_class.linear_approximation()
        arrival = entry.alpha * client.rate_predicted
        rate_p = entry.phi_p * server.cap_processing / client.t_proc
        rate_b = entry.phi_b * server.cap_bandwidth / client.t_comm
        head_p = rate_p - arrival
        head_b = rate_b - arrival
        branch_cost = (
            entry.alpha * (1.0 / head_p + 1.0 / head_b)
            if head_p > 0 and head_b > 0
            else math.inf
        )
        total += entry.alpha * client.rate_agreed * linear.base_value
        total -= client.rate_agreed * linear.slope * branch_cost
    return total


def _incumbent_minimum_shares(
    state: WorkingState, server_id: int, config: SolverConfig
) -> Tuple[float, float]:
    """Sum of the stability lower bounds of a server's current clients.

    Memoized on the server's mutation epoch when a cache is attached:
    the bounds read the hosted entries and their clients' rates, and both
    can only change through events that bump the epoch (entry mutations,
    ``restore``/``canonicalize`` rebuilds, client replacement via
    :meth:`~repro.core.state.WorkingState.note_client_replaced`).  The
    summation order is the entry-dict order, which is identical for
    identical epochs, so a hit is bitwise the recomputed value.
    """
    cache = state.cache
    if cache is not None:
        epoch = state.server_epoch(server_id)
        hit = cache.lookup_incumbent(server_id, epoch)
        if hit is not None:
            return hit
    server = state.system.server(server_id)
    low_p = low_b = 0.0
    for other_id in state.allocation.clients_on_server(server_id):
        other = state.system.client(other_id)
        entry = state.allocation.entry(other_id, server_id)
        assert entry is not None
        other_arrival = entry.alpha * other.rate_predicted
        low_p += (
            other_arrival * other.t_proc / server.cap_processing
        ) * config.stability_margin + config.min_share
        low_b += (
            other_arrival * other.t_comm / server.cap_bandwidth
        ) * config.stability_margin + config.min_share
    if cache is not None:
        cache.store_incumbent(server_id, epoch, (low_p, low_b))
    return low_p, low_b


def merge_client_onto_server(
    state: WorkingState,
    client_id: int,
    target_server_id: int,
    config: SolverConfig,
    traffic_fraction: float = 1.0,
) -> bool:
    """Move a fraction of a client onto an active server, re-splitting shares.

    Unlike ``Assign_Distribute`` — which only sees *free* capacity — this
    move claims a minimal stable foothold and lets
    ``Adjust_ResourceShares`` re-divide the whole server among all of its
    clients, which is exactly the paper's consolidation example ("if ...
    unassigned capacities in other servers is enough to serve that client
    with the same price, this local search will transfer the client").
    """
    client = state.system.client(client_id)
    server = state.system.server(target_server_id)
    if state.free_storage(target_server_id) < client.storage_req:
        return False
    arrival = traffic_fraction * client.rate_predicted
    lower_p = (
        arrival * client.t_proc / server.cap_processing * config.stability_margin
        + config.min_share
    )
    lower_b = (
        arrival * client.t_comm / server.cap_bandwidth * config.stability_margin
        + config.min_share
    )
    # The foothold squeezes incumbents: their stability lower bounds plus
    # the newcomer's must still fit the server.
    incumbent_low_p, incumbent_low_b = _incumbent_minimum_shares(
        state, target_server_id, config
    )
    budget_p = 1.0 - server.background_processing
    budget_b = 1.0 - server.background_bandwidth
    if incumbent_low_p + lower_p > budget_p or incumbent_low_b + lower_b > budget_b:
        return False
    # Claim a minimal foothold (the transient state may nominally exceed
    # the budget) and let the exact convex re-split divide the server.
    state.set_entry(client_id, target_server_id, traffic_fraction, lower_p, lower_b)
    adjust_resource_shares(state, target_server_id, config)
    # The accept-if-better adjustment may refuse a layout whose surrogate
    # looks worse; verify the foothold is at least stable.
    entry = state.allocation.entry(client_id, target_server_id)
    if entry is None:
        return False
    if (
        entry.phi_p * server.cap_processing / client.t_proc <= arrival
        or entry.phi_b * server.cap_bandwidth / client.t_comm <= arrival
    ):
        return False
    # The re-split must have landed back inside the budget (it only fails
    # to when adjust_resource_shares rolled back to the raw foothold).
    if (
        state.used_processing(target_server_id) > budget_p + SHARE_BUDGET_TOLERANCE
        or state.used_bandwidth(target_server_id) > budget_b + SHARE_BUDGET_TOLERANCE
    ):
        return False
    return True


def force_client_into_cluster(
    state: WorkingState,
    client_id: int,
    cluster_id: int,
    config: SolverConfig,
) -> bool:
    """Serve a straggler by splitting it over squeezed servers of one cluster.

    Computes, per server, the largest traffic fraction the client could
    stably carry if every incumbent were compressed to its stability
    minimum, greedily covers the unit of traffic with those fractions,
    then applies the per-server merges (foothold + exact re-split).
    Returns False (state restored by the caller's snapshot discipline —
    this function does not snapshot) when the cluster cannot absorb the
    client even under maximal squeezing.
    """
    client = state.system.client(client_id)
    cluster = state.system.cluster(cluster_id)
    lam = client.rate_predicted

    capacities: List[Tuple[float, int]] = []
    for server in cluster:
        sid = server.server_id
        if state.free_storage(sid) < client.storage_req:
            continue
        low_p, low_b = _incumbent_minimum_shares(state, sid, config)
        avail_p = (1.0 - server.background_processing) - low_p - config.min_share
        avail_b = (1.0 - server.background_bandwidth) - low_b - config.min_share
        if avail_p <= 0 or avail_b <= 0:
            continue
        s_p = server.cap_processing / client.t_proc
        s_b = server.cap_bandwidth / client.t_comm
        max_fraction = min(
            avail_p * s_p / (lam * config.stability_margin),
            avail_b * s_b / (lam * config.stability_margin),
            1.0,
        )
        # Leave slack so the foothold's own margin still fits.
        max_fraction *= 0.95
        if max_fraction > 1e-6:
            capacities.append((max_fraction, sid))
    capacities.sort(reverse=True)
    if sum(fraction for fraction, _ in capacities) < 1.0:
        return False

    plan: List[Tuple[int, float]] = []
    remaining = 1.0
    for max_fraction, sid in capacities:
        take = min(max_fraction, remaining)
        plan.append((sid, take))
        remaining -= take
        if remaining <= ACCEPT_TOLERANCE:
            break
    if remaining > NEGLIGIBLE_ALPHA:
        return False

    state.assign_client(client_id, cluster_id)
    for sid, fraction in plan:
        if not merge_client_onto_server(
            state, client_id, sid, config, traffic_fraction=fraction
        ):
            return False
    return True


def evacuate_client(
    state: WorkingState,
    client_id: int,
    victim_server_id: int,
    config: SolverConfig,
    excluded_server_ids: Optional[Set[int]] = None,
) -> bool:
    """Move one client's traffic off a server; True on success.

    ``excluded_server_ids`` widens the no-go set beyond the victim itself
    (the online service passes its failed-server set, so an evacuation
    never lands on another dead host).  On ``False`` the state is left
    mid-evacuation — callers roll back via their snapshot or transaction.
    """
    excluded = set(excluded_server_ids or ()) | {victim_server_id}
    cluster_id = state.allocation.cluster_of[client_id]
    client = state.system.client(client_id)
    state.remove_entry(client_id, victim_server_id)
    remaining = state.allocation.entries_of_client(client_id)
    if remaining:
        server_ids = sorted(remaining)
        branches = []
        for sid in server_ids:
            entry = remaining[sid]
            server = state.system.server(sid)
            branches.append(
                DispersionBranch(
                    rate_processing=entry.phi_p * server.cap_processing / client.t_proc,
                    rate_bandwidth=entry.phi_b * server.cap_bandwidth / client.t_comm,
                )
            )
        alphas = cached_optimal_dispersion(
            state, branches, client.rate_predicted, config
        )
        if alphas is not None:
            for idx, sid in enumerate(server_ids):
                entry = remaining[sid]
                state.set_entry(client_id, sid, alphas[idx], entry.phi_p, entry.phi_b)
            return True
    # The surviving branches cannot absorb the traffic.  Prefer merging
    # onto an already-ON server (shares re-split exactly); fall back to a
    # fresh in-cluster placement that excludes the victim.
    state.clear_client(client_id)
    targets = sorted(
        (
            sid
            for sid in state.active_server_ids(cluster_id)
            if sid not in excluded
        ),
        key=lambda sid: state.free_processing(sid),
        reverse=True,
    )
    for target in targets:
        # A transaction, not a snapshot, so the whole evacuation can nest
        # inside a caller's transaction (snapshot/restore cannot).
        state.begin_txn()
        if merge_client_onto_server(state, client_id, target, config):
            state.commit_txn()
            return True
        state.rollback_txn()
    placement = assign_distribute(
        state, client, cluster_id, config, excluded_server_ids=excluded
    )
    if placement is None:
        return False
    apply_placement(state, placement)
    return True


def turn_off_servers(
    state: WorkingState,
    cluster_id: int,
    config: SolverConfig,
    blocked: Optional[Set[int]] = None,
) -> float:
    """Try to power off low-utility servers in one cluster.

    ``blocked`` accumulates servers whose shutdown was tried and rejected,
    so repeated rounds explore other candidates (per the paper).  Returns
    the total realized profit delta.
    """
    blocked = blocked if blocked is not None else set()
    cluster = state.system.cluster(cluster_id)
    candidates = [
        s.server_id
        for s in cluster
        if state.server_is_active(s.server_id)
        and not s.has_background_load
        and s.server_id not in blocked
        and state.allocation.clients_on_server(s.server_id)
    ]
    candidates.sort(key=lambda sid: _approximated_utility(state, sid))

    total_delta = 0.0
    for victim in candidates:
        delta = try_shutdown_server(state, victim, config)
        if delta > 0.0:
            total_delta += delta
        else:
            blocked.add(victim)
    return total_delta


def try_shutdown_server(
    state: WorkingState,
    victim: int,
    config: SolverConfig,
    excluded_server_ids: Optional[Set[int]] = None,
) -> float:
    """Attempt to evacuate and power off one server, accept-if-better.

    Returns the realized profit delta (0.0 when the evacuation failed or
    the evaluated profit did not improve; the state is restored in both
    cases).  The default rollback mechanism is snapshot/restore, so it
    must not be called inside an open
    :meth:`~repro.core.state.WorkingState.begin_txn` transaction.  With
    ``config.use_txn_shutdown`` the rejection path replays the undo log
    instead — O(mutations) rather than O(live entries), the dominant
    cost of large-shard improvement rounds, at the price of not being
    *bitwise* identical to the snapshot path (see the config docs).
    ``excluded_server_ids`` bars extra servers (beyond the victim) from
    receiving the evacuated traffic.
    """
    if config.use_txn_shutdown:
        return _try_shutdown_server_txn(state, victim, config, excluded_server_ids)
    before = score_state(state)
    snapshot = state.snapshot()
    hosted = sorted(state.allocation.clients_on_server(victim))
    success = all(
        evacuate_client(state, cid, victim, config, excluded_server_ids)
        for cid in hosted
    )
    if success:
        touched = {
            sid
            for cid in hosted
            for sid in state.allocation.entries_of_client(cid)
        }
        for sid in sorted(touched):
            adjust_resource_shares(state, sid, config)
    after = score_state(state)
    if success and after > before + ACCEPT_TOLERANCE:
        return after - before
    state.restore(snapshot)
    return 0.0


def _try_shutdown_server_txn(
    state: WorkingState,
    victim: int,
    config: SolverConfig,
    excluded_server_ids: Optional[Set[int]] = None,
) -> float:
    """Transactional variant of :func:`try_shutdown_server`.

    Same evacuation sweep and accept-if-better gate, but the whole
    attempt runs inside one undo-log transaction (the nested txns of
    :func:`evacuate_client` merge into it on commit), so a rejected
    candidate unwinds in time proportional to the entries it touched.
    Because most candidates in a ``turn_off_servers`` sweep are
    rejections over a handful of clients while the state holds hundreds
    of entries, this is the difference between O(hosted) and O(system)
    per candidate.
    """
    before = score_state(state)
    state.begin_txn()
    hosted = sorted(state.allocation.clients_on_server(victim))
    success = all(
        evacuate_client(state, cid, victim, config, excluded_server_ids)
        for cid in hosted
    )
    if success:
        touched = {
            sid
            for cid in hosted
            for sid in state.allocation.entries_of_client(cid)
        }
        for sid in sorted(touched):
            adjust_resource_shares(state, sid, config)
        after = score_state(state)
        if after > before + ACCEPT_TOLERANCE:
            state.commit_txn()
            return after - before
    state.rollback_txn()
    return 0.0
