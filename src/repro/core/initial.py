"""Randomized greedy construction of initial solutions (section V.A).

The paper generates ``num_init_solns`` candidate solutions: each pass
shuffles the client processing order, then assigns every client to the
cluster where ``Assign_Distribute`` finds the highest approximated profit
given the capacity already committed in that pass.  The best-evaluated
pass seeds the improvement loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import SolverConfig
from repro.core.assign import apply_placement, best_placement
from repro.core.cache import maybe_attach_cache
from repro.core.power import force_client_into_cluster
from repro.core.state import WorkingState
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit


@dataclass
class InitialSolutionReport:
    """What the constructor produced, pass by pass."""

    best_allocation: Allocation
    best_profit: float
    pass_profits: List[float] = field(default_factory=list)
    unplaced_clients: List[int] = field(default_factory=list)


def greedy_pass(
    system: CloudSystem,
    config: SolverConfig,
    rng: np.random.Generator,
    starting_allocation: Optional[Allocation] = None,
) -> WorkingState:
    """One greedy construction pass over a random client order.

    Clients that no cluster can host through ``Assign_Distribute`` (which
    only sees *free* capacity) get a second chance via the squeeze-and-
    resplit force placement, so each pass is evaluated on the profit of
    serving everyone it possibly can — constraint (6) is part of the
    problem, not an afterthought.
    """
    allocation = (
        starting_allocation.copy() if starting_allocation is not None else None
    )
    state = WorkingState(system, allocation)
    maybe_attach_cache(state, config)
    order = list(system.client_ids())
    rng.shuffle(order)
    stragglers = []
    for client_id in order:
        client = system.client(client_id)
        placement = best_placement(state, client, config)
        if placement is not None:
            apply_placement(state, placement)
        else:
            stragglers.append(client_id)
    for client_id in stragglers:
        clusters = sorted(
            system.cluster_ids(),
            key=lambda kid: sum(
                state.free_processing(sid) + state.free_bandwidth(sid)
                for sid in system.cluster(kid).server_ids()
            ),
            reverse=True,
        )
        for cluster_id in clusters:
            snapshot = state.snapshot()
            if force_client_into_cluster(state, client_id, cluster_id, config):
                break
            state.restore(snapshot)
    return state


def build_initial_solution(
    system: CloudSystem,
    config: SolverConfig,
    rng: Optional[np.random.Generator] = None,
) -> InitialSolutionReport:
    """Run ``num_initial_solutions`` greedy passes; keep the best-evaluated one.

    Pass quality is judged by the independent evaluator on the *real*
    utility functions (not the linear surrogate the constructor optimizes),
    with unserved clients allowed: a pass that serves more clients at
    equal profit wins through its higher evaluated revenue.
    """
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    best_state: Optional[WorkingState] = None
    best_profit = -math.inf
    pass_profits: List[float] = []
    for _ in range(config.num_initial_solutions):
        state = greedy_pass(system, config, rng)
        breakdown = evaluate_profit(
            system, state.allocation, require_all_served=False
        )
        pass_profits.append(breakdown.total_profit)
        if breakdown.total_profit > best_profit:
            best_profit = breakdown.total_profit
            best_state = state
    assert best_state is not None  # num_initial_solutions >= 1
    unplaced = [
        cid
        for cid in system.client_ids()
        if not best_state.allocation.is_assigned(cid)
    ]
    return InitialSolutionReport(
        best_allocation=best_state.allocation,
        best_profit=best_profit,
        pass_profits=pass_profits,
        unplaced_clients=unplaced,
    )
