"""Distributed decision making (section V: "local agents ... parallelize
the solution and decrease the decision time").

Two layers of parallelism, both semantically transparent:

* the randomized greedy *initial solutions* are independent, so the
  ``num_initial_solutions`` passes run as separate worker processes;
* after assignment, every improvement move except cross-cluster
  reassignment (share adjustment, dispersion, power on/off) touches a
  single cluster, so each cluster's subproblem — the cluster plus the
  clients bound to it — is improved in its own worker process and the
  disjoint results are merged.  A final sequential reassignment pass
  restores the cross-cluster move.

The output is the same *kind* of solution as the sequential
:class:`~repro.core.allocator.ResourceAllocator`; the speedup factor on
``K`` clusters is what the paper's complexity paragraph claims.

**Dispatch cost.**  The first version of this module shipped the whole
:class:`~repro.model.datacenter.CloudSystem` inside *every* task tuple,
so each of the ``num_initial_solutions + K`` tasks re-pickled the full
instance (and each cluster task additionally carried a standalone
sub-system).  The pool is now *persistent*: the system and the worker
config ride to each worker exactly once through the executor's
``initializer``, tasks carry only per-task deltas (a seed, or a
``(cluster_id, allocation rows)`` payload), and the executor itself is
reused across :meth:`DistributedAllocator.solve` calls on the same
system.  Results are unchanged — the workers run the same code on the
same subproblems.
"""

from __future__ import annotations

import hashlib
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SolverConfig
from repro.core.allocator import AllocationResult, ResourceAllocator
from repro.core.cache import maybe_attach_cache
from repro.core.initial import greedy_pass
from repro.core.local_search import reassignment_pass
from repro.core.state import WorkingState
from repro.io import dump_canonical, system_to_dict
from repro.model.allocation import Allocation
from repro.model.datacenter import ArrayBackedCloudSystem, CloudSystem
from repro.model.profit import evaluate_profit

#: One client's branch rows inside a cluster task:
#: ``(client_id, ((server_id, alpha, phi_p, phi_b), ...))``.
ClientRows = Tuple[int, Tuple[Tuple[int, float, float, float], ...]]

# Per-worker-process state, installed once by the pool initializer.  The
# globals live in the *worker* interpreter; the parent only writes them
# when it is also acting as the inline fallback (num_workers == 0 is not
# a supported mode, but tests drive the task functions directly).
_WORKER_SYSTEM: Optional[CloudSystem] = None
_WORKER_CONFIG: Optional[SolverConfig] = None


def _pool_initializer(system: CloudSystem, config: SolverConfig) -> None:
    """Install the shared instance in a worker (runs once per process)."""
    global _WORKER_SYSTEM, _WORKER_CONFIG
    _WORKER_SYSTEM = system
    _WORKER_CONFIG = config


# -- system fingerprint -------------------------------------------------------

#: id(system) -> (weakref to the system, membership epoch, sha256 digest).
#: Keyed on object identity + membership epoch: recomputing the canonical
#: dump of a 100k-client system costs seconds, and pool acquisition does
#: it on *every* solve call.  The weakref callback evicts the slot when
#: the system dies, so a recycled id() can never alias a stale digest.
_FINGERPRINT_MEMO: Dict[int, Tuple["weakref.ref", int, str]] = {}

#: Population size (clients + servers) above which an array-backed
#: system's fingerprint hashes the raw column buffers instead of the
#: canonical dump (see the guard in :func:`system_fingerprint`).
_TOKEN_FINGERPRINT_FLOOR = 5_000


def system_fingerprint(system: CloudSystem) -> str:
    """Content hash of a system, memoized per live object.

    The memo is invalidated by client membership edits (tracked through
    :attr:`CloudSystem.membership_epoch`); topology is immutable, so the
    epoch fully covers the mutable surface the canonical dump sees.
    """
    key = id(system)
    slot = _FINGERPRINT_MEMO.get(key)
    if (
        slot is not None
        and slot[0]() is system
        and slot[1] == system.membership_epoch
    ):
        return slot[2]
    if (
        isinstance(system, ArrayBackedCloudSystem)
        and system.is_array_backed
        and system.num_clients + system.num_servers > _TOKEN_FINGERPRINT_FLOOR
    ):
        # Hash the raw column buffers instead of the canonical dump: the
        # dump would materialize every client/server view (minutes at
        # n=1M) while the buffers hash in milliseconds.  Guarded by a
        # size floor so small systems — the only ones that ever *thaw*
        # (the online service tier's membership edits) — keep the dump
        # scheme and fingerprints stay a pure function of content across
        # backing changes.  Large batch systems never thaw, so they are
        # only ever fingerprinted on this one path.
        hasher = hashlib.sha256(b"soa-v1:")
        hasher.update(system.name.encode("utf-8"))
        hasher.update(system.arrays.content_token())
        digest = hasher.hexdigest()
    else:
        digest = hashlib.sha256(
            dump_canonical(system_to_dict(system)).encode("utf-8")
        ).hexdigest()
    ref = weakref.ref(system, lambda _, k=key: _FINGERPRINT_MEMO.pop(k, None))
    _FINGERPRINT_MEMO[key] = (ref, system.membership_epoch, digest)
    return digest


class WorkerPool:
    """A persistent ProcessPoolExecutor primed once per (system, size).

    The system and worker config ride to each worker exactly once through
    the executor initializer; repeated :meth:`acquire` calls with the
    same system and size return the warm pool.  Shared by the per-cluster
    :class:`DistributedAllocator` and the sharded hierarchical solver.
    """

    def __init__(self) -> None:
        self._pool: Optional[ProcessPoolExecutor] = None
        self._key: Optional[Tuple[str, int]] = None

    @property
    def pool(self) -> Optional[ProcessPoolExecutor]:
        return self._pool

    @property
    def key(self) -> Optional[Tuple[str, int]]:
        return self._key

    def acquire(
        self,
        system: CloudSystem,
        worker_config: SolverConfig,
        max_workers: int,
    ) -> ProcessPoolExecutor:
        """The persistent executor primed with ``system``; re-primed on change."""
        key = (system_fingerprint(system), max_workers)
        if self._pool is not None and self._key == key:
            return self._pool
        self.close()
        self._pool = ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_pool_initializer,
            initargs=(system, worker_config),
        )
        self._key = key
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._key = None


def _initial_pass_task(seed: int) -> Tuple[float, Allocation]:
    """One greedy construction pass against the worker's shared system."""
    assert _WORKER_SYSTEM is not None and _WORKER_CONFIG is not None
    rng = np.random.default_rng(seed)
    state = greedy_pass(_WORKER_SYSTEM, _WORKER_CONFIG, rng)
    profit = evaluate_profit(
        _WORKER_SYSTEM, state.allocation, require_all_served=False
    ).total_profit
    return profit, state.allocation


def _cluster_rows(allocation: Allocation, cluster_id: int) -> Tuple[ClientRows, ...]:
    """The per-task delta: every entry row of the cluster's clients."""
    rows: List[ClientRows] = []
    for cid in allocation.clients_in_cluster(cluster_id):
        entries = allocation.entries_of_client(cid)
        rows.append(
            (
                cid,
                tuple(
                    (sid, entry.alpha, entry.phi_p, entry.phi_b)
                    for sid, entry in entries.items()
                ),
            )
        )
    return tuple(rows)


def _subproblem_from_rows(
    system: CloudSystem, cluster_id: int, rows: Sequence[ClientRows]
) -> Tuple[CloudSystem, Allocation]:
    """Rebuild one cluster's standalone instance from shared system + delta."""
    cluster = system.cluster(cluster_id)
    clients = [system.client(cid) for cid, _ in rows]
    sub_system = CloudSystem(
        clusters=[cluster],
        clients=clients,
        name=f"{system.name}/cluster-{cluster_id}",
    )
    sub_allocation = Allocation()
    for cid, entry_rows in rows:
        sub_allocation.assign_client(cid, cluster_id)
        for sid, alpha, phi_p, phi_b in entry_rows:
            sub_allocation.set_entry(cid, sid, alpha, phi_p, phi_b)
    return sub_system, sub_allocation


def _improve_cluster_task(
    task: Tuple[int, Tuple[ClientRows, ...]]
) -> Allocation:
    """Improvement loop on one cluster subproblem (shared system + delta)."""
    assert _WORKER_SYSTEM is not None and _WORKER_CONFIG is not None
    cluster_id, rows = task
    sub_system, sub_allocation = _subproblem_from_rows(
        _WORKER_SYSTEM, cluster_id, rows
    )
    allocator = ResourceAllocator(_WORKER_CONFIG)
    return allocator.improve(sub_system, sub_allocation).allocation


def _cluster_subproblem(
    system: CloudSystem, allocation: Allocation, cluster_id: int
) -> Tuple[CloudSystem, Allocation]:
    """Extract one cluster and its bound clients as a standalone instance.

    Kept as the reference construction: the worker-side
    :func:`_subproblem_from_rows` must build exactly this instance from
    the compact row payload (regression-tested).
    """
    return _subproblem_from_rows(
        system, cluster_id, _cluster_rows(allocation, cluster_id)
    )


class DistributedAllocator:
    """Per-cluster parallel variant of :class:`ResourceAllocator`.

    Holds one persistent :class:`~concurrent.futures.ProcessPoolExecutor`
    keyed to the system it was primed with; repeated :meth:`solve` calls
    on the same system reuse the warm workers (and their shipped copy of
    the instance).  Solving a different system re-primes the pool.  Use
    as a context manager — or call :meth:`close` — to release the worker
    processes; an unclosed pool is reaped with the executor's usual
    atexit handling.
    """

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        base = config or SolverConfig()
        # Workers improve a single cluster; the cross-cluster move runs in
        # the final sequential pass instead.
        self.config = base
        self._worker_config = replace(
            base, include_cluster_reassignment=False, parallel_clusters=False
        )
        self._pool_manager = WorkerPool()

    # -- pool lifecycle ------------------------------------------------------

    @property
    def _pool(self) -> Optional[ProcessPoolExecutor]:
        return self._pool_manager.pool

    @property
    def _pool_key(self) -> Optional[Tuple[str, int]]:
        return self._pool_manager.key

    def _system_fingerprint(self, system: CloudSystem) -> str:
        return system_fingerprint(system)

    def _acquire_pool(self, system: CloudSystem) -> ProcessPoolExecutor:
        """The persistent executor primed with ``system``; re-primed on change."""
        max_workers = self.config.num_workers or max(system.num_clusters, 1)
        return self._pool_manager.acquire(system, self._worker_config, max_workers)

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        self._pool_manager.close()

    def __enter__(self) -> "DistributedAllocator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- solving -------------------------------------------------------------

    def solve(self, system: CloudSystem) -> AllocationResult:
        started = time.perf_counter()
        config = self.config
        seed_source = np.random.default_rng(config.seed)
        seeds = [int(seed_source.integers(0, 2**31 - 1)) for _ in range(
            config.num_initial_solutions
        )]

        pool = self._acquire_pool(system)
        passes = list(pool.map(_initial_pass_task, seeds))
        initial_profit, allocation = max(passes, key=lambda item: item[0])

        tasks = [
            (cluster_id, _cluster_rows(allocation, cluster_id))
            for cluster_id in system.cluster_ids()
        ]
        improved = list(pool.map(_improve_cluster_task, tasks))

        merged = Allocation()
        for sub_allocation in improved:
            for cid, kid in sub_allocation.cluster_of.items():
                merged.assign_client(cid, kid)
                for sid, entry in sub_allocation.entries_of_client(cid).items():
                    merged.set_entry(cid, sid, entry.alpha, entry.phi_p, entry.phi_b)
        # Clients the greedy pass could not place carry no entries; keep
        # them visible to the final sequential pass.
        for cid in system.client_ids():
            if not merged.is_assigned(cid) and allocation.is_assigned(cid):
                merged.assign_client(cid, allocation.cluster_of[cid])

        state = WorkingState(system, merged)
        maybe_attach_cache(state, config)
        rng = np.random.default_rng(config.seed)
        history: List[float] = [
            evaluate_profit(system, merged, require_all_served=False).total_profit
        ]
        if config.include_cluster_reassignment:
            for _ in range(2):
                delta = reassignment_pass(state, config, rng)
                history.append(
                    evaluate_profit(
                        system, state.allocation, require_all_served=False
                    ).total_profit
                )
                if delta <= config.improvement_tolerance:
                    break

        breakdown = evaluate_profit(system, state.allocation)
        return AllocationResult(
            allocation=state.allocation,
            breakdown=breakdown,
            initial_profit=initial_profit,
            profit_history=history,
            rounds=len(history) - 1,
            runtime_seconds=time.perf_counter() - started,
        )
