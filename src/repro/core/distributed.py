"""Distributed decision making (section V: "local agents ... parallelize
the solution and decrease the decision time").

Two layers of parallelism, both semantically transparent:

* the randomized greedy *initial solutions* are independent, so the
  ``num_initial_solutions`` passes run as separate worker processes;
* after assignment, every improvement move except cross-cluster
  reassignment (share adjustment, dispersion, power on/off) touches a
  single cluster, so each cluster's subproblem — the cluster plus the
  clients bound to it — is improved in its own worker process and the
  disjoint results are merged.  A final sequential reassignment pass
  restores the cross-cluster move.

The output is the same *kind* of solution as the sequential
:class:`~repro.core.allocator.ResourceAllocator`; the speedup factor on
``K`` clusters is what the paper's complexity paragraph claims.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import List, Optional, Tuple

import numpy as np

from repro.config import SolverConfig
from repro.core.allocator import AllocationResult, ResourceAllocator
from repro.core.initial import greedy_pass
from repro.core.local_search import reassignment_pass
from repro.core.state import WorkingState
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit


def _initial_pass_worker(
    args: Tuple[CloudSystem, SolverConfig, int]
) -> Tuple[float, Allocation]:
    """One greedy construction pass in a worker process."""
    system, config, seed = args
    rng = np.random.default_rng(seed)
    state = greedy_pass(system, config, rng)
    profit = evaluate_profit(
        system, state.allocation, require_all_served=False
    ).total_profit
    return profit, state.allocation


def _cluster_subproblem(
    system: CloudSystem, allocation: Allocation, cluster_id: int
) -> Tuple[CloudSystem, Allocation]:
    """Extract one cluster and its bound clients as a standalone instance."""
    cluster = system.cluster(cluster_id)
    client_ids = allocation.clients_in_cluster(cluster_id)
    clients = [system.client(cid) for cid in client_ids]
    sub_system = CloudSystem(
        clusters=[cluster],
        clients=clients,
        name=f"{system.name}/cluster-{cluster_id}",
    )
    sub_allocation = Allocation()
    for cid in client_ids:
        sub_allocation.assign_client(cid, cluster_id)
        for sid, entry in allocation.entries_of_client(cid).items():
            sub_allocation.set_entry(cid, sid, entry.alpha, entry.phi_p, entry.phi_b)
    return sub_system, sub_allocation


def _improve_cluster_worker(
    args: Tuple[CloudSystem, Allocation, SolverConfig]
) -> Allocation:
    """Run the improvement loop on one cluster subproblem."""
    sub_system, sub_allocation, config = args
    allocator = ResourceAllocator(config)
    return allocator.improve(sub_system, sub_allocation).allocation


class DistributedAllocator:
    """Per-cluster parallel variant of :class:`ResourceAllocator`."""

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        base = config or SolverConfig()
        # Workers improve a single cluster; the cross-cluster move runs in
        # the final sequential pass instead.
        self.config = base
        self._worker_config = replace(
            base, include_cluster_reassignment=False, parallel_clusters=False
        )

    def solve(self, system: CloudSystem) -> AllocationResult:
        started = time.perf_counter()
        config = self.config
        seed_source = np.random.default_rng(config.seed)
        seeds = [int(seed_source.integers(0, 2**31 - 1)) for _ in range(
            config.num_initial_solutions
        )]
        max_workers = config.num_workers or max(system.num_clusters, 1)

        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            passes = list(
                pool.map(
                    _initial_pass_worker,
                    [(system, self._worker_config, seed) for seed in seeds],
                )
            )
            initial_profit, allocation = max(passes, key=lambda item: item[0])

            tasks = []
            for cluster_id in system.cluster_ids():
                sub_system, sub_allocation = _cluster_subproblem(
                    system, allocation, cluster_id
                )
                tasks.append((sub_system, sub_allocation, self._worker_config))
            improved = list(pool.map(_improve_cluster_worker, tasks))

        merged = Allocation()
        for sub_allocation in improved:
            for cid, kid in sub_allocation.cluster_of.items():
                merged.assign_client(cid, kid)
                for sid, entry in sub_allocation.entries_of_client(cid).items():
                    merged.set_entry(cid, sid, entry.alpha, entry.phi_p, entry.phi_b)
        # Clients the greedy pass could not place carry no entries; keep
        # them visible to the final sequential pass.
        for cid in system.client_ids():
            if not merged.is_assigned(cid) and allocation.is_assigned(cid):
                merged.assign_client(cid, allocation.cluster_of[cid])

        state = WorkingState(system, merged)
        rng = np.random.default_rng(config.seed)
        history: List[float] = [
            evaluate_profit(system, merged, require_all_served=False).total_profit
        ]
        if config.include_cluster_reassignment:
            for _ in range(2):
                delta = reassignment_pass(state, config, rng)
                history.append(
                    evaluate_profit(
                        system, state.allocation, require_all_served=False
                    ).total_profit
                )
                if delta <= config.improvement_tolerance:
                    break

        breakdown = evaluate_profit(system, state.allocation)
        return AllocationResult(
            allocation=state.allocation,
            breakdown=breakdown,
            initial_profit=initial_profit,
            profit_history=history,
            rounds=len(history) - 1,
            runtime_seconds=time.perf_counter() - started,
        )
