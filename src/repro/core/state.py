"""Mutable working state shared by the heuristic's moves.

:class:`WorkingState` wraps a :class:`~repro.model.CloudSystem` and an
:class:`~repro.model.Allocation` and keeps per-server usage aggregates
(processing share, bandwidth share, storage) incrementally up to date, so
the inner loops query free capacity in O(1) instead of rescanning entries.

Conventions enforced here:

* an entry with ``alpha <= 0`` is never stored (setting one removes the
  entry), so "has an entry" always means "serves traffic and reserves
  storage";
* storage is reserved once per (client, server) pair regardless of alpha,
  per the paper's constraint (8).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.exceptions import ModelError
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem


class WorkingState:
    """System + allocation + O(1) capacity aggregates."""

    def __init__(
        self, system: CloudSystem, allocation: Optional[Allocation] = None
    ) -> None:
        self.system = system
        self.allocation = allocation if allocation is not None else Allocation()
        self._used_p: Dict[int, float] = {}
        self._used_b: Dict[int, float] = {}
        self._used_storage: Dict[int, float] = {}
        self._recompute_aggregates()

    def _recompute_aggregates(self) -> None:
        self._used_p = {s.server_id: 0.0 for s in self.system.servers()}
        self._used_b = dict(self._used_p)
        self._used_storage = dict(self._used_p)
        for client_id, server_id, entry in self.allocation.iter_entries():
            self._used_p[server_id] += entry.phi_p
            self._used_b[server_id] += entry.phi_b
            self._used_storage[server_id] += self.system.client(client_id).storage_req

    # -- capacity queries ---------------------------------------------------

    def free_processing(self, server_id: int) -> float:
        server = self.system.server(server_id)
        return max(
            1.0 - server.background_processing - self._used_p[server_id], 0.0
        )

    def free_bandwidth(self, server_id: int) -> float:
        server = self.system.server(server_id)
        return max(
            1.0 - server.background_bandwidth - self._used_b[server_id], 0.0
        )

    def free_storage(self, server_id: int) -> float:
        server = self.system.server(server_id)
        return max(server.free_storage - self._used_storage[server_id], 0.0)

    def used_processing(self, server_id: int) -> float:
        return self._used_p[server_id]

    def used_bandwidth(self, server_id: int) -> float:
        return self._used_b[server_id]

    def server_is_active(self, server_id: int) -> bool:
        """ON per constraint (3): carries cloud traffic or background load."""
        if self.system.server(server_id).has_background_load:
            return True
        return self.allocation.server_is_used(server_id)

    def active_server_ids(self, cluster_id: Optional[int] = None) -> Set[int]:
        servers: Iterable = (
            self.system.cluster(cluster_id).servers
            if cluster_id is not None
            else self.system.servers()
        )
        return {s.server_id for s in servers if self.server_is_active(s.server_id)}

    def inactive_server_ids(self, cluster_id: int) -> Set[int]:
        cluster = self.system.cluster(cluster_id)
        return {
            s.server_id
            for s in cluster
            if not self.server_is_active(s.server_id)
        }

    # -- mutations ------------------------------------------------------------

    def assign_client(self, client_id: int, cluster_id: int) -> None:
        previous = self.allocation.cluster_of.get(client_id)
        if previous is not None and previous != cluster_id:
            self.clear_client(client_id)
        self.allocation.assign_client(client_id, cluster_id)

    def set_entry(
        self,
        client_id: int,
        server_id: int,
        alpha: float,
        phi_p: float,
        phi_b: float,
    ) -> None:
        """Create/overwrite an entry, keeping aggregates in sync.

        ``alpha <= 0`` removes the entry instead (zero-traffic entries are
        never stored).
        """
        if alpha <= 0.0:
            self.remove_entry(client_id, server_id)
            return
        old = self.allocation.entry(client_id, server_id)
        storage = self.system.client(client_id).storage_req
        if old is not None:
            self._used_p[server_id] -= old.phi_p
            self._used_b[server_id] -= old.phi_b
            self._used_storage[server_id] -= storage
        self.allocation.set_entry(client_id, server_id, alpha, phi_p, phi_b)
        self._used_p[server_id] += phi_p
        self._used_b[server_id] += phi_b
        self._used_storage[server_id] += storage

    def remove_entry(self, client_id: int, server_id: int) -> None:
        old = self.allocation.entry(client_id, server_id)
        if old is None:
            return
        self._used_p[server_id] -= old.phi_p
        self._used_b[server_id] -= old.phi_b
        self._used_storage[server_id] -= self.system.client(client_id).storage_req
        self.allocation.remove_entry(client_id, server_id)

    def clear_client(self, client_id: int) -> None:
        for server_id in list(self.allocation.entries_of_client(client_id)):
            self.remove_entry(client_id, server_id)

    def unassign_client(self, client_id: int) -> None:
        self.clear_client(client_id)
        self.allocation.unassign_client(client_id)

    # -- snapshots --------------------------------------------------------------

    def snapshot(self) -> Allocation:
        """Deep copy of the allocation, for rollback."""
        return self.allocation.copy()

    def restore(self, snapshot: Allocation) -> None:
        """Replace the allocation with a snapshot and rebuild aggregates."""
        self.allocation = snapshot.copy()
        self._recompute_aggregates()

    def check_consistency(self) -> None:
        """Assert the cached aggregates match a full recount (tests only)."""
        used_p, used_b, used_m = (
            dict(self._used_p),
            dict(self._used_b),
            dict(self._used_storage),
        )
        self._recompute_aggregates()
        for sid in used_p:
            if (
                abs(used_p[sid] - self._used_p[sid]) > 1e-9
                or abs(used_b[sid] - self._used_b[sid]) > 1e-9
                or abs(used_m[sid] - self._used_storage[sid]) > 1e-9
            ):
                raise ModelError(f"aggregate drift detected on server {sid}")
