"""Mutable working state shared by the heuristic's moves.

:class:`WorkingState` wraps a :class:`~repro.model.CloudSystem` and an
:class:`~repro.model.Allocation` and keeps per-server usage aggregates
(processing share, bandwidth share, storage) incrementally up to date, so
the inner loops query free capacity in O(1) instead of rescanning entries.

Conventions enforced here:

* an entry with ``alpha <= 0`` is never stored (setting one removes the
  entry), so "has an entry" always means "serves traffic and reserves
  storage";
* storage is reserved once per (client, server) pair regardless of alpha,
  per the paper's constraint (8).

Two optional facilities support the incremental hot-path engine:

* **transactions** — ``begin_txn`` starts recording an undo log of every
  entry/cluster mutation; ``rollback_txn`` replays it backwards, undoing
  a rejected move in O(mutations) instead of the O(entries) cost of a
  full ``snapshot``/``restore`` round-trip.  Transactions nest:
  committing an inner transaction folds its log into the enclosing one,
  so an outer rollback still undoes inner committed work.
* **scorer attachment** — a :class:`~repro.core.delta.DeltaScorer` may
  register itself via :meth:`attach_scorer`; every mutation then marks
  the touched client/server dirty so profit queries re-score only what
  changed.
* **cache attachment** — a :class:`~repro.core.cache.MemoCache` may be
  attached via :meth:`attach_cache`; the state maintains, per server, a
  monotone *mutation epoch* (bumped on every entry write, and for every
  server on ``restore``/``canonicalize``) that the cache uses as a fast
  staleness filter: rows whose epoch is unchanged are provably
  untouched, and only the rows whose epoch moved are rechecked against
  their stored input values.

The usage aggregates are kept twice, deliberately: as dicts (the O(1)
point queries every move uses) and as dense NumPy arrays in a fixed
server order (the batched curve kernel reads whole columns without a
per-server Python loop).  Both run the same IEEE operations in the same
order, so they are bitwise interchangeable.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.exceptions import ModelError
from repro.model.allocation import Allocation, AllocationRows, ServerAllocation
from repro.model.datacenter import CloudSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import MemoCache
    from repro.core.delta import DeltaScorer


class ClusterUsage(NamedTuple):
    """Aggregate capacity picture of one cluster (coordination summary)."""

    used_processing: float
    used_bandwidth: float
    free_processing: float
    free_bandwidth: float
    active_servers: int
    total_servers: int

#: Undo-log record: ("entry", client_id, server_id, previous_entry_or_None)
#: or ("cluster", client_id, previous_cluster_or_None).
_UndoOp = Tuple


def _entry_counts_active(entry: ServerAllocation) -> bool:
    """Same predicate as ``Allocation.server_is_used``, per entry."""
    return entry.alpha > 0.0 or entry.phi_p > 0.0 or entry.phi_b > 0.0


class ServerStatics:
    """Per-server constants, pre-resolved once so the hot kernels avoid
    repeated property chains (``server.server_class.power_fixed`` etc.)."""

    __slots__ = (
        "class_index",
        "cap_processing",
        "cap_bandwidth",
        "power_fixed",
        "power_per_util",
        "background_processing",
        "background_bandwidth",
        "free_storage_base",
        "has_background_load",
    )

    def __init__(self, server) -> None:
        self.class_index = server.server_class.index
        self.cap_processing = server.cap_processing
        self.cap_bandwidth = server.cap_bandwidth
        self.power_fixed = server.server_class.power_fixed
        self.power_per_util = server.server_class.power_per_util
        self.background_processing = server.background_processing
        self.background_bandwidth = server.background_bandwidth
        self.free_storage_base = server.free_storage
        self.has_background_load = server.has_background_load


class WorkingState:
    """System + allocation + O(1) capacity aggregates."""

    def __init__(
        self, system: CloudSystem, allocation: Optional[Allocation] = None
    ) -> None:
        self.system = system
        self.allocation = allocation if allocation is not None else Allocation()
        self._used_p: Dict[int, float] = {}
        self._used_b: Dict[int, float] = {}
        self._used_storage: Dict[int, float] = {}
        self._active_entries: Dict[int, int] = {}
        self._scorer: Optional["DeltaScorer"] = None
        self._cache: Optional["MemoCache"] = None
        self._txn_stack: List[List[_UndoOp]] = []
        self.server_statics: Dict[int, ServerStatics] = {
            s.server_id: ServerStatics(s) for s in system.servers()
        }
        #: Fixed server order shared by every dense array below.
        self._sid_order: List[int] = [s.server_id for s in system.servers()]
        self._sid_index: Dict[int, int] = {
            sid: i for i, sid in enumerate(self._sid_order)
        }
        statics = [self.server_statics[sid] for sid in self._sid_order]
        self._bg_p_arr = np.array([st.background_processing for st in statics])
        self._bg_b_arr = np.array([st.background_bandwidth for st in statics])
        self._fs_base_arr = np.array([st.free_storage_base for st in statics])
        self._cap_p_arr = np.array([st.cap_processing for st in statics])
        self._cap_b_arr = np.array([st.cap_bandwidth for st in statics])
        self._ppu_arr = np.array([st.power_per_util for st in statics])
        self._pfix_arr = np.array([st.power_fixed for st in statics])
        self._hasbg_arr = np.array(
            [st.has_background_load for st in statics], dtype=bool
        )
        #: Monotone per-server mutation counter — never reset, so an
        #: epoch-keyed cache entry can go unreachable but never stale.
        self._epoch_arr = np.zeros(len(self._sid_order), dtype=np.int64)
        #: Static cluster membership, precomputed so the placement loops
        #: don't rebuild server-id lists on every candidate evaluation.
        self.cluster_server_ids: Dict[int, List[int]] = {
            c.cluster_id: [s.server_id for s in c] for c in system.clusters
        }
        self.cluster_index_arrays: Dict[int, np.ndarray] = {
            kid: np.array([self._sid_index[sid] for sid in sids], dtype=np.intp)
            for kid, sids in self.cluster_server_ids.items()
        }
        #: Per-(price-override, base) dense price vectors, built lazily.
        self._cluster_price_arrays: Dict[Tuple, np.ndarray] = {}
        self._recompute_aggregates()

    def _recompute_aggregates(self, rows: Optional[AllocationRows] = None) -> None:
        if rows is not None:
            self._recompute_aggregates_from_rows(rows)
            return
        self._used_p = {s.server_id: 0.0 for s in self.system.servers()}
        self._used_b = dict(self._used_p)
        self._used_storage = dict(self._used_p)
        self._active_entries = {sid: 0 for sid in self._used_p}
        for client_id, server_id, entry in self.allocation.iter_entries():
            self._used_p[server_id] += entry.phi_p
            self._used_b[server_id] += entry.phi_b
            self._used_storage[server_id] += self.system.client(client_id).storage_req
            if _entry_counts_active(entry):
                self._active_entries[server_id] += 1
        order = self._sid_order
        self._used_p_arr = np.array([self._used_p[sid] for sid in order])
        self._used_b_arr = np.array([self._used_b[sid] for sid in order])
        self._used_s_arr = np.array([self._used_storage[sid] for sid in order])
        self._active_arr = np.array(
            [self._active_entries[sid] for sid in order], dtype=np.int64
        )
        # A bulk rebuild may reorder per-server aggregation, so every
        # epoch-keyed cache entry must become unreachable.
        self._epoch_arr += 1

    def _recompute_aggregates_from_rows(self, rows: AllocationRows) -> None:
        """Array-built twin of the dict recount above.

        ``np.add.at`` is unbuffered — each occurrence adds sequentially in
        row order, so per-server partial-sum sequences are identical to
        the dict loop over ``iter_entries`` (whose order the rows mirror)
        and both layouts stay bitwise interchangeable.
        """
        count = len(self._sid_order)
        used_p = np.zeros(count)
        used_b = np.zeros(count)
        used_s = np.zeros(count)
        active = np.zeros(count, dtype=np.int64)
        if rows.num_entries:
            sidx = self.server_indices(rows.entry_servers.tolist())
            np.add.at(used_p, sidx, rows.phi_p)
            np.add.at(used_b, sidx, rows.phi_b)
            storage = np.fromiter(
                (
                    self.system.client(cid).storage_req
                    for cid in rows.entry_clients.tolist()
                ),
                dtype=np.float64,
                count=rows.num_entries,
            )
            np.add.at(used_s, sidx, storage)
            counts_active = (rows.alpha > 0.0) | (rows.phi_p > 0.0) | (rows.phi_b > 0.0)
            np.add.at(active, sidx[counts_active], 1)
        self._used_p_arr = used_p
        self._used_b_arr = used_b
        self._used_s_arr = used_s
        self._active_arr = active
        order = self._sid_order
        self._used_p = dict(zip(order, used_p.tolist()))
        self._used_b = dict(zip(order, used_b.tolist()))
        self._used_storage = dict(zip(order, used_s.tolist()))
        self._active_entries = dict(zip(order, active.tolist()))
        self._epoch_arr += 1

    # -- scorer attachment --------------------------------------------------

    @property
    def scorer(self) -> Optional["DeltaScorer"]:
        """The attached incremental scorer, if any."""
        return self._scorer

    def attach_scorer(self, scorer: Optional["DeltaScorer"]) -> None:
        """Register (or detach, with ``None``) an incremental scorer."""
        self._scorer = scorer

    def _mark(self, client_id: int, server_id: Optional[int] = None) -> None:
        if self._scorer is not None:
            self._scorer.mark_client(client_id)
            if server_id is not None:
                self._scorer.mark_server(server_id)

    # -- cache attachment ---------------------------------------------------

    @property
    def cache(self) -> Optional["MemoCache"]:
        """The attached memoization cache, if any."""
        return self._cache

    def attach_cache(self, cache: Optional["MemoCache"]) -> None:
        """Register (or detach, with ``None``) a memoization cache."""
        if cache is not None:
            cache.attach(self)
        self._cache = cache

    def server_epoch(self, server_id: int) -> int:
        """Monotone mutation counter for one server (cache key component)."""
        return int(self._epoch_arr[self._sid_index[server_id]])

    def server_indices(self, server_ids: Sequence[int]) -> np.ndarray:
        """Dense-array row indices for a sequence of server ids."""
        index = self._sid_index
        return np.fromiter(
            (index[sid] for sid in server_ids),
            dtype=np.intp,
            count=len(server_ids),
        )

    def note_client_replaced(self, client_id: int) -> None:
        """The client *object* behind this id changed (e.g. a rate update).

        Cached curves keyed on the old client parameters must become
        unreachable, and so must epoch-keyed per-server derivations
        (incumbent stability bounds) on every server currently hosting
        the client — its entries did not move, but their meaning did.
        """
        if self._cache is not None:
            self._cache.invalidate_client(client_id)
        for server_id in self.allocation.entries_of_client(client_id):
            self._epoch_arr[self._sid_index[server_id]] += 1

    # -- capacity queries ---------------------------------------------------

    def free_processing(self, server_id: int) -> float:
        server = self.system.server(server_id)
        return max(
            1.0 - server.background_processing - self._used_p[server_id], 0.0
        )

    def free_bandwidth(self, server_id: int) -> float:
        server = self.system.server(server_id)
        return max(
            1.0 - server.background_bandwidth - self._used_b[server_id], 0.0
        )

    def free_storage(self, server_id: int) -> float:
        server = self.system.server(server_id)
        return max(server.free_storage - self._used_storage[server_id], 0.0)

    def used_processing(self, server_id: int) -> float:
        return self._used_p[server_id]

    def used_bandwidth(self, server_id: int) -> float:
        return self._used_b[server_id]

    def used_storage(self, server_id: int) -> float:
        return self._used_storage[server_id]

    def server_is_active(self, server_id: int) -> bool:
        """ON per constraint (3): carries cloud traffic or background load.

        O(1): background load is static and the count of traffic-carrying
        entries is maintained incrementally by the mutators below.
        """
        if self.server_statics[server_id].has_background_load:
            return True
        return self._active_entries[server_id] > 0

    def active_server_ids(self, cluster_id: Optional[int] = None) -> Set[int]:
        servers: Iterable = (
            self.system.cluster(cluster_id).servers
            if cluster_id is not None
            else self.system.servers()
        )
        return {s.server_id for s in servers if self.server_is_active(s.server_id)}

    def inactive_server_ids(self, cluster_id: int) -> Set[int]:
        cluster = self.system.cluster(cluster_id)
        return {
            s.server_id
            for s in cluster
            if not self.server_is_active(s.server_id)
        }

    # -- mutations ------------------------------------------------------------

    def assign_client(self, client_id: int, cluster_id: int) -> None:
        previous = self.allocation.cluster_of.get(client_id)
        if previous is not None and previous != cluster_id:
            self.clear_client(client_id)
        if self._txn_stack:
            self._txn_stack[-1].append(("cluster", client_id, previous))
        self.allocation.assign_client(client_id, cluster_id)
        self._mark(client_id)

    def set_entry(
        self,
        client_id: int,
        server_id: int,
        alpha: float,
        phi_p: float,
        phi_b: float,
    ) -> None:
        """Create/overwrite an entry, keeping aggregates in sync.

        ``alpha <= 0`` removes the entry instead (zero-traffic entries are
        never stored).
        """
        if alpha <= 0.0:
            self.remove_entry(client_id, server_id)
            return
        old = self.allocation.entry(client_id, server_id)
        if self._txn_stack:
            self._txn_stack[-1].append(
                ("entry", client_id, server_id, old.copy() if old else None)
            )
        storage = self.system.client(client_id).storage_req
        idx = self._sid_index[server_id]
        if old is not None:
            self._used_p[server_id] -= old.phi_p
            self._used_b[server_id] -= old.phi_b
            self._used_storage[server_id] -= storage
            if _entry_counts_active(old):
                self._active_entries[server_id] -= 1
        self.allocation.set_entry(client_id, server_id, alpha, phi_p, phi_b)
        self._used_p[server_id] += phi_p
        self._used_b[server_id] += phi_b
        self._used_storage[server_id] += storage
        self._active_entries[server_id] += 1
        self._used_p_arr[idx] = self._used_p[server_id]
        self._used_b_arr[idx] = self._used_b[server_id]
        self._used_s_arr[idx] = self._used_storage[server_id]
        self._active_arr[idx] = self._active_entries[server_id]
        self._epoch_arr[idx] += 1
        self._mark(client_id, server_id)

    def remove_entry(self, client_id: int, server_id: int) -> None:
        old = self.allocation.entry(client_id, server_id)
        if old is None:
            return
        if self._txn_stack:
            self._txn_stack[-1].append(("entry", client_id, server_id, old.copy()))
        self._used_p[server_id] -= old.phi_p
        self._used_b[server_id] -= old.phi_b
        self._used_storage[server_id] -= self.system.client(client_id).storage_req
        if _entry_counts_active(old):
            self._active_entries[server_id] -= 1
        self.allocation.remove_entry(client_id, server_id)
        idx = self._sid_index[server_id]
        self._used_p_arr[idx] = self._used_p[server_id]
        self._used_b_arr[idx] = self._used_b[server_id]
        self._used_s_arr[idx] = self._used_storage[server_id]
        self._active_arr[idx] = self._active_entries[server_id]
        self._epoch_arr[idx] += 1
        self._mark(client_id, server_id)

    def clear_client(self, client_id: int) -> None:
        for server_id in list(self.allocation.entries_of_client(client_id)):
            self.remove_entry(client_id, server_id)

    def unassign_client(self, client_id: int) -> None:
        self.clear_client(client_id)
        previous = self.allocation.cluster_of.get(client_id)
        if self._txn_stack:
            self._txn_stack[-1].append(("cluster", client_id, previous))
        self.allocation.unassign_client(client_id)
        self._mark(client_id)

    # -- transactions -----------------------------------------------------------

    def begin_txn(self) -> None:
        """Start recording an undo log; pair with commit_txn/rollback_txn."""
        self._txn_stack.append([])

    def commit_txn(self) -> None:
        """Keep the recorded mutations.

        Inside a nested transaction the log is folded into the enclosing
        frame, so a later outer rollback still undoes this work.
        """
        if not self._txn_stack:
            raise ModelError("commit_txn without a matching begin_txn")
        ops = self._txn_stack.pop()
        if self._txn_stack:
            self._txn_stack[-1].extend(ops)

    def rollback_txn(self) -> None:
        """Undo every mutation recorded since the matching begin_txn."""
        if not self._txn_stack:
            raise ModelError("rollback_txn without a matching begin_txn")
        ops = self._txn_stack.pop()
        for op in reversed(ops):
            if op[0] == "entry":
                _, client_id, server_id, old = op
                self._write_entry(client_id, server_id, old)
            else:
                _, client_id, previous = op
                if previous is None:
                    self.allocation.cluster_of.pop(client_id, None)
                else:
                    self.allocation.cluster_of[client_id] = previous
                self._mark(client_id)

    def in_txn(self) -> bool:
        return bool(self._txn_stack)

    def _write_entry(
        self,
        client_id: int,
        server_id: int,
        entry: Optional[ServerAllocation],
    ) -> None:
        """Force one entry to a recorded value (rollback path; not logged)."""
        old = self.allocation.entry(client_id, server_id)
        storage = self.system.client(client_id).storage_req
        if old is not None:
            self._used_p[server_id] -= old.phi_p
            self._used_b[server_id] -= old.phi_b
            self._used_storage[server_id] -= storage
            if _entry_counts_active(old):
                self._active_entries[server_id] -= 1
        if entry is None:
            self.allocation.remove_entry(client_id, server_id)
        else:
            self.allocation.set_entry(
                client_id, server_id, entry.alpha, entry.phi_p, entry.phi_b
            )
            self._used_p[server_id] += entry.phi_p
            self._used_b[server_id] += entry.phi_b
            self._used_storage[server_id] += storage
            if _entry_counts_active(entry):
                self._active_entries[server_id] += 1
        idx = self._sid_index[server_id]
        self._used_p_arr[idx] = self._used_p[server_id]
        self._used_b_arr[idx] = self._used_b[server_id]
        self._used_s_arr[idx] = self._used_storage[server_id]
        self._active_arr[idx] = self._active_entries[server_id]
        self._epoch_arr[idx] += 1
        self._mark(client_id, server_id)

    # -- snapshots --------------------------------------------------------------

    def snapshot(self) -> Allocation:
        """Deep copy of the allocation, for rollback."""
        return self.allocation.copy()

    def restore(self, snapshot: Allocation) -> None:
        """Replace the allocation with a snapshot and rebuild aggregates."""
        if self._txn_stack:
            raise ModelError(
                "restore() during an open transaction would corrupt the undo "
                "log; rollback_txn/commit_txn first"
            )
        self.allocation = snapshot.copy()
        self._recompute_aggregates()
        if self._cache is not None:
            self._cache.note_state_reset()
        if self._scorer is not None:
            # mark_all alone would fold the restored terms into the old
            # running sums, whose Kahan compensation still encodes the
            # discarded mutation history; resync rebuilds the totals from
            # scratch so a restored scorer is bit-identical to a fresh one.
            self._scorer.mark_all()
            self._scorer.resync()

    def export_rows(self) -> AllocationRows:
        """Flat row-table snapshot of the allocation (shard shipping)."""
        return self.allocation.to_rows()

    def restore_rows(self, rows: AllocationRows) -> None:
        """Replace the allocation from row tables and rebuild aggregates.

        The O(rows) twin of :meth:`restore`: aggregates are rebuilt by
        unbuffered array scatter-adds instead of the per-entry dict loop,
        bitwise identical because the rows mirror iteration order.  Same
        cache/scorer reset discipline as :meth:`restore`.
        """
        if self._txn_stack:
            raise ModelError(
                "restore_rows() during an open transaction would corrupt the "
                "undo log; rollback_txn/commit_txn first"
            )
        self.allocation = Allocation.from_rows(rows)
        self._recompute_aggregates(rows)
        if self._cache is not None:
            self._cache.note_state_reset()
        if self._scorer is not None:
            self._scorer.mark_all()
            self._scorer.resync()

    def cluster_usage_summary(self) -> Dict[int, ClusterUsage]:
        """Per-cluster capacity aggregates, read off the dense arrays.

        This is the coordination payload the sharded solver ships upward:
        O(servers) NumPy reductions, no per-entry traversal.
        """
        summary: Dict[int, ClusterUsage] = {}
        for kid, cidx in self.cluster_index_arrays.items():
            free_p = np.maximum(
                1.0 - self._bg_p_arr[cidx] - self._used_p_arr[cidx], 0.0
            )
            free_b = np.maximum(
                1.0 - self._bg_b_arr[cidx] - self._used_b_arr[cidx], 0.0
            )
            active = self._hasbg_arr[cidx] | (self._active_arr[cidx] > 0)
            summary[kid] = ClusterUsage(
                used_processing=float(self._used_p_arr[cidx].sum()),
                used_bandwidth=float(self._used_b_arr[cidx].sum()),
                free_processing=float(free_p.sum()),
                free_bandwidth=float(free_b.sum()),
                active_servers=int(active.sum()),
                total_servers=int(len(cidx)),
            )
        return summary

    # -- cluster-level shadow prices ----------------------------------------

    def bandwidth_price_of(self, server_id: int, config) -> float:
        """The bandwidth shadow price charged on one server.

        ``config.cluster_bandwidth_prices`` (when set) overrides the flat
        ``config.bandwidth_shadow_price`` per cluster — the coordination
        signal of the sharded solver.  Scalar twin of
        :meth:`bandwidth_prices_at`; both read the same dense vector, so
        the two eq.-(16) kernels keep seeing identical operands.
        """
        overrides = config.cluster_bandwidth_prices
        if overrides is None:
            return config.bandwidth_shadow_price
        arr = self._bandwidth_price_array(overrides, config.bandwidth_shadow_price)
        return float(arr[self._sid_index[server_id]])

    def bandwidth_prices_at(self, idx: np.ndarray, config):
        """Bandwidth shadow prices for dense-array rows ``idx``.

        Returns the flat scalar when no per-cluster overrides are set (so
        the vectorized kernel's arithmetic is unchanged bit-for-bit), and
        a per-row float64 vector otherwise.
        """
        overrides = config.cluster_bandwidth_prices
        if overrides is None:
            return config.bandwidth_shadow_price
        arr = self._bandwidth_price_array(overrides, config.bandwidth_shadow_price)
        return arr[idx]

    def _bandwidth_price_array(
        self, overrides: Tuple[Tuple[int, float], ...], base: float
    ) -> np.ndarray:
        key = (overrides, base)
        arr = self._cluster_price_arrays.get(key)
        if arr is None:
            if len(self._cluster_price_arrays) >= 8:
                self._cluster_price_arrays.pop(next(iter(self._cluster_price_arrays)))
            lookup = dict(overrides)
            arr = np.full(len(self._sid_order), base, dtype=np.float64)
            for kid, cidx in self.cluster_index_arrays.items():
                price = lookup.get(kid)
                if price is not None:
                    arr[cidx] = price
            self._cluster_price_arrays[key] = arr
        return arr

    def canonicalize(self) -> None:
        """Normalize history-dependent internal state into canonical form.

        Reorders the allocation's dicts/sets into sorted order and
        recomputes the usage aggregates in that order, so that two states
        reached through different mutation histories — e.g. a live service
        engine versus one restored from its snapshot — hold bit-identical
        derived values.  Clients whose per-server entry order changed are
        re-marked dirty on the attached scorer (their cached revenue was
        summed in the dead order), as are servers whose recomputed
        aggregates changed at the ulp level.  Not allowed inside an open
        transaction (the undo log records dict positions implicitly).
        """
        if self._txn_stack:
            raise ModelError(
                "canonicalize() during an open transaction; "
                "rollback_txn/commit_txn first"
            )
        reordered_clients = self.allocation.canonicalize()
        old_p = self._used_p
        old_b = self._used_b
        old_storage = self._used_storage
        self._recompute_aggregates()
        if self._cache is not None:
            self._cache.note_state_reset()
        if self._scorer is not None:
            for cid in reordered_clients:
                self._scorer.mark_client(cid)
            for sid in self._used_p:
                if (
                    self._used_p[sid] != old_p.get(sid)
                    or self._used_b[sid] != old_b.get(sid)
                    or self._used_storage[sid] != old_storage.get(sid)
                ):
                    self._scorer.mark_server(sid)
            self._scorer.observe()

    def check_consistency(self) -> None:
        """Assert the cached aggregates match a full recount (tests only)."""
        used_p, used_b, used_m, active = (
            dict(self._used_p),
            dict(self._used_b),
            dict(self._used_storage),
            dict(self._active_entries),
        )
        self._recompute_aggregates()
        for sid in used_p:
            if (
                abs(used_p[sid] - self._used_p[sid]) > 1e-9
                or abs(used_b[sid] - self._used_b[sid]) > 1e-9
                or abs(used_m[sid] - self._used_storage[sid]) > 1e-9
                or active[sid] != self._active_entries[sid]
            ):
                raise ModelError(f"aggregate drift detected on server {sid}")
