"""Incremental (delta) scoring of the working state.

:func:`repro.core.scoring.score` re-evaluates the whole datacenter —
every client's tandem queues, every server's energy bill, every hard
constraint — on each accept-if-better gate.  A local-search pass asks
that question twice per client move, turning one pass into an
``O(clients * system)`` affair.  :class:`DeltaScorer` brings the gate
down to ``O(touched clients + touched servers)``:

* :class:`~repro.core.state.WorkingState` marks every client and server
  a mutation touches (see ``WorkingState.attach_scorer``);
* the scorer keeps, per client, the revenue term of
  :func:`~repro.model.profit.evaluate_profit` and a hard-violation flag
  (traffic sum, cluster membership, queue stability), and per server the
  energy cost and a capacity/storage violation flag;
* a profit query lazily re-derives only the dirty entities, updates the
  running totals with compensated (Kahan) summation so thousands of
  incremental updates cannot drift past the 1e-9 agreement bound, and
  returns ``-inf`` whenever any violation flag is up — exactly the
  contract of :func:`repro.core.scoring.score` with
  ``require_all_served=False`` semantics.

:mod:`repro.model.profit` remains the single source of truth: the
per-client revenue is computed by the same
:func:`~repro.model.profit.response_time_of_entries` kernel the full
evaluator uses, and with ``validate=True`` every query is checked
against the full evaluator (wired to
``SolverConfig.validate_delta_scoring``).

All mutations must flow through ``WorkingState``'s mutators (which is
how every solver move is written).  Edits that bypass the state — calling
the underlying :class:`~repro.model.Allocation`'s mutators directly, or
assigning a stored entry's ``alpha``/``phi_p``/``phi_b`` in place — are
*detected* rather than silently mis-scored: every allocation mutation
bumps :attr:`~repro.model.allocation.Allocation.mutation_epoch`, the
scorer records the epoch of the last mutation the state told it about,
and a profit/feasibility query whose epoch it has not observed raises
:class:`~repro.exceptions.SolverError`.
"""

from __future__ import annotations

import math
from typing import Dict, Set

from repro.audit.invariants import AGREEMENT_TOLERANCE, FEASIBILITY_TOLERANCE
from repro.core.state import WorkingState
from repro.exceptions import SolverError
from repro.model.profit import response_time_of_entries

_NEG_INF = float("-inf")

__all__ = ["AGREEMENT_TOLERANCE", "DeltaScorer"]


class _KahanSum:
    """Compensated running sum: error stays O(ulp) regardless of updates."""

    __slots__ = ("value", "_compensation")

    def __init__(self) -> None:
        self.value = 0.0
        self._compensation = 0.0

    def add(self, delta: float) -> None:
        y = delta - self._compensation
        t = self.value + y
        self._compensation = (t - self.value) - y
        self.value = t


class DeltaScorer:
    """Maintains ``score(system, allocation)`` under WorkingState mutations."""

    def __init__(
        self,
        state: WorkingState,
        validate: bool = False,
        tolerance: float = FEASIBILITY_TOLERANCE,
    ) -> None:
        self.state = state
        self.validate = validate
        self.tolerance = tolerance
        self._cluster_ids = set(state.system.cluster_ids())
        self._client_revenue: Dict[int, float] = {
            cid: 0.0 for cid in state.system.client_ids()
        }
        self._client_bad: Dict[int, bool] = {
            cid: False for cid in self._client_revenue
        }
        self._server_cost: Dict[int, float] = {
            s.server_id: 0.0 for s in state.system.servers()
        }
        self._server_bad: Dict[int, bool] = {sid: False for sid in self._server_cost}
        self._revenue = _KahanSum()
        self._cost = _KahanSum()
        self._bad_count = 0
        self._dirty_clients: Set[int] = set()
        self._dirty_servers: Set[int] = set()
        self._observed_epoch = state.allocation.mutation_epoch
        self.mark_all()
        state.attach_scorer(self)

    # -- dirty tracking (called by WorkingState) -----------------------------

    def _observe_epoch(self) -> None:
        self._observed_epoch = self.state.allocation.mutation_epoch

    def mark_client(self, client_id: int) -> None:
        self._dirty_clients.add(client_id)
        self._observe_epoch()

    def mark_server(self, server_id: int) -> None:
        self._dirty_servers.add(server_id)
        self._observe_epoch()

    def mark_all(self) -> None:
        self._dirty_clients = set(self._client_revenue)
        self._dirty_servers = set(self._server_cost)
        self._observe_epoch()

    def observe(self) -> None:
        """Acknowledge an epoch bump that changed no decision values.

        ``Allocation.canonicalize`` reorders internal dicts without touching
        any entry, so there is nothing to mark dirty — but the epoch moved
        and queries would otherwise raise.
        """
        self._observe_epoch()

    # -- dynamic membership (online service hooks) ---------------------------

    def register_client(self, client_id: int) -> None:
        """Start tracking a client admitted after construction.

        Idempotent; the client is marked dirty so its first profit query
        derives its terms from scratch.
        """
        if client_id not in self._client_revenue:
            self._client_revenue[client_id] = 0.0
            self._client_bad[client_id] = False
        self.mark_client(client_id)

    def deregister_client(self, client_id: int) -> None:
        """Stop tracking a departed client, retiring its profit terms.

        The caller must have already removed the client's entries (its
        revenue contribution is rolled out of the running totals here, so
        any remaining entries would double-count).
        """
        if client_id not in self._client_revenue:
            return
        self._revenue.add(-self._client_revenue.pop(client_id))
        self._bad_count -= self._client_bad.pop(client_id)
        self._dirty_clients.discard(client_id)
        self._observe_epoch()

    # -- queries -------------------------------------------------------------

    def profit(self) -> float:
        """Total profit, or ``-inf`` on any hard violation.

        Equivalent to :func:`repro.core.scoring.score` on the current
        allocation, at ``O(dirty)`` cost.
        """
        self._check_epoch()
        self._refresh()
        if self._bad_count:
            value = _NEG_INF
        else:
            value = self._revenue.value - self._cost.value
        if self.validate:
            self._assert_matches(value)
        return value

    def feasible(self) -> bool:
        self._check_epoch()
        self._refresh()
        return self._bad_count == 0

    def resync(self) -> None:
        """Rebuild the running sums canonically (sorted order, fresh
        compensation).

        Two scorers over bit-identical state but different mutation
        histories accumulate their Kahan sums in different orders and so
        can disagree at the ulp level.  The online service calls this at
        every event boundary so a killed-and-restored engine (whose scorer
        starts fresh) continues bit-identically to one that never died.
        """
        self._check_epoch()
        self._refresh()
        cache = self.state.cache
        if cache is not None:
            cache.note_resync()
        revenue = _KahanSum()
        cost = _KahanSum()
        bad = 0
        for cid in sorted(self._client_revenue):
            revenue.add(self._client_revenue[cid])
            bad += self._client_bad[cid]
        for sid in sorted(self._server_cost):
            cost.add(self._server_cost[sid])
            bad += self._server_bad[sid]
        self._revenue = revenue
        self._cost = cost
        self._bad_count = bad

    # -- internals -----------------------------------------------------------

    def _check_epoch(self) -> None:
        current = self.state.allocation.mutation_epoch
        if current != self._observed_epoch:
            raise SolverError(
                "allocation mutated behind the working state's back: the "
                f"scorer observed epoch {self._observed_epoch} but the "
                f"allocation is at epoch {current}; route every edit "
                "through WorkingState's mutators (or call mark_all)"
            )

    def _refresh(self) -> None:
        # Sorted iteration: the Kahan accumulation order must be a function
        # of *which* entities are dirty, not of set-hashing history, or two
        # engines replaying the same events could drift at the ulp level.
        if self._dirty_clients:
            for client_id in sorted(self._dirty_clients):
                revenue, bad = self._client_terms(client_id)
                self._revenue.add(revenue - self._client_revenue[client_id])
                self._client_revenue[client_id] = revenue
                self._bad_count += bad - self._client_bad[client_id]
                self._client_bad[client_id] = bad
            self._dirty_clients.clear()
        if self._dirty_servers:
            for server_id in sorted(self._dirty_servers):
                cost, bad = self._server_terms(server_id)
                self._cost.add(cost - self._server_cost[server_id])
                self._server_cost[server_id] = cost
                self._bad_count += bad - self._server_bad[server_id]
                self._server_bad[server_id] = bad
            self._dirty_servers.clear()

    def _client_terms(self, client_id: int) -> "tuple[float, bool]":
        """(revenue, violated) for one client — mirrors evaluate_profit +
        the client/entry blocks of find_violations (require_all_served=False)."""
        state = self.state
        system = state.system
        allocation = state.allocation
        client = system.client(client_id)
        # Entry iteration order is deterministic without a per-query sort:
        # the service canonicalizes the allocation (sorted dicts) at every
        # event boundary, and all mutations in between are deterministic,
        # so two engines replaying the same events see identical orders.
        entries = allocation.entries_of_client(client_id)
        total_alpha = sum(entry.alpha for entry in entries.values())
        served = bool(entries) and total_alpha > 0.0

        response = (
            response_time_of_entries(system, client, entries, client.rate_predicted)
            if served
            else math.inf
        )
        utility_value = client.utility_class.function.value(response)
        revenue = client.rate_agreed * utility_value
        if math.isinf(response) and math.isinf(utility_value):
            revenue = 0.0

        bad = False
        cluster_id = allocation.cluster_of.get(client_id)
        if cluster_id is not None:
            if cluster_id not in self._cluster_ids:
                bad = True
            elif entries:
                if abs(total_alpha - 1.0) > self.tolerance:
                    bad = True
                else:
                    for server_id in entries:
                        if system.cluster_of_server(server_id) != cluster_id:
                            bad = True
                            break
        if not bad:
            # Constraint (7): both M/M/1 queues of every branch stable.
            for server_id, entry in entries.items():
                if entry.alpha <= 0.0:
                    continue
                server = system.server(server_id)
                arrival = entry.alpha * client.rate_predicted
                if (
                    entry.phi_p * server.cap_processing / client.t_proc <= arrival
                    or entry.phi_b * server.cap_bandwidth / client.t_comm <= arrival
                ):
                    bad = True
                    break
        return revenue, bad

    def _server_terms(self, server_id: int) -> "tuple[float, bool]":
        """(cost, violated) for one server — mirrors evaluate_profit + the
        server block of find_violations, using the O(1) state aggregates."""
        state = self.state
        server = state.system.server(server_id)
        util_p = state.used_processing(server_id) + server.background_processing
        util_b = state.used_bandwidth(server_id) + server.background_bandwidth
        cost = 0.0
        if state.server_is_active(server_id):
            cost = (
                server.server_class.power_fixed
                + server.server_class.power_per_util * min(util_p, 1.0)
            )
        bad = (
            util_p > 1.0 + self.tolerance
            or util_b > 1.0 + self.tolerance
            or (
                server.background_storage + state.used_storage(server_id)
                > server.cap_storage + self.tolerance
            )
        )
        return cost, bad

    def _assert_matches(self, value: float) -> None:
        # Local import: scoring imports model.profit, delta is imported by
        # the move modules — keep the validate-only dependency lazy.
        from repro.core.scoring import score

        reference = score(self.state.system, self.state.allocation)
        if math.isinf(value) or math.isinf(reference):
            if value != reference:
                raise SolverError(
                    f"delta scorer disagrees with evaluate_profit: "
                    f"delta={value}, full={reference}"
                )
            return
        if abs(value - reference) > AGREEMENT_TOLERANCE:
            raise SolverError(
                f"delta scorer drifted from evaluate_profit: "
                f"delta={value!r}, full={reference!r}, "
                f"diff={value - reference:.3e}"
            )
