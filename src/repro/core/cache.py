"""Cross-move memoization of the heuristic's pure inner kernels.

The local search spends almost all of its time inside a handful of
functions that are *pure* given their inputs, yet are recomputed on every
candidate move:

* the eq.-(16) force-profit curves of ``Assign_Distribute``
  (:func:`repro.core.assign.batched_server_curves`) — a function of
  (client, server class, free capacity, activity);
* the server-combination DP over those curves
  (:func:`repro.optim.dp.combine_server_curves`) — a function of the
  curves alone;
* the activation profiles of ``TurnON_servers``
  (:func:`repro.core.power._activation_candidates`'s per-grid-point
  shares) — same eq.-(16) arithmetic against an idle server;
* the incumbent stability bounds of the merge move
  (:func:`repro.core.power._incumbent_minimum_shares`) — a function of a
  server's current entries;
* the convex traffic resplit (:func:`repro.optim.kkt.optimal_dispersion`)
  — a function of the branch service rates.

:class:`MemoCache` stores each of these exactly as the kernel computed it
and keys each entry on *every* input the kernel reads, so a cache hit is
bit-for-bit the value a fresh evaluation would produce (the PR-4
differential harness runs with caching on and checks scalar/vectorized
bit-parity end to end).  Invalidation therefore never has to guess:

* **curves** are held per client as one :class:`CurveBlock` — the full
  ``(num_servers, G + 1)`` matrix plus a snapshot of the exact capacity
  inputs (used processing/bandwidth/storage, activity) each row was
  computed from.  Validation is two-tier: a vectorized compare of the
  stored *mutation-epoch* snapshot finds rows a mutation may have
  touched, then those rows' stored inputs are compared by value and only
  rows whose inputs actually changed are recomputed.  Value comparison
  (not epoch comparison) is what decides, so the unassign/rollback churn
  of the local search — which returns the aggregates to bitwise the same
  values — revalidates blocks instead of discarding them, and a
  ``restore``/``canonicalize`` (which bumps every epoch) costs one full
  value recheck rather than a rebuild.  The client side of the key is a
  **rate epoch** token that bumps whenever the client object's
  parameters change (rate updates in the online service);
* **DP tables** are memoized per (client, cluster) and validated against
  the block's per-row *content version* (a counter bumped exactly when a
  row is recomputed to new inputs) sliced at the cluster's rows, so a
  changed curve can never alias a stale table;
* **incumbent bounds** are keyed on the server's *mutation epoch*, a
  monotone counter :class:`~repro.core.state.WorkingState` bumps on every
  entry mutation (and for every server on ``restore``/``canonicalize``),
  so entries recorded before any mutation are unreachable rather than
  stale;
* **dispersion resplits** are keyed on the exact branch rates — pure
  value keys that cannot go stale.

Size is bounded per store: crossing the configured limit clears the
store (the DP memo together with the block store).  Clearing is always
safe — the cache is an accelerator, never a source of truth.

A ``MemoCache`` belongs to exactly one ``WorkingState`` (server epochs
are state-local); :meth:`attach` enforces this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import SolverConfig
    from repro.core.state import WorkingState
    from repro.model.client import Client

from repro.exceptions import SolverError

#: Grid-point record of an activation profile:
#: ``(g, phi_p, phi_b, cost_new_branch)`` for each feasible grid point.
ActivationPoint = Tuple[int, float, float, float]


def maybe_attach_cache(state: "WorkingState", config: "SolverConfig"):
    """Attach a fresh :class:`MemoCache` when the config asks for one.

    Caching only accelerates the vectorized kernels; the scalar path is
    kept cache-free as the reference oracle, so attachment requires both
    ``use_curve_cache`` and ``use_vectorized_kernels``.  Returns the
    attached cache, or ``None``.
    """
    if config.use_curve_cache and config.use_vectorized_kernels:
        cache = MemoCache(config)
        state.attach_cache(cache)
        return cache
    return None


class CurveBlock:
    """One client's memoized curve matrix over the whole server universe.

    ``epochs`` snapshots every server's mutation epoch at the moment its
    row was last validated: an unchanged epoch proves the row untouched.
    ``in_p``/``in_b``/``in_s``/``in_act`` snapshot the exact aggregate
    inputs the row was computed from; when an epoch moved, the row is
    recomputed only if those inputs differ by value (the curve kernel is
    a pure element-wise function of them, so equal inputs mean the
    stored row is bitwise what a fresh evaluation would produce).
    ``row_version`` counts actual recomputations per row — the DP memo
    validates against it, never against raw epochs.  ``row_ok`` caches
    the per-row takes-traffic predicate the DP pruning reads on every
    lookup.
    """

    __slots__ = (
        "token",
        "epochs",
        "in_p",
        "in_b",
        "in_s",
        "in_act",
        "row_version",
        "values",
        "phi_p",
        "phi_b",
        "row_ok",
    )

    def __init__(
        self,
        token: Tuple[int, int],
        epochs: np.ndarray,
        in_p: np.ndarray,
        in_b: np.ndarray,
        in_s: np.ndarray,
        in_act: np.ndarray,
        values: np.ndarray,
        phi_p: np.ndarray,
        phi_b: np.ndarray,
        row_ok: np.ndarray,
    ) -> None:
        self.token = token
        self.epochs = epochs
        self.in_p = in_p
        self.in_b = in_b
        self.in_s = in_s
        self.in_act = in_act
        self.row_version = np.zeros(len(epochs), dtype=np.int64)
        self.values = values
        self.phi_p = phi_p
        self.phi_b = phi_b
        self.row_ok = row_ok


class MemoCache:
    """Bitwise-transparent memoization of curve/DP/activation kernels."""

    def __init__(
        self,
        config: "SolverConfig",
        max_curve_entries: Optional[int] = None,
        max_aux_entries: Optional[int] = None,
    ) -> None:
        self.config = config
        self.max_curve_entries = (
            max_curve_entries
            if max_curve_entries is not None
            else config.curve_cache_max_entries
        )
        self.max_aux_entries = (
            max_aux_entries
            if max_aux_entries is not None
            else config.dp_cache_max_entries
        )
        self._owner: Optional["WorkingState"] = None
        #: ``client_id -> CurveBlock`` (one block per client).
        self._blocks: Dict[int, CurveBlock] = {}
        #: ``(client_id, cluster_id) -> (token, row-version slice, total, units)``.
        self._dp: Dict[
            Tuple[int, int],
            Tuple[Tuple[int, int], np.ndarray, float, Tuple[int, ...]],
        ] = {}
        self._activation: Dict[Tuple, List[ActivationPoint]] = {}
        self._incumbent: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self._dispersion: Dict[Tuple, Optional[Tuple[float, ...]]] = {}
        #: ``client_id -> (client object, rate epoch)``.
        self._client_tokens: Dict[int, Tuple["Client", int]] = {}
        self.stats: Dict[str, int] = {
            "curve_hits": 0,
            "curve_patches": 0,
            "curve_misses": 0,
            "dp_hits": 0,
            "dp_misses": 0,
            "activation_hits": 0,
            "activation_misses": 0,
            "incumbent_hits": 0,
            "incumbent_misses": 0,
            "dispersion_hits": 0,
            "dispersion_misses": 0,
            "evictions": 0,
            "client_epoch_bumps": 0,
        }

    # -- attachment ----------------------------------------------------------

    def attach(self, state: "WorkingState") -> None:
        """Bind the cache to one working state (epoch keys are state-local)."""
        if self._owner is not None and self._owner is not state:
            raise SolverError(
                "MemoCache is already attached to another WorkingState; "
                "server mutation epochs are state-local, so sharing a cache "
                "between states would alias unrelated epochs"
            )
        self._owner = state

    # -- client rate epochs --------------------------------------------------

    def client_token(self, client: "Client") -> Tuple[int, int]:
        """``(client_id, rate_epoch)`` identity for curve/activation keys.

        The epoch bumps whenever the client *object* for this id changes
        in any field (the online service swaps the spec on rate updates),
        so curves priced against the old rates become unreachable.  Same
        object — or an equal one — keeps the epoch, making the common
        case one identity comparison.
        """
        client_id = client.client_id
        token = self._client_tokens.get(client_id)
        if token is not None:
            stored, epoch = token
            if stored is client:
                return client_id, epoch
            if stored == client:
                self._client_tokens[client_id] = (client, epoch)
                return client_id, epoch
            epoch += 1
            self.stats["client_epoch_bumps"] += 1
            self._client_tokens[client_id] = (client, epoch)
            return client_id, epoch
        self._client_tokens[client_id] = (client, 0)
        return client_id, 0

    def invalidate_client(self, client_id: int) -> None:
        """Explicitly retire every cached object derived from this client."""
        token = self._client_tokens.get(client_id)
        if token is not None:
            self.stats["client_epoch_bumps"] += 1
            self._client_tokens[client_id] = (token[0], token[1] + 1)

    # -- auxiliary stores (activation / incumbent / dispersion) --------------

    def lookup_activation(self, key: Tuple) -> Optional[List[ActivationPoint]]:
        hit = self._activation.get(key)
        if hit is None:
            self.stats["activation_misses"] += 1
        else:
            self.stats["activation_hits"] += 1
        return hit

    def store_activation(self, key: Tuple, profile: List[ActivationPoint]) -> None:
        if len(self._activation) >= self.max_aux_entries:
            self._activation.clear()
            self.stats["evictions"] += 1
        self._activation[key] = profile

    def lookup_incumbent(
        self, server_id: int, epoch: int
    ) -> Optional[Tuple[float, float]]:
        hit = self._incumbent.get((server_id, epoch))
        if hit is None:
            self.stats["incumbent_misses"] += 1
        else:
            self.stats["incumbent_hits"] += 1
        return hit

    def store_incumbent(
        self, server_id: int, epoch: int, bounds: Tuple[float, float]
    ) -> None:
        if len(self._incumbent) >= self.max_aux_entries:
            self._incumbent.clear()
            self.stats["evictions"] += 1
        self._incumbent[(server_id, epoch)] = bounds

    def lookup_dispersion(self, key: Tuple):
        """Returns ``(found, alphas_or_None)`` — ``None`` results are cached."""
        sentinel = object()
        hit = self._dispersion.get(key, sentinel)
        if hit is sentinel:
            self.stats["dispersion_misses"] += 1
            return False, None
        self.stats["dispersion_hits"] += 1
        return True, hit

    def store_dispersion(
        self, key: Tuple, alphas: Optional[Tuple[float, ...]]
    ) -> None:
        if len(self._dispersion) >= self.max_aux_entries:
            self._dispersion.clear()
            self.stats["evictions"] += 1
        self._dispersion[key] = alphas

    # -- invalidation hooks --------------------------------------------------

    def note_state_reset(self) -> None:
        """Hook for ``WorkingState.restore``/``canonicalize``.

        Correctness needs nothing here: the state bumps every server's
        mutation epoch, making incumbent entries unreachable, and the
        curve blocks and DP tables validate by *input value* — a reset
        merely forces each block's next lookup through one full value
        recheck, after which rows whose inputs came back (the common
        case when the improvement loop restores its best-so-far
        snapshot) keep serving hits.  Only the epoch-keyed incumbent
        store turns to garbage wholesale; drop it eagerly so memory
        stays flat across the snapshot/restore churn.
        """
        self._incumbent.clear()

    def note_resync(self) -> None:
        """Hook for :meth:`repro.core.delta.DeltaScorer.resync`.

        ``resync`` rebuilds the scorer's running sums after a restore or a
        canonicalization boundary; mirror the same hygiene here (see
        :meth:`note_state_reset`).
        """
        self._incumbent.clear()

    def clear(self) -> None:
        """Drop every store (token epochs survive, so keys stay fresh)."""
        self._blocks.clear()
        self._dp.clear()
        self._activation.clear()
        self._incumbent.clear()
        self._dispersion.clear()

    # -- reporting -----------------------------------------------------------

    def hit_rate(self, section: str) -> float:
        hits = self.stats[f"{section}_hits"]
        misses = self.stats[f"{section}_misses"]
        total = hits + misses
        return hits / total if total else 0.0

    def summary(self) -> str:
        parts = []
        for section in ("curve", "dp", "activation", "incumbent", "dispersion"):
            hits = self.stats[f"{section}_hits"]
            misses = self.stats[f"{section}_misses"]
            parts.append(f"{section} {hits}/{hits + misses}")
        parts.append(f"patches {self.stats['curve_patches']}")
        parts.append(f"evictions {self.stats['evictions']}")
        return "memo cache hits: " + ", ".join(parts)
