"""The paper's contribution: the multi-stage ``Resource_Alloc`` heuristic.

Module map (section V of the paper):

* :mod:`repro.core.state` — mutable working view of capacities while solving;
* :mod:`repro.core.assign` — ``Assign_Distribute``: closed-form shares on an
  alpha grid combined by dynamic programming;
* :mod:`repro.core.initial` — randomized greedy initial solutions;
* :mod:`repro.core.shares` — ``Adjust_ResourceShares`` (per-server convex
  reallocation);
* :mod:`repro.core.dispersion` — ``Adjust_DispersionRates`` (per-client
  traffic resplit);
* :mod:`repro.core.power` — ``TurnON_servers`` / ``TurnOFF_servers``;
* :mod:`repro.core.local_search` — cluster-level client reassignment;
* :mod:`repro.core.allocator` — the top-level driver tying it together;
* :mod:`repro.core.distributed` — per-cluster parallel execution;
* :mod:`repro.core.sharded` — sharded hierarchical solver (disjoint
  client/server shards + per-cluster price coordination) for instances
  far beyond the single-state solver's reach;
* :mod:`repro.core.repair` — the move primitives re-packaged as scoped
  repair operations for the online service (:mod:`repro.service`).
"""

from repro.core.allocator import AllocationResult, ResourceAllocator
from repro.core.state import WorkingState
from repro.core.assign import CandidatePlacement, assign_distribute
from repro.core.initial import build_initial_solution
from repro.core.local_search import cluster_reassignment_search
from repro.core.admission import AdmissionResult, admission_controlled_solve
from repro.core.distributed import DistributedAllocator
from repro.core.sharded import ShardedAllocator
from repro.core.repair import (
    consolidate_servers,
    drain_server,
    place_client,
    rebalance_servers,
)
from repro.core.scoring import score

__all__ = [
    "AllocationResult",
    "ResourceAllocator",
    "WorkingState",
    "CandidatePlacement",
    "assign_distribute",
    "build_initial_solution",
    "cluster_reassignment_search",
    "AdmissionResult",
    "admission_controlled_solve",
    "DistributedAllocator",
    "ShardedAllocator",
    "consolidate_servers",
    "drain_server",
    "place_client",
    "rebalance_servers",
    "score",
]
