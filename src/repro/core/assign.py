"""``Assign_Distribute`` — place one client inside one cluster (section V.A).

For a candidate cluster the constructor answers: *if this client joined
this cluster right now, how would its traffic best split across servers,
what shares would it get, and what profit would that earn?*

Following the paper:

* the utility is replaced by its linear surrogate ``v - beta * R``;
* ``alpha`` is discretized on a grid of ``G = config.alpha_granularity``
  steps; for each server and each grid point the optimal shares come from
  the closed form of eq. (16) (processing priced at the server's real
  ``P1``, bandwidth at the configured shadow price);
* servers without enough free disk for the client are excluded up front
  (constraint (8));
* a dynamic program combines the per-server curves into traffic portions
  summing to exactly one;
* inactive servers carry their activation cost ``P0`` on any positive
  traffic, so the constructor weighs consolidation against queueing delay;
* per-server-class memoization: servers of the same class with identical
  free capacity and activity (e.g. all still-empty servers of one SKU)
  share one curve evaluation.

Two curve kernels implement the same eq.-(16) arithmetic:

* :func:`_server_curves` — the scalar reference: one server, one Python
  loop over the grid;
* :func:`batched_server_curves` — the production kernel: all memo-unique
  servers of a cluster times all ``G`` grid points in single NumPy
  expressions.  Every element goes through the identical sequence of
  IEEE-754 operations, so the two kernels agree bit-for-bit
  (property-tested in ``tests/core/test_vectorized.py``).

``SolverConfig.use_vectorized_kernels`` selects the kernel (and the
matching array vs. scalar DP).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SolverConfig
from repro.core.state import WorkingState
from repro.model.client import Client
from repro.optim.dp import (
    NEG_INF,
    combine_server_curves,
    combine_server_curves_scalar,
)

#: (alpha, phi_p, phi_b) chosen for one server.
EntryTriple = Tuple[float, float, float]


@dataclass(frozen=True)
class CandidatePlacement:
    """Outcome of ``Assign_Distribute`` for one (client, cluster) pair."""

    client_id: int
    cluster_id: int
    estimated_profit: float
    entries: Dict[int, EntryTriple]


def _closed_form_share(
    service_per_share: float,
    arrival: float,
    weight: float,
    price: float,
    lower: float,
    upper: float,
) -> float:
    """Eq. (16): the bounded optimal share for one queue."""
    if weight <= 0.0:
        return lower
    if price <= 0.0:
        return upper
    unclipped = (
        arrival + math.sqrt(weight * service_per_share / price)
    ) / service_per_share
    return min(max(unclipped, lower), upper)


def _server_curves(
    state: WorkingState,
    client: Client,
    server_id: int,
    config: SolverConfig,
) -> Tuple[List[float], List[Tuple[float, float]]]:
    """Profit curve and matching share choices for one server.

    Returns ``(values, shares)`` where ``values[g]`` is the estimated
    profit contribution of sending ``g / G`` of the client's traffic here
    and ``shares[g]`` the (phi_p, phi_b) that achieves it.  Infeasible
    grid points are ``-inf``.
    """
    granularity = config.alpha_granularity
    values = [NEG_INF] * (granularity + 1)
    shares: List[Tuple[float, float]] = [(0.0, 0.0)] * (granularity + 1)
    values[0] = 0.0

    server = state.system.server(server_id)
    if state.free_storage(server_id) < client.storage_req:
        return values, shares

    free_p = state.free_processing(server_id)
    free_b = state.free_bandwidth(server_id)
    was_active = state.server_is_active(server_id)
    linear = client.utility_class.linear_approximation()
    weight_base = client.rate_agreed * linear.slope
    s_p = server.cap_processing / client.t_proc
    s_b = server.cap_bandwidth / client.t_comm
    # Capacity is priced at its opportunity cost, not just the marginal
    # energy cost: a hogged share forces the next client onto a fresh
    # server at P0 (see SolverConfig.capacity_price_factor).
    amortized = config.capacity_price_factor * server.server_class.power_fixed
    price_p = server.server_class.power_per_util + amortized
    price_b = config.bandwidth_shadow_price + amortized

    for g in range(1, granularity + 1):
        alpha = g / granularity
        arrival = alpha * client.rate_predicted
        weight = weight_base * alpha
        lower_p = arrival / s_p * config.stability_margin + config.min_share
        lower_b = arrival / s_b * config.stability_margin + config.min_share
        if lower_p > free_p or lower_b > free_b:
            continue
        phi_p = _closed_form_share(s_p, arrival, weight, price_p, lower_p, free_p)
        phi_b = _closed_form_share(s_b, arrival, weight, price_b, lower_b, free_b)
        head_p = s_p * phi_p - arrival
        head_b = s_b * phi_b - arrival
        if head_p <= 0.0 or head_b <= 0.0:
            continue
        response_cost = alpha * (1.0 / head_p + 1.0 / head_b)
        # The shadow prices above only size the shares; the DP ranks grid
        # points by the *real* incremental cost (energy + activation).
        value = (
            -weight_base * response_cost
            - server.server_class.power_per_util * phi_p
        )
        if not was_active:
            value -= server.server_class.power_fixed
        values[g] = value
        shares[g] = (phi_p, phi_b)
    return values, shares


def batched_server_curves(
    state: WorkingState,
    client: Client,
    server_ids: Sequence[int],
    config: SolverConfig,
) -> Tuple[List[int], np.ndarray, np.ndarray, np.ndarray]:
    """Eq.-(16) curves for many servers at once, deduped by memo key.

    Returns ``(rows, values, phi_p, phi_b)`` where ``rows[i]`` indexes the
    matrix row holding the curve of ``server_ids[i]`` (servers sharing a
    (class, free capacity, storage-fit, activity) signature share a row),
    ``values`` is the ``(unique, G + 1)`` profit matrix (``-inf`` marks
    infeasible points, column 0 is the no-traffic point) and the ``phi``
    matrices hold the matching share choices.
    """
    granularity = config.alpha_granularity

    # One pass over the servers builds both the memo keys and the exemplar
    # parameter columns, reading the raw aggregate dicts and the
    # pre-resolved ServerStatics directly — the free_*/is_active arithmetic
    # is byte-for-byte the scalar kernel's, just without per-call method
    # and property dispatch (this loop dominated the profile otherwise).
    statics = state.server_statics
    used_p_map = state._used_p
    used_b_map = state._used_b
    used_s_map = state._used_storage
    active_counts = state._active_entries
    storage_req = client.storage_req
    t_proc = client.t_proc
    t_comm = client.t_comm
    factor = config.capacity_price_factor
    shadow = config.bandwidth_shadow_price

    key_to_row: Dict[Tuple, int] = {}
    rows: List[int] = []
    params: List[Tuple[float, ...]] = []
    any_usable = False
    for sid in server_ids:
        st = statics[sid]
        fp = 1.0 - st.background_processing - used_p_map[sid]
        if fp < 0.0:
            fp = 0.0
        fb = 1.0 - st.background_bandwidth - used_b_map[sid]
        if fb < 0.0:
            fb = 0.0
        fs = st.free_storage_base - used_s_map[sid]
        if fs < 0.0:
            fs = 0.0
        storage_ok = fs >= storage_req
        is_active = st.has_background_load or active_counts[sid] > 0
        key = (st.class_index, fp, fb, storage_ok, is_active)
        row = key_to_row.get(key)
        if row is None:
            row = len(params)
            key_to_row[key] = row
            amortized = factor * st.power_fixed
            params.append(
                (
                    1.0 if storage_ok else 0.0,
                    st.cap_processing / t_proc,
                    st.cap_bandwidth / t_comm,
                    fp,
                    fb,
                    st.power_per_util + amortized,
                    shadow + amortized,
                    st.power_per_util,
                    st.power_fixed,
                    1.0 if is_active else 0.0,
                )
            )
            any_usable = any_usable or storage_ok
        rows.append(row)

    unique = len(params)
    values = np.full((unique, granularity + 1), NEG_INF)
    values[:, 0] = 0.0
    phi_p_out = np.zeros((unique, granularity + 1))
    phi_b_out = np.zeros((unique, granularity + 1))

    if not any_usable:
        return rows, values, phi_p_out, phi_b_out
    cols = np.array(params, dtype=np.float64).T
    usable = cols[0] != 0.0
    s_p = cols[1]
    s_b = cols[2]
    free_p = cols[3]
    free_b = cols[4]
    price_p = cols[5]
    price_b = cols[6]
    power_per_util = cols[7]
    power_fixed = cols[8]
    active = cols[9] != 0.0

    linear = client.utility_class.linear_approximation()
    weight_base = client.rate_agreed * linear.slope

    grid = np.arange(1, granularity + 1)
    alpha = grid / granularity  # (G,)
    arrival = alpha * client.rate_predicted
    weight = weight_base * alpha
    s_p_col = s_p[:, None]
    s_b_col = s_b[:, None]
    lower_p = arrival[None, :] / s_p_col * config.stability_margin + config.min_share
    lower_b = arrival[None, :] / s_b_col * config.stability_margin + config.min_share
    feasible = (lower_p <= free_p[:, None]) & (lower_b <= free_b[:, None])

    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        if weight_base <= 0.0:
            # Scalar kernel: non-positive weight pins the share at its
            # stability lower bound.
            phi_p = lower_p
            phi_b = lower_b
        else:
            # price == 0 rows degrade gracefully: sqrt(w*s/0) = inf, and
            # the upper clip then returns the free capacity — exactly the
            # scalar kernel's "zero price takes everything" branch.
            phi_p = np.minimum(
                np.maximum(
                    (arrival[None, :] + np.sqrt(weight[None, :] * s_p_col / price_p[:, None]))
                    / s_p_col,
                    lower_p,
                ),
                free_p[:, None],
            )
            phi_b = np.minimum(
                np.maximum(
                    (arrival[None, :] + np.sqrt(weight[None, :] * s_b_col / price_b[:, None]))
                    / s_b_col,
                    lower_b,
                ),
                free_b[:, None],
            )
        head_p = s_p_col * phi_p - arrival[None, :]
        head_b = s_b_col * phi_b - arrival[None, :]
        ok = usable[:, None] & feasible & (head_p > 0.0) & (head_b > 0.0)
        response_cost = alpha[None, :] * (1.0 / head_p + 1.0 / head_b)
        value = -weight_base * response_cost - power_per_util[:, None] * phi_p
        value = np.where(active[:, None], value, value - power_fixed[:, None])

    values[:, 1:] = np.where(ok, value, NEG_INF)
    phi_p_out[:, 1:] = np.where(ok, phi_p, 0.0)
    phi_b_out[:, 1:] = np.where(ok, phi_b, 0.0)
    return rows, values, phi_p_out, phi_b_out


def assign_distribute(
    state: WorkingState,
    client: Client,
    cluster_id: int,
    config: SolverConfig,
    excluded_server_ids: Optional[AbstractSet[int]] = None,
) -> Optional[CandidatePlacement]:
    """Best placement of ``client`` inside ``cluster_id`` given free capacity.

    Returns ``None`` when the cluster cannot stably host the client's full
    traffic under current free capacities.  The placement is *not* applied;
    use :func:`apply_placement`.  ``excluded_server_ids`` removes servers
    from consideration (used when evacuating a server to turn it off).
    """
    cluster = state.system.cluster(cluster_id)
    if not cluster.servers:
        return None
    excluded = excluded_server_ids or frozenset()
    eligible = [s.server_id for s in cluster if s.server_id not in excluded]
    if not eligible:
        return None

    if config.use_vectorized_kernels:
        return _assign_distribute_vectorized(
            state, client, cluster_id, eligible, config
        )
    return _assign_distribute_scalar(state, client, cluster_id, eligible, config)


def _assign_distribute_scalar(
    state: WorkingState,
    client: Client,
    cluster_id: int,
    eligible: Sequence[int],
    config: SolverConfig,
) -> Optional[CandidatePlacement]:
    """Reference path: per-server scalar curves + pure-Python DP."""
    # Memoize curves per (class, capacity signature): interchangeable
    # servers — typically the still-empty ones of a SKU — share one solve.
    cache: Dict[Tuple, Tuple[List[float], List[Tuple[float, float]]]] = {}
    curves: List[List[float]] = []
    share_tables: List[List[Tuple[float, float]]] = []
    server_ids: List[int] = []
    for sid in eligible:
        server = state.system.server(sid)
        key = (
            server.server_class.index,
            state.free_processing(sid),
            state.free_bandwidth(sid),
            state.free_storage(sid) >= client.storage_req,
            state.server_is_active(sid),
        )
        if key not in cache:
            cache[key] = _server_curves(state, client, sid, config)
        values, shares = cache[key]
        curves.append(values)
        share_tables.append(shares)
        server_ids.append(sid)

    total, units = combine_server_curves_scalar(curves, config.alpha_granularity)
    if total == NEG_INF:
        return None

    entries: Dict[int, EntryTriple] = {}
    for idx, g in enumerate(units):
        if g == 0:
            continue
        alpha = g / config.alpha_granularity
        phi_p, phi_b = share_tables[idx][g]
        entries[server_ids[idx]] = (alpha, phi_p, phi_b)
    return _finish_placement(client, cluster_id, total, entries)


def _assign_distribute_vectorized(
    state: WorkingState,
    client: Client,
    cluster_id: int,
    eligible: Sequence[int],
    config: SolverConfig,
) -> Optional[CandidatePlacement]:
    """Production path: batched NumPy curves + array DP.

    Servers whose whole positive-traffic curve is infeasible are pruned
    before the DP — they could only ever take 0 grid units, so dropping
    them is exact and shrinks the DP when a cluster is mostly full.
    """
    rows, values, phi_p, phi_b = batched_server_curves(
        state, client, eligible, config
    )
    takes_traffic = values[:, 1:].max(axis=1) > NEG_INF
    curves: List[np.ndarray] = []
    server_ids: List[int] = []
    server_rows: List[int] = []
    for sid, row in zip(eligible, rows):
        if takes_traffic[row]:
            curves.append(values[row])
            server_ids.append(sid)
            server_rows.append(row)

    total, units = combine_server_curves(curves, config.alpha_granularity)
    if total == NEG_INF:
        return None

    entries: Dict[int, EntryTriple] = {}
    for idx, g in enumerate(units):
        if g == 0:
            continue
        alpha = g / config.alpha_granularity
        row = server_rows[idx]
        entries[server_ids[idx]] = (alpha, float(phi_p[row, g]), float(phi_b[row, g]))
    return _finish_placement(client, cluster_id, total, entries)


def _finish_placement(
    client: Client,
    cluster_id: int,
    total: float,
    entries: Dict[int, EntryTriple],
) -> Optional[CandidatePlacement]:
    if not entries:
        return None
    linear = client.utility_class.linear_approximation()
    estimated = client.rate_agreed * linear.base_value + total
    return CandidatePlacement(
        client_id=client.client_id,
        cluster_id=cluster_id,
        estimated_profit=estimated,
        entries=entries,
    )


def apply_placement(state: WorkingState, placement: CandidatePlacement) -> None:
    """Write a placement into the working state (clearing prior entries)."""
    state.assign_client(placement.client_id, placement.cluster_id)
    state.clear_client(placement.client_id)
    for server_id, (alpha, phi_p, phi_b) in placement.entries.items():
        state.set_entry(placement.client_id, server_id, alpha, phi_p, phi_b)


def best_placement(
    state: WorkingState,
    client: Client,
    config: SolverConfig,
    cluster_ids: Optional[List[int]] = None,
    excluded_server_ids: Optional[AbstractSet[int]] = None,
) -> Optional[CandidatePlacement]:
    """``Assign_Distribute`` across clusters: pick the most profitable one.

    ``excluded_server_ids`` removes servers from every candidate cluster
    (the online service uses it to place around failed servers).
    """
    kids = list(cluster_ids or state.system.cluster_ids())
    excluded = excluded_server_ids or frozenset()
    if config.use_vectorized_kernels:
        return _best_placement_vectorized(state, client, kids, config, excluded)
    candidates: List[CandidatePlacement] = []
    for cluster_id in kids:
        placement = assign_distribute(
            state, client, cluster_id, config, excluded_server_ids=excluded
        )
        if placement is not None:
            candidates.append(placement)
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.estimated_profit)


def _best_placement_vectorized(
    state: WorkingState,
    client: Client,
    kids: List[int],
    config: SolverConfig,
    excluded: AbstractSet[int] = frozenset(),
) -> Optional[CandidatePlacement]:
    """One batched curve evaluation across *all* candidate clusters.

    Curves depend only on the (client, server signature) pair, never on
    cluster identity, so the memo dedup is valid across clusters and one
    NumPy evaluation amortizes the kernel-launch overhead that dominates
    per-cluster calls on small arrays.  The per-cluster DP and the
    first-maximum tie-break are unchanged, so this returns exactly what
    the per-cluster loop would.
    """
    system = state.system
    all_ids: List[int] = []
    spans: List[Tuple[int, int, int]] = []
    for kid in kids:
        servers = [
            s for s in system.cluster(kid).servers if s.server_id not in excluded
        ]
        if not servers:
            continue
        start = len(all_ids)
        all_ids.extend(s.server_id for s in servers)
        spans.append((kid, start, len(all_ids)))
    if not all_ids:
        return None

    rows, values, phi_p, phi_b = batched_server_curves(
        state, client, all_ids, config
    )
    takes_traffic = values[:, 1:].max(axis=1) > NEG_INF
    granularity = config.alpha_granularity

    best: Optional[CandidatePlacement] = None
    for kid, start, end in spans:
        curves: List[np.ndarray] = []
        server_ids: List[int] = []
        server_rows: List[int] = []
        for i in range(start, end):
            row = rows[i]
            if takes_traffic[row]:
                curves.append(values[row])
                server_ids.append(all_ids[i])
                server_rows.append(row)
        total, units = combine_server_curves(curves, granularity)
        if total == NEG_INF:
            continue
        entries: Dict[int, EntryTriple] = {}
        for idx, g in enumerate(units):
            if g == 0:
                continue
            alpha = g / granularity
            row = server_rows[idx]
            entries[server_ids[idx]] = (
                alpha,
                float(phi_p[row, g]),
                float(phi_b[row, g]),
            )
        placement = _finish_placement(client, kid, total, entries)
        if placement is not None and (
            best is None or placement.estimated_profit > best.estimated_profit
        ):
            best = placement
    return best
