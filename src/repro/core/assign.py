"""``Assign_Distribute`` — place one client inside one cluster (section V.A).

For a candidate cluster the constructor answers: *if this client joined
this cluster right now, how would its traffic best split across servers,
what shares would it get, and what profit would that earn?*

Following the paper:

* the utility is replaced by its linear surrogate ``v - beta * R``;
* ``alpha`` is discretized on a grid of ``G = config.alpha_granularity``
  steps; for each server and each grid point the optimal shares come from
  the closed form of eq. (16) (processing priced at the server's real
  ``P1``, bandwidth at the configured shadow price);
* servers without enough free disk for the client are excluded up front
  (constraint (8));
* a dynamic program combines the per-server curves into traffic portions
  summing to exactly one;
* inactive servers carry their activation cost ``P0`` on any positive
  traffic, so the constructor weighs consolidation against queueing delay;
* per-server-class memoization: servers of the same class with identical
  free capacity and activity (e.g. all still-empty servers of one SKU)
  share one curve evaluation.

Two curve kernels implement the same eq.-(16) arithmetic:

* :func:`_server_curves` — the scalar reference: one server, one Python
  loop over the grid;
* :func:`batched_server_curves` — the production kernel: all memo-unique
  servers of a cluster times all ``G`` grid points in single NumPy
  expressions.  Every element goes through the identical sequence of
  IEEE-754 operations, so the two kernels agree bit-for-bit
  (property-tested in ``tests/core/test_vectorized.py``).

``SolverConfig.use_vectorized_kernels`` selects the kernel (and the
matching array vs. scalar DP).

When the working state carries a :class:`~repro.core.cache.MemoCache`
(``SolverConfig.use_curve_cache``), a third path serves curves from a
per-client :class:`~repro.core.cache.CurveBlock` — the client's curve
matrix over the whole server universe.  Validation is two-tier: one
vectorized compare of per-server mutation epochs narrows to rows a
mutation may have touched, then those rows' stored capacity inputs are
compared by value, and only rows whose inputs actually changed are
recomputed.  The per-cluster DP is memoized against the block's per-row
content versions.  The kernel is element-wise per row, so a patched
subset batch produces bitwise the rows a full batch would — making the
cached path bit-identical to the uncached one (differentially
verified).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SolverConfig
from repro.core.cache import CurveBlock, MemoCache
from repro.core.state import WorkingState
from repro.model.client import Client
from repro.optim.dp import (
    NEG_INF,
    combine_curve_batches,
    combine_server_curves,
    combine_server_curves_scalar,
)

#: (alpha, phi_p, phi_b) chosen for one server.
EntryTriple = Tuple[float, float, float]

#: Below this many curve cells (servers x (G+1)) the memoized scalar loop
#: beats the batched NumPy kernel, whose fixed broadcast/dispatch
#: overhead dominates tiny batches (measured on the reference host:
#: scalar wins to ~66 cells, the array kernel from ~88 cells — the
#: scalar twin's matrix scatter eats its memo win beyond a handful of
#: servers).  Mirrors ``SCALAR_CROSSOVER_CELLS`` in
#: :mod:`repro.optim.dp`; asserted never slower than scalar by
#: ``benchmarks/check_regression.py``.
CURVE_SCALAR_CROSSOVER_CELLS = 72


@dataclass(frozen=True)
class CandidatePlacement:
    """Outcome of ``Assign_Distribute`` for one (client, cluster) pair."""

    client_id: int
    cluster_id: int
    estimated_profit: float
    entries: Dict[int, EntryTriple]


def _closed_form_share(
    service_per_share: float,
    arrival: float,
    weight: float,
    price: float,
    lower: float,
    upper: float,
) -> float:
    """Eq. (16): the bounded optimal share for one queue."""
    if weight <= 0.0:
        return lower
    if price <= 0.0:
        return upper
    unclipped = (
        arrival + math.sqrt(weight * service_per_share / price)
    ) / service_per_share
    return min(max(unclipped, lower), upper)


def _server_curves(
    state: WorkingState,
    client: Client,
    server_id: int,
    config: SolverConfig,
) -> Tuple[List[float], List[Tuple[float, float]]]:
    """Profit curve and matching share choices for one server.

    Returns ``(values, shares)`` where ``values[g]`` is the estimated
    profit contribution of sending ``g / G`` of the client's traffic here
    and ``shares[g]`` the (phi_p, phi_b) that achieves it.  Infeasible
    grid points are ``-inf``.
    """
    granularity = config.alpha_granularity
    values = [NEG_INF] * (granularity + 1)
    shares: List[Tuple[float, float]] = [(0.0, 0.0)] * (granularity + 1)
    values[0] = 0.0

    server = state.system.server(server_id)
    if state.free_storage(server_id) < client.storage_req:
        return values, shares

    free_p = state.free_processing(server_id)
    free_b = state.free_bandwidth(server_id)
    was_active = state.server_is_active(server_id)
    linear = client.utility_class.linear_approximation()
    weight_base = client.rate_agreed * linear.slope
    s_p = server.cap_processing / client.t_proc
    s_b = server.cap_bandwidth / client.t_comm
    # Capacity is priced at its opportunity cost, not just the marginal
    # energy cost: a hogged share forces the next client onto a fresh
    # server at P0 (see SolverConfig.capacity_price_factor).
    amortized = config.capacity_price_factor * server.server_class.power_fixed
    price_p = server.server_class.power_per_util + amortized
    price_b = state.bandwidth_price_of(server_id, config) + amortized

    for g in range(1, granularity + 1):
        alpha = g / granularity
        arrival = alpha * client.rate_predicted
        weight = weight_base * alpha
        lower_p = arrival / s_p * config.stability_margin + config.min_share
        lower_b = arrival / s_b * config.stability_margin + config.min_share
        if lower_p > free_p or lower_b > free_b:
            continue
        phi_p = _closed_form_share(s_p, arrival, weight, price_p, lower_p, free_p)
        phi_b = _closed_form_share(s_b, arrival, weight, price_b, lower_b, free_b)
        head_p = s_p * phi_p - arrival
        head_b = s_b * phi_b - arrival
        if head_p <= 0.0 or head_b <= 0.0:
            continue
        response_cost = alpha * (1.0 / head_p + 1.0 / head_b)
        # The shadow prices above only size the shares; the DP ranks grid
        # points by the *real* incremental cost (energy + activation).
        value = (
            -weight_base * response_cost
            - server.server_class.power_per_util * phi_p
        )
        if not was_active:
            value -= server.server_class.power_fixed
        values[g] = value
        shares[g] = (phi_p, phi_b)
    return values, shares


def batched_server_curves(
    state: WorkingState,
    client: Client,
    server_ids: Sequence[int],
    config: SolverConfig,
) -> Tuple[List[int], np.ndarray, np.ndarray, np.ndarray]:
    """Eq.-(16) curves for many servers at once.

    Returns ``(rows, values, phi_p, phi_b)`` where ``rows[i]`` indexes the
    matrix row holding the curve of ``server_ids[i]``, ``values`` is the
    ``(n, G + 1)`` profit matrix (``-inf`` marks infeasible points, column
    0 is the no-traffic point) and the ``phi`` matrices hold the matching
    share choices.  Rows map one-to-one: an earlier version deduped
    signature-equal servers onto shared rows, but building those Python
    keys cost more than the duplicate NumPy lanes they saved, and since
    the kernel is element-wise per row the duplicates are bitwise equal
    anyway.
    """
    idx = state.server_indices(server_ids)
    values, phi_p_out, phi_b_out = _curves_at_indices(state, client, idx, config)
    return list(range(len(server_ids))), values, phi_p_out, phi_b_out


def _curves_at_indices(
    state: WorkingState,
    client: Client,
    idx: np.ndarray,
    config: SolverConfig,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Curve matrices for the servers at dense-array rows ``idx``.

    The free-capacity/activity inputs come straight from the state's
    incrementally maintained aggregate arrays; each output row runs the
    identical IEEE operation sequence as the scalar kernel on that server,
    independent of which other rows share the batch — which is what makes
    subset batches (cache patching) bitwise exact.

    Small batches (below :data:`CURVE_SCALAR_CROSSOVER_CELLS` cells)
    dispatch to the signature-memoized scalar kernel, which produces the
    same matrices bit-for-bit (the two kernels are property-tested
    identical) without NumPy's per-expression launch overhead.
    """
    granularity = config.alpha_granularity
    if len(idx) * (granularity + 1) <= CURVE_SCALAR_CROSSOVER_CELLS:
        return _curves_scalar_at_indices(state, client, idx, config)

    fp = 1.0 - state._bg_p_arr[idx] - state._used_p_arr[idx]
    fp = np.where(fp < 0.0, 0.0, fp)
    fb = 1.0 - state._bg_b_arr[idx] - state._used_b_arr[idx]
    fb = np.where(fb < 0.0, 0.0, fb)
    fs = state._fs_base_arr[idx] - state._used_s_arr[idx]
    fs = np.where(fs < 0.0, 0.0, fs)
    usable = fs >= client.storage_req
    active = state._hasbg_arr[idx] | (state._active_arr[idx] > 0)

    n = len(idx)
    values = np.full((n, granularity + 1), NEG_INF)
    values[:, 0] = 0.0
    phi_p_out = np.zeros((n, granularity + 1))
    phi_b_out = np.zeros((n, granularity + 1))
    if not usable.any():
        return values, phi_p_out, phi_b_out

    s_p = state._cap_p_arr[idx] / client.t_proc
    s_b = state._cap_b_arr[idx] / client.t_comm
    # Capacity is priced at its opportunity cost, not just the marginal
    # energy cost (see SolverConfig.capacity_price_factor).
    amortized = config.capacity_price_factor * state._pfix_arr[idx]
    power_per_util = state._ppu_arr[idx]
    power_fixed = state._pfix_arr[idx]
    price_p = power_per_util + amortized
    price_b = state.bandwidth_prices_at(idx, config) + amortized
    free_p = fp
    free_b = fb

    linear = client.utility_class.linear_approximation()
    weight_base = client.rate_agreed * linear.slope

    grid = np.arange(1, granularity + 1)
    alpha = grid / granularity  # (G,)
    arrival = alpha * client.rate_predicted
    weight = weight_base * alpha
    s_p_col = s_p[:, None]
    s_b_col = s_b[:, None]
    lower_p = arrival[None, :] / s_p_col * config.stability_margin + config.min_share
    lower_b = arrival[None, :] / s_b_col * config.stability_margin + config.min_share
    feasible = (lower_p <= free_p[:, None]) & (lower_b <= free_b[:, None])

    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        if weight_base <= 0.0:
            # Scalar kernel: non-positive weight pins the share at its
            # stability lower bound.
            phi_p = lower_p
            phi_b = lower_b
        else:
            # price == 0 rows degrade gracefully: sqrt(w*s/0) = inf, and
            # the upper clip then returns the free capacity — exactly the
            # scalar kernel's "zero price takes everything" branch.
            phi_p = np.minimum(
                np.maximum(
                    (arrival[None, :] + np.sqrt(weight[None, :] * s_p_col / price_p[:, None]))
                    / s_p_col,
                    lower_p,
                ),
                free_p[:, None],
            )
            phi_b = np.minimum(
                np.maximum(
                    (arrival[None, :] + np.sqrt(weight[None, :] * s_b_col / price_b[:, None]))
                    / s_b_col,
                    lower_b,
                ),
                free_b[:, None],
            )
        head_p = s_p_col * phi_p - arrival[None, :]
        head_b = s_b_col * phi_b - arrival[None, :]
        ok = usable[:, None] & feasible & (head_p > 0.0) & (head_b > 0.0)
        response_cost = alpha[None, :] * (1.0 / head_p + 1.0 / head_b)
        value = -weight_base * response_cost - power_per_util[:, None] * phi_p
        value = np.where(active[:, None], value, value - power_fixed[:, None])

    values[:, 1:] = np.where(ok, value, NEG_INF)
    phi_p_out[:, 1:] = np.where(ok, phi_p, 0.0)
    phi_b_out[:, 1:] = np.where(ok, phi_b, 0.0)
    return values, phi_p_out, phi_b_out


def _curves_scalar_at_indices(
    state: WorkingState,
    client: Client,
    idx: np.ndarray,
    config: SolverConfig,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scalar twin of the batched curve kernel for small batches.

    Runs :func:`_server_curves` per memo-unique signature (class, free
    capacities, storage fit, activity, bandwidth price) and scatters the
    resulting rows into the same matrices the vectorized kernel returns.
    Signature-equal servers — typically the still-empty ones of one SKU —
    share a single curve evaluation, which is where the scalar path's win
    on small clusters comes from.
    """
    granularity = config.alpha_granularity
    count = len(idx)
    values = np.full((count, granularity + 1), NEG_INF)
    values[:, 0] = 0.0
    phi_p_out = np.zeros((count, granularity + 1))
    phi_b_out = np.zeros((count, granularity + 1))
    sid_order = state._sid_order
    memo: Dict[Tuple, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    for row in range(count):
        sid = sid_order[idx[row]]
        key = (
            state.server_statics[sid].class_index,
            state.free_processing(sid),
            state.free_bandwidth(sid),
            state.free_storage(sid) >= client.storage_req,
            state.server_is_active(sid),
            state.bandwidth_price_of(sid, config),
        )
        rows = memo.get(key)
        if rows is None:
            curve, shares = _server_curves(state, client, sid, config)
            share_arr = np.asarray(shares)
            rows = (np.asarray(curve), share_arr[:, 0], share_arr[:, 1])
            memo[key] = rows
        values[row] = rows[0]
        phi_p_out[row] = rows[1]
        phi_b_out[row] = rows[2]
    return values, phi_p_out, phi_b_out


def assign_distribute(
    state: WorkingState,
    client: Client,
    cluster_id: int,
    config: SolverConfig,
    excluded_server_ids: Optional[AbstractSet[int]] = None,
) -> Optional[CandidatePlacement]:
    """Best placement of ``client`` inside ``cluster_id`` given free capacity.

    Returns ``None`` when the cluster cannot stably host the client's full
    traffic under current free capacities.  The placement is *not* applied;
    use :func:`apply_placement`.  ``excluded_server_ids`` removes servers
    from consideration (used when evacuating a server to turn it off).
    """
    cluster = state.system.cluster(cluster_id)
    if not cluster.servers:
        return None
    excluded = excluded_server_ids or frozenset()
    eligible = [s.server_id for s in cluster if s.server_id not in excluded]
    if not eligible:
        return None

    if config.use_vectorized_kernels:
        cache = state.cache
        if cache is not None:
            return _assign_distribute_cached(
                state, client, cluster_id, eligible, config, cache
            )
        return _assign_distribute_vectorized(
            state, client, cluster_id, eligible, config
        )
    return _assign_distribute_scalar(state, client, cluster_id, eligible, config)


def _assign_distribute_scalar(
    state: WorkingState,
    client: Client,
    cluster_id: int,
    eligible: Sequence[int],
    config: SolverConfig,
) -> Optional[CandidatePlacement]:
    """Reference path: per-server scalar curves + pure-Python DP."""
    # Memoize curves per (class, capacity signature): interchangeable
    # servers — typically the still-empty ones of a SKU — share one solve.
    cache: Dict[Tuple, Tuple[List[float], List[Tuple[float, float]]]] = {}
    curves: List[List[float]] = []
    share_tables: List[List[Tuple[float, float]]] = []
    server_ids: List[int] = []
    for sid in eligible:
        server = state.system.server(sid)
        key = (
            server.server_class.index,
            state.free_processing(sid),
            state.free_bandwidth(sid),
            state.free_storage(sid) >= client.storage_req,
            state.server_is_active(sid),
        )
        if key not in cache:
            cache[key] = _server_curves(state, client, sid, config)
        values, shares = cache[key]
        curves.append(values)
        share_tables.append(shares)
        server_ids.append(sid)

    total, units = combine_server_curves_scalar(curves, config.alpha_granularity)
    if total == NEG_INF:
        return None

    entries: Dict[int, EntryTriple] = {}
    for idx, g in enumerate(units):
        if g == 0:
            continue
        alpha = g / config.alpha_granularity
        phi_p, phi_b = share_tables[idx][g]
        entries[server_ids[idx]] = (alpha, phi_p, phi_b)
    return _finish_placement(client, cluster_id, total, entries)


def _assign_distribute_vectorized(
    state: WorkingState,
    client: Client,
    cluster_id: int,
    eligible: Sequence[int],
    config: SolverConfig,
) -> Optional[CandidatePlacement]:
    """Production path: batched NumPy curves + array DP.

    Servers whose whole positive-traffic curve is infeasible are pruned
    before the DP — they could only ever take 0 grid units, so dropping
    them is exact and shrinks the DP when a cluster is mostly full.
    """
    idx = state.server_indices(eligible)
    values, phi_p, phi_b = _curves_at_indices(state, client, idx, config)
    rows = np.nonzero(values[:, 1:].max(axis=1) > NEG_INF)[0]

    granularity = config.alpha_granularity
    total, units = combine_server_curves([values[r] for r in rows], granularity)
    if total == NEG_INF:
        return None

    entries: Dict[int, EntryTriple] = {}
    for row, g in zip(rows, units):
        if g == 0:
            continue
        entries[eligible[row]] = (
            g / granularity,
            float(phi_p[row, g]),
            float(phi_b[row, g]),
        )
    return _finish_placement(client, cluster_id, total, entries)


def _client_curve_block(
    state: WorkingState,
    client: Client,
    config: SolverConfig,
    cache: MemoCache,
) -> CurveBlock:
    """The client's memoized curve matrix over the whole server universe.

    Validation is two-tier.  A vectorized compare of the block's stored
    epoch snapshot against the state's live epoch array narrows to the
    rows a mutation may have touched; those rows' stored capacity inputs
    are then compared *by value*, and only rows whose inputs actually
    changed are recomputed through :func:`_curves_at_indices` and patched
    in place (bumping their content version for the DP memo).  The curve
    kernel is a pure element-wise function of the compared inputs, so
    every row served from the block — including rows whose epoch moved
    but whose inputs came back, e.g. after a rejected move's rollback or
    a snapshot restore — is bitwise the row a fresh full evaluation would
    produce.
    """
    token = cache.client_token(client)
    blocks = cache._blocks
    epochs = state._epoch_arr
    stats = cache.stats
    block = blocks.get(token[0])
    if block is not None and block.token == token:
        moved = np.nonzero(block.epochs != epochs)[0]
        if moved.size == 0:
            stats["curve_hits"] += 1
            return block
        cur_p = state._used_p_arr[moved]
        cur_b = state._used_b_arr[moved]
        cur_s = state._used_s_arr[moved]
        cur_act = state._hasbg_arr[moved] | (state._active_arr[moved] > 0)
        differs = (
            (block.in_p[moved] != cur_p)
            | (block.in_b[moved] != cur_b)
            | (block.in_s[moved] != cur_s)
            | (block.in_act[moved] != cur_act)
        )
        block.epochs[moved] = epochs[moved]
        if not differs.any():
            stats["curve_hits"] += 1
            return block
        changed = moved[differs]
        stats["curve_patches"] += 1
        values, phi_p, phi_b = _curves_at_indices(state, client, changed, config)
        block.values[changed] = values
        block.phi_p[changed] = phi_p
        block.phi_b[changed] = phi_b
        block.row_ok[changed] = values[:, 1:].max(axis=1) > NEG_INF
        block.in_p[changed] = cur_p[differs]
        block.in_b[changed] = cur_b[differs]
        block.in_s[changed] = cur_s[differs]
        block.in_act[changed] = cur_act[differs]
        block.row_version[changed] += 1
        return block
    stats["curve_misses"] += 1
    idx = np.arange(len(epochs), dtype=np.intp)
    values, phi_p, phi_b = _curves_at_indices(state, client, idx, config)
    block = CurveBlock(
        token,
        epochs.copy(),
        state._used_p_arr.copy(),
        state._used_b_arr.copy(),
        state._used_s_arr.copy(),
        state._hasbg_arr | (state._active_arr > 0),
        values,
        phi_p,
        phi_b,
        values[:, 1:].max(axis=1) > NEG_INF,
    )
    if len(blocks) >= cache.max_curve_entries:
        # The DP memo goes with the blocks: a rebuilt block restarts its
        # row versions at zero, which must not alias tables computed
        # against the evicted block's content.
        blocks.clear()
        cache._dp.clear()
        stats["evictions"] += 1
    blocks[token[0]] = block
    return block


def _block_cluster_solve(
    state: WorkingState,
    client: Client,
    cluster_id: int,
    block: CurveBlock,
    idx: np.ndarray,
    granularity: int,
) -> Optional[CandidatePlacement]:
    """DP over a block's rows at ``idx`` (unmemoized; exclusion path)."""
    sel = idx[block.row_ok[idx]]
    values = block.values
    total, units = combine_server_curves([values[i] for i in sel], granularity)
    if total == NEG_INF:
        return None
    return _finish_placement(
        client, cluster_id, total, _block_entries(state, block, sel, units, granularity)
    )


def _block_entries(
    state: WorkingState,
    block: CurveBlock,
    sel: np.ndarray,
    units: Sequence[int],
    granularity: int,
) -> Dict[int, EntryTriple]:
    sid_order = state._sid_order
    entries: Dict[int, EntryTriple] = {}
    for i, g in zip(sel, units):
        if g == 0:
            continue
        entries[sid_order[i]] = (
            g / granularity,
            float(block.phi_p[i, g]),
            float(block.phi_b[i, g]),
        )
    return entries


def _cached_cluster_solve(
    state: WorkingState,
    client: Client,
    cluster_id: int,
    block: CurveBlock,
    granularity: int,
    cache: MemoCache,
) -> Optional[CandidatePlacement]:
    """Whole-cluster DP memoized per (client, cluster).

    The memo holds the *finished* :class:`CandidatePlacement` (or
    ``None`` for an infeasible cluster) and is validated against the
    block's content-version counters sliced at the cluster's rows: the
    selection, every curve fed to the DP, and the resulting entries are
    functions of those rows' content alone, and the versions move
    exactly when a row's content is recomputed, so version-slice
    equality replays the exact uncached result without rebuilding it.
    """
    arr = state.cluster_index_arrays[cluster_id]
    token = block.token
    cluster_versions = block.row_version[arr]
    memo = cache._dp
    key = (token[0], cluster_id)
    hit = memo.get(key)
    if (
        hit is not None
        and hit[0] == token
        and np.array_equal(hit[1], cluster_versions)
    ):
        cache.stats["dp_hits"] += 1
        return hit[2]
    cache.stats["dp_misses"] += 1
    sel = arr[block.row_ok[arr]]
    if sel.size == 0:
        placement = None
    else:
        values = block.values
        total, units = combine_server_curves(
            [values[i] for i in sel], granularity
        )
        if total == NEG_INF:
            placement = None
        else:
            placement = _finish_placement(
                client,
                cluster_id,
                total,
                _block_entries(state, block, sel, units, granularity),
            )
    if hit is None and len(memo) >= cache.max_aux_entries:
        memo.clear()
        cache.stats["evictions"] += 1
    memo[key] = (token, cluster_versions, placement)
    return placement


def _assign_distribute_cached(
    state: WorkingState,
    client: Client,
    cluster_id: int,
    eligible: Sequence[int],
    config: SolverConfig,
    cache: MemoCache,
) -> Optional[CandidatePlacement]:
    """Memoized production path: block curve rows + per-cluster DP memo."""
    block = _client_curve_block(state, client, config, cache)
    granularity = config.alpha_granularity
    if len(eligible) == len(state.cluster_server_ids[cluster_id]):
        return _cached_cluster_solve(
            state, client, cluster_id, block, granularity, cache
        )
    # Exclusions change the DP's input set, so bypass the whole-cluster
    # memo rather than key on arbitrary subsets.
    return _block_cluster_solve(
        state, client, cluster_id, block, state.server_indices(eligible), granularity
    )


def _finish_placement(
    client: Client,
    cluster_id: int,
    total: float,
    entries: Dict[int, EntryTriple],
) -> Optional[CandidatePlacement]:
    if not entries:
        return None
    linear = client.utility_class.linear_approximation()
    estimated = client.rate_agreed * linear.base_value + total
    return CandidatePlacement(
        client_id=client.client_id,
        cluster_id=cluster_id,
        estimated_profit=estimated,
        entries=entries,
    )


def apply_placement(state: WorkingState, placement: CandidatePlacement) -> None:
    """Write a placement into the working state (clearing prior entries)."""
    state.assign_client(placement.client_id, placement.cluster_id)
    state.clear_client(placement.client_id)
    for server_id, (alpha, phi_p, phi_b) in placement.entries.items():
        state.set_entry(placement.client_id, server_id, alpha, phi_p, phi_b)


def best_placement(
    state: WorkingState,
    client: Client,
    config: SolverConfig,
    cluster_ids: Optional[List[int]] = None,
    excluded_server_ids: Optional[AbstractSet[int]] = None,
) -> Optional[CandidatePlacement]:
    """``Assign_Distribute`` across clusters: pick the most profitable one.

    ``excluded_server_ids`` removes servers from every candidate cluster
    (the online service uses it to place around failed servers).
    """
    kids = list(cluster_ids or state.system.cluster_ids())
    excluded = excluded_server_ids or frozenset()
    if config.use_vectorized_kernels:
        cache = state.cache
        if cache is not None:
            return _best_placement_cached(state, client, kids, config, excluded, cache)
        return _best_placement_vectorized(state, client, kids, config, excluded)
    candidates: List[CandidatePlacement] = []
    for cluster_id in kids:
        placement = assign_distribute(
            state, client, cluster_id, config, excluded_server_ids=excluded
        )
        if placement is not None:
            candidates.append(placement)
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.estimated_profit)


def estimate_marginal_profit(
    state: WorkingState,
    client: Client,
    config: SolverConfig,
    excluded_server_ids: Optional[AbstractSet[int]] = None,
) -> float:
    """Eq.-(16) estimate of the profit admitting ``client`` would add.

    A read-only probe: the value is the ``estimated_profit`` of the
    :func:`best_placement` the engine would commit for the client right
    now — revenue term plus the summed per-server curve contributions,
    activation power included — without touching the working state.
    When a :class:`~repro.core.cache.MemoCache` is attached the probe
    reads (and warms) the same curve blocks the subsequent placement
    will use, so estimating then admitting costs one evaluation, not
    two.  Returns ``-inf`` when no feasible placement exists, so callers
    can distinguish "unprofitable" from "does not fit".
    """
    placement = best_placement(
        state, client, config, excluded_server_ids=excluded_server_ids
    )
    if placement is None:
        return NEG_INF
    return placement.estimated_profit


def _best_placement_cached(
    state: WorkingState,
    client: Client,
    kids: List[int],
    config: SolverConfig,
    excluded: AbstractSet[int],
    cache: MemoCache,
) -> Optional[CandidatePlacement]:
    """Memoized cross-cluster placement.

    Mirrors :func:`_best_placement_vectorized` — one curve fetch across
    all candidate clusters (cluster membership comes from the state's
    precomputed lists), then one memoized per-cluster DP with the same
    first-maximum tie-breaks — so it returns exactly what the uncached
    path would, while repeat evaluations cost dictionary lookups.
    """
    block = _client_curve_block(state, client, config, cache)
    granularity = config.alpha_granularity
    cluster_lists = state.cluster_server_ids

    if excluded:
        best = None
        for kid in kids:
            ids = [sid for sid in cluster_lists[kid] if sid not in excluded]
            if not ids:
                continue
            placement = _block_cluster_solve(
                state, client, kid, block, state.server_indices(ids), granularity
            )
            if placement is not None and (
                best is None or placement.estimated_profit > best.estimated_profit
            ):
                best = placement
        return best

    # Memo pass: resolve every cluster against the (client, cluster)
    # placement memo first, then solve all misses in one lockstep batch.
    token = block.token
    memo = cache._dp
    cluster_arrays = state.cluster_index_arrays
    placements: List[Optional[CandidatePlacement]] = []
    miss_positions: List[int] = []
    miss_keys: List[Tuple[int, np.ndarray, np.ndarray]] = []
    groups: List[np.ndarray] = []
    for kid in kids:
        arr = cluster_arrays[kid]
        cluster_versions = block.row_version[arr]
        hit = memo.get((token[0], kid))
        if (
            hit is not None
            and hit[0] == token
            and np.array_equal(hit[1], cluster_versions)
        ):
            cache.stats["dp_hits"] += 1
            placements.append(hit[2])
            continue
        cache.stats["dp_misses"] += 1
        sel = arr[block.row_ok[arr]]
        if sel.size == 0:
            placements.append(None)
            if hit is None and len(memo) >= cache.max_aux_entries:
                memo.clear()
                cache.stats["evictions"] += 1
            memo[(token[0], kid)] = (token, cluster_versions, None)
            continue
        miss_positions.append(len(placements))
        miss_keys.append((kid, cluster_versions, sel))
        groups.append(block.values[sel])
        placements.append(None)
    if groups:
        for position, (kid, versions, sel), (total, units) in zip(
            miss_positions, miss_keys, combine_curve_batches(groups, granularity)
        ):
            if total == NEG_INF:
                placement = None
            else:
                placement = _finish_placement(
                    client,
                    kid,
                    total,
                    _block_entries(state, block, sel, units, granularity),
                )
            placements[position] = placement
            if (
                (token[0], kid) not in memo
                and len(memo) >= cache.max_aux_entries
            ):
                memo.clear()
                cache.stats["evictions"] += 1
            memo[(token[0], kid)] = (token, versions, placement)

    best = None
    for placement in placements:
        if placement is not None and (
            best is None or placement.estimated_profit > best.estimated_profit
        ):
            best = placement
    return best


def _best_placement_vectorized(
    state: WorkingState,
    client: Client,
    kids: List[int],
    config: SolverConfig,
    excluded: AbstractSet[int] = frozenset(),
) -> Optional[CandidatePlacement]:
    """One batched curve evaluation across *all* candidate clusters.

    Curves depend only on the (client, server signature) pair, never on
    cluster identity, so the memo dedup is valid across clusters and one
    NumPy evaluation amortizes the kernel-launch overhead that dominates
    per-cluster calls on small arrays.  The per-cluster DP and the
    first-maximum tie-break are unchanged, so this returns exactly what
    the per-cluster loop would.
    """
    cluster_lists = state.cluster_server_ids
    cluster_arrays = state.cluster_index_arrays
    parts: List[np.ndarray] = []
    spans: List[Tuple[int, int, int]] = []
    offset = 0
    for kid in kids:
        if excluded:
            ids = [sid for sid in cluster_lists[kid] if sid not in excluded]
            if not ids:
                continue
            arr = state.server_indices(ids)
        else:
            arr = cluster_arrays[kid]
            if arr.size == 0:
                continue
        parts.append(arr)
        spans.append((kid, offset, offset + arr.size))
        offset += arr.size
    if not parts:
        return None

    idx = parts[0] if len(parts) == 1 else np.concatenate(parts)
    values, phi_p, phi_b = _curves_at_indices(state, client, idx, config)
    takes_traffic = values[:, 1:].max(axis=1) > NEG_INF
    granularity = config.alpha_granularity
    sid_order = state._sid_order

    groups: List[np.ndarray] = []
    group_rows: List[Tuple[int, np.ndarray]] = []
    for kid, start, end in spans:
        rows = start + np.nonzero(takes_traffic[start:end])[0]
        if rows.size == 0:
            continue
        groups.append(values[rows])
        group_rows.append((kid, rows))

    best: Optional[CandidatePlacement] = None
    for (kid, rows), (total, units) in zip(
        group_rows, combine_curve_batches(groups, granularity)
    ):
        if total == NEG_INF:
            continue
        entries: Dict[int, EntryTriple] = {}
        for row, g in zip(rows, units):
            if g == 0:
                continue
            entries[sid_order[idx[row]]] = (
                g / granularity,
                float(phi_p[row, g]),
                float(phi_b[row, g]),
            )
        placement = _finish_placement(client, kid, total, entries)
        if placement is not None and (
            best is None or placement.estimated_profit > best.estimated_profit
        ):
            best = placement
    return best
