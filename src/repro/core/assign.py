"""``Assign_Distribute`` — place one client inside one cluster (section V.A).

For a candidate cluster the constructor answers: *if this client joined
this cluster right now, how would its traffic best split across servers,
what shares would it get, and what profit would that earn?*

Following the paper:

* the utility is replaced by its linear surrogate ``v - beta * R``;
* ``alpha`` is discretized on a grid of ``G = config.alpha_granularity``
  steps; for each server and each grid point the optimal shares come from
  the closed form of eq. (16) (processing priced at the server's real
  ``P1``, bandwidth at the configured shadow price);
* servers without enough free disk for the client are excluded up front
  (constraint (8));
* a dynamic program combines the per-server curves into traffic portions
  summing to exactly one;
* inactive servers carry their activation cost ``P0`` on any positive
  traffic, so the constructor weighs consolidation against queueing delay;
* per-server-class memoization: servers of the same class with identical
  free capacity and activity (e.g. all still-empty servers of one SKU)
  share one curve evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Optional, Tuple

from repro.config import SolverConfig
from repro.core.state import WorkingState
from repro.model.client import Client
from repro.optim.dp import NEG_INF, combine_server_curves

#: (alpha, phi_p, phi_b) chosen for one server.
EntryTriple = Tuple[float, float, float]


@dataclass(frozen=True)
class CandidatePlacement:
    """Outcome of ``Assign_Distribute`` for one (client, cluster) pair."""

    client_id: int
    cluster_id: int
    estimated_profit: float
    entries: Dict[int, EntryTriple]


def _closed_form_share(
    service_per_share: float,
    arrival: float,
    weight: float,
    price: float,
    lower: float,
    upper: float,
) -> float:
    """Eq. (16): the bounded optimal share for one queue."""
    if weight <= 0.0:
        return lower
    if price <= 0.0:
        return upper
    unclipped = (
        arrival + math.sqrt(weight * service_per_share / price)
    ) / service_per_share
    return min(max(unclipped, lower), upper)


def _server_curves(
    state: WorkingState,
    client: Client,
    server_id: int,
    config: SolverConfig,
) -> Tuple[List[float], List[Tuple[float, float]]]:
    """Profit curve and matching share choices for one server.

    Returns ``(values, shares)`` where ``values[g]`` is the estimated
    profit contribution of sending ``g / G`` of the client's traffic here
    and ``shares[g]`` the (phi_p, phi_b) that achieves it.  Infeasible
    grid points are ``-inf``.
    """
    granularity = config.alpha_granularity
    values = [NEG_INF] * (granularity + 1)
    shares: List[Tuple[float, float]] = [(0.0, 0.0)] * (granularity + 1)
    values[0] = 0.0

    server = state.system.server(server_id)
    if state.free_storage(server_id) < client.storage_req:
        return values, shares

    free_p = state.free_processing(server_id)
    free_b = state.free_bandwidth(server_id)
    was_active = state.server_is_active(server_id)
    linear = client.utility_class.linear_approximation()
    weight_base = client.rate_agreed * linear.slope
    s_p = server.cap_processing / client.t_proc
    s_b = server.cap_bandwidth / client.t_comm
    # Capacity is priced at its opportunity cost, not just the marginal
    # energy cost: a hogged share forces the next client onto a fresh
    # server at P0 (see SolverConfig.capacity_price_factor).
    amortized = config.capacity_price_factor * server.server_class.power_fixed
    price_p = server.server_class.power_per_util + amortized
    price_b = config.bandwidth_shadow_price + amortized

    for g in range(1, granularity + 1):
        alpha = g / granularity
        arrival = alpha * client.rate_predicted
        weight = weight_base * alpha
        lower_p = arrival / s_p * config.stability_margin + config.min_share
        lower_b = arrival / s_b * config.stability_margin + config.min_share
        if lower_p > free_p or lower_b > free_b:
            continue
        phi_p = _closed_form_share(s_p, arrival, weight, price_p, lower_p, free_p)
        phi_b = _closed_form_share(s_b, arrival, weight, price_b, lower_b, free_b)
        head_p = s_p * phi_p - arrival
        head_b = s_b * phi_b - arrival
        if head_p <= 0.0 or head_b <= 0.0:
            continue
        response_cost = alpha * (1.0 / head_p + 1.0 / head_b)
        # The shadow prices above only size the shares; the DP ranks grid
        # points by the *real* incremental cost (energy + activation).
        value = (
            -weight_base * response_cost
            - server.server_class.power_per_util * phi_p
        )
        if not was_active:
            value -= server.server_class.power_fixed
        values[g] = value
        shares[g] = (phi_p, phi_b)
    return values, shares


def assign_distribute(
    state: WorkingState,
    client: Client,
    cluster_id: int,
    config: SolverConfig,
    excluded_server_ids: Optional[AbstractSet[int]] = None,
) -> Optional[CandidatePlacement]:
    """Best placement of ``client`` inside ``cluster_id`` given free capacity.

    Returns ``None`` when the cluster cannot stably host the client's full
    traffic under current free capacities.  The placement is *not* applied;
    use :func:`apply_placement`.  ``excluded_server_ids`` removes servers
    from consideration (used when evacuating a server to turn it off).
    """
    cluster = state.system.cluster(cluster_id)
    if not cluster.servers:
        return None
    excluded = excluded_server_ids or frozenset()

    # Memoize curves per (class, capacity signature): interchangeable
    # servers — typically the still-empty ones of a SKU — share one solve.
    cache: Dict[Tuple, Tuple[List[float], List[Tuple[float, float]]]] = {}
    curves: List[List[float]] = []
    share_tables: List[List[Tuple[float, float]]] = []
    server_ids: List[int] = []
    for server in cluster:
        sid = server.server_id
        if sid in excluded:
            continue
        key = (
            server.server_class.index,
            state.free_processing(sid),
            state.free_bandwidth(sid),
            state.free_storage(sid) >= client.storage_req,
            state.server_is_active(sid),
        )
        if key not in cache:
            cache[key] = _server_curves(state, client, sid, config)
        values, shares = cache[key]
        curves.append(values)
        share_tables.append(shares)
        server_ids.append(sid)

    total, units = combine_server_curves(curves, config.alpha_granularity)
    if total == NEG_INF:
        return None

    linear = client.utility_class.linear_approximation()
    estimated = client.rate_agreed * linear.base_value + total

    entries: Dict[int, EntryTriple] = {}
    for idx, g in enumerate(units):
        if g == 0:
            continue
        alpha = g / config.alpha_granularity
        phi_p, phi_b = share_tables[idx][g]
        entries[server_ids[idx]] = (alpha, phi_p, phi_b)
    if not entries:
        return None
    return CandidatePlacement(
        client_id=client.client_id,
        cluster_id=cluster_id,
        estimated_profit=estimated,
        entries=entries,
    )


def apply_placement(state: WorkingState, placement: CandidatePlacement) -> None:
    """Write a placement into the working state (clearing prior entries)."""
    state.assign_client(placement.client_id, placement.cluster_id)
    state.clear_client(placement.client_id)
    for server_id, (alpha, phi_p, phi_b) in placement.entries.items():
        state.set_entry(placement.client_id, server_id, alpha, phi_p, phi_b)


def best_placement(
    state: WorkingState,
    client: Client,
    config: SolverConfig,
    cluster_ids: Optional[List[int]] = None,
) -> Optional[CandidatePlacement]:
    """``Assign_Distribute`` across clusters: pick the most profitable one."""
    candidates: List[CandidatePlacement] = []
    for cluster_id in cluster_ids or state.system.cluster_ids():
        placement = assign_distribute(state, client, cluster_id, config)
        if placement is not None:
            candidates.append(placement)
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.estimated_profit)
