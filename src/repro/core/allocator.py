"""Top-level driver: the paper's ``Resource_Alloc`` heuristic (Figure 3).

Structure mirrors the pseudo code:

1. generate ``num_initial_solutions`` randomized greedy solutions and keep
   the best (:mod:`repro.core.initial`);
2. ``while (Steady)``: one round applies, in order,

   * ``Adjust_ResourceShares`` on every used server,
   * ``Adjust_DispersionRates`` on every client,
   * ``TurnON_servers`` / ``TurnOFF_servers`` per cluster,
   * (optionally) the cluster-level client-reassignment local search,
   * a retry pass that places clients the greedy constructor had to skip,

   and the loop exits once a full round improves profit by less than the
   configured tolerance (or after ``max_improvement_rounds``).

Every move inside the round is accept-if-better against the *exact*
evaluator, so the heuristic's reported profit is always achieved by the
returned allocation (property-tested invariant).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.config import SolverConfig
from repro.core.assign import apply_placement, best_placement
from repro.core.cache import maybe_attach_cache
from repro.core.delta import DeltaScorer
from repro.core.dispersion import adjust_dispersion_rates
from repro.core.initial import build_initial_solution
from repro.core.local_search import reassignment_pass
from repro.core.power import (
    force_client_into_cluster,
    turn_off_servers,
    turn_on_servers,
)
from repro.core.shares import adjust_resource_shares
from repro.core.state import WorkingState
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem
from repro.model.profit import ProfitBreakdown, evaluate_profit


@dataclass
class AllocationResult:
    """What :meth:`ResourceAllocator.solve` returns.

    ``profit_history`` holds the evaluated profit after the initial
    solution and after each improvement round, so experiments can plot
    convergence.  ``breakdown`` is the final, independently evaluated
    scoring of ``allocation``.
    """

    allocation: Allocation
    breakdown: ProfitBreakdown
    initial_profit: float
    profit_history: List[float] = field(default_factory=list)
    rounds: int = 0
    runtime_seconds: float = 0.0

    @property
    def profit(self) -> float:
        return self.breakdown.total_profit


class ResourceAllocator:
    """The paper's distributed profit-maximizing resource allocator."""

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        self.config = config or SolverConfig()

    def solve(self, system: CloudSystem) -> AllocationResult:
        """Run the full heuristic (initial solutions + improvement loop)."""
        started = time.perf_counter()
        rng = np.random.default_rng(self.config.seed)
        report = build_initial_solution(system, self.config, rng)
        result = self._improve(
            system, report.best_allocation, rng, initial_profit=report.best_profit
        )
        result.runtime_seconds = time.perf_counter() - started
        return result

    def improve(
        self, system: CloudSystem, allocation: Allocation
    ) -> AllocationResult:
        """Run only the improvement loop on an externally built allocation.

        This is what Figure 5 needs: random (bad) initial solutions pushed
        through the paper's local search.
        """
        started = time.perf_counter()
        rng = np.random.default_rng(self.config.seed)
        initial = evaluate_profit(
            system, allocation, require_all_served=False
        ).total_profit
        result = self._improve(system, allocation.copy(), rng, initial_profit=initial)
        result.runtime_seconds = time.perf_counter() - started
        return result

    def improvement_round(
        self,
        state: WorkingState,
        rng: np.random.Generator,
        blocked_for_shutdown: Optional[Set[int]] = None,
    ) -> None:
        """One improvement round on an externally managed working state.

        The sharded hierarchical solver drives its worker-resident shard
        states through this: the same move sequence as one iteration of
        :meth:`solve`'s while-not-steady loop, including the straggler
        retry pass.
        """
        self._improvement_round(
            state,
            rng,
            blocked_for_shutdown if blocked_for_shutdown is not None else set(),
        )

    # -- internals ----------------------------------------------------------

    def _improvement_round(
        self,
        state: WorkingState,
        rng: np.random.Generator,
        blocked_for_shutdown: Set[int],
    ) -> None:
        config = self.config
        system = state.system
        for server in system.servers():
            if state.allocation.clients_on_server(server.server_id):
                adjust_resource_shares(state, server.server_id, config)
        for client_id in system.client_ids():
            adjust_dispersion_rates(state, client_id, config)
        for cluster_id in system.cluster_ids():
            turn_on_servers(state, cluster_id, config)
            turn_off_servers(state, cluster_id, config, blocked_for_shutdown)
        if config.include_cluster_reassignment:
            reassignment_pass(state, config, rng)
        self._place_stragglers(state)

    def _place_stragglers(self, state: WorkingState) -> None:
        """Retry clients the greedy constructor could not place.

        ``Assign_Distribute`` only sees *free* capacity, so a straggler can
        be unplaceable even though re-splitting some server's shares would
        fit it.  The fallback forces the client onto a host via the same
        merge move ``TurnOFF_servers`` uses (foothold + exact convex
        re-split), accepting any placement that keeps the state feasible —
        serving every client is a hard constraint (6), not a preference.
        """
        for client_id in state.system.client_ids():
            if state.allocation.entries_of_client(client_id):
                continue
            client = state.system.client(client_id)
            placement = best_placement(state, client, self.config)
            if placement is not None:
                apply_placement(state, placement)
                continue
            self._force_place(state, client_id)

    def _force_place(self, state: WorkingState, client_id: int) -> bool:
        clusters = sorted(
            state.system.cluster_ids(),
            key=lambda kid: sum(
                state.free_processing(sid) + state.free_bandwidth(sid)
                for sid in state.system.cluster(kid).server_ids()
            ),
            reverse=True,
        )
        for cluster_id in clusters:
            snapshot = state.snapshot()
            if force_client_into_cluster(state, client_id, cluster_id, self.config):
                return True
            state.restore(snapshot)
        return False

    def _improve(
        self,
        system: CloudSystem,
        allocation: Allocation,
        rng: np.random.Generator,
        initial_profit: float,
    ) -> AllocationResult:
        state = WorkingState(system, allocation)
        if self.config.use_delta_scoring:
            # Accept-if-better gates across every move module then cost
            # O(touched) instead of a full re-evaluation (see core.delta).
            DeltaScorer(state, validate=self.config.validate_delta_scoring)
        # Memoize curve/DP/activation kernels across candidate moves (see
        # core.cache); bit-transparent, so the accept gates are unchanged.
        maybe_attach_cache(state, self.config)
        self._place_stragglers(state)
        blocked_for_shutdown: Set[int] = set()
        history: List[float] = []
        profit = evaluate_profit(
            system, state.allocation, require_all_served=False
        ).total_profit
        history.append(profit)
        rounds = 0
        for _ in range(self.config.max_improvement_rounds):
            self._improvement_round(state, rng, blocked_for_shutdown)
            rounds += 1
            new_profit = evaluate_profit(
                system, state.allocation, require_all_served=False
            ).total_profit
            history.append(new_profit)
            if new_profit <= profit + self.config.improvement_tolerance:
                profit = max(profit, new_profit)
                break
            profit = new_profit
        breakdown = evaluate_profit(system, state.allocation)
        return AllocationResult(
            allocation=state.allocation,
            breakdown=breakdown,
            initial_profit=initial_profit,
            profit_history=history,
            rounds=rounds,
        )
