"""Admission control: when the provider may decline clients.

The paper's formulation makes serving every client a hard constraint
(constraint (6)) — appropriate when contracts are already signed.  At
contract-negotiation time the dual question matters: *which* client set
maximizes profit?  This extension relaxes constraint (6) and lets the
provider reject clients whose marginal profit is negative (their SLA
price cannot cover the capacity and energy they consume).

Method: solve the constrained problem first (so the result is always at
least as good as the paper's solution), then alternate accept-if-better
*drop* passes with reassignment passes until stable.  A dropped client
can win its way back in a later pass if capacity freed elsewhere makes
it profitable again — both directions are gated by the exact evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.audit.invariants import ACCEPT_TOLERANCE
from repro.config import SolverConfig
from repro.core.allocator import ResourceAllocator
from repro.core.local_search import reassignment_pass
from repro.core.scoring import score
from repro.core.state import WorkingState
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem
from repro.model.profit import ProfitBreakdown, evaluate_profit


@dataclass
class AdmissionResult:
    """Outcome of an admission-controlled solve."""

    allocation: Allocation
    breakdown: ProfitBreakdown
    accepted: List[int] = field(default_factory=list)
    rejected: List[int] = field(default_factory=list)
    baseline_profit: float = 0.0  # best profit while serving everyone

    @property
    def profit(self) -> float:
        return self.breakdown.total_profit

    @property
    def admission_gain(self) -> float:
        """Profit unlocked by the right to say no."""
        return self.profit - self.baseline_profit


def _drop_pass(state: WorkingState, config: SolverConfig) -> float:
    """Try dropping each served client; keep drops that raise profit."""
    total_delta = 0.0
    for client_id in sorted(state.system.client_ids()):
        if not state.allocation.entries_of_client(client_id):
            continue
        before = score(state.system, state.allocation)
        snapshot = state.snapshot()
        state.unassign_client(client_id)
        after = score(state.system, state.allocation)
        if after > before + ACCEPT_TOLERANCE:
            total_delta += after - before
        else:
            state.restore(snapshot)
    return total_delta


def admission_controlled_solve(
    system: CloudSystem,
    config: Optional[SolverConfig] = None,
    max_rounds: int = 5,
) -> AdmissionResult:
    """Solve with the right to reject unprofitable clients.

    The returned profit is >= the constrained (everyone-served) profit:
    round 0 *is* the constrained solution, and every later change is
    accept-if-better.
    """
    config = config or SolverConfig()
    baseline = ResourceAllocator(config).solve(system)
    state = WorkingState(system, baseline.allocation.copy())
    rng = np.random.default_rng(config.seed)
    for _ in range(max_rounds):
        delta = _drop_pass(state, config)
        delta += reassignment_pass(state, config, rng)
        if delta <= config.improvement_tolerance:
            break
    breakdown = evaluate_profit(
        system, state.allocation, require_all_served=False
    )
    accepted = sorted(
        cid
        for cid in system.client_ids()
        if state.allocation.entries_of_client(cid)
    )
    rejected = sorted(set(system.client_ids()) - set(accepted))
    return AdmissionResult(
        allocation=state.allocation,
        breakdown=breakdown,
        accepted=accepted,
        rejected=rejected,
        baseline_profit=baseline.profit,
    )
