"""Numerical substrate for the resource-allocation heuristic.

Everything in here is problem-specific but solver-agnostic mathematics:

* :mod:`repro.optim.bisection` — robust monotone root finding;
* :mod:`repro.optim.kkt` — closed-form KKT solutions for the share and
  dispersion subproblems (paper eq. (16) and (18));
* :mod:`repro.optim.dp` — the grid dynamic program that combines
  per-server curves into a traffic split summing to one;
* :mod:`repro.optim.reference` — slow scipy-based reference solvers used
  by the test suite to certify the closed forms.
"""

from repro.optim.bisection import bisect_root, solve_monotone, expand_bracket
from repro.optim.kkt import (
    ShareProblemItem,
    optimal_share_for_price,
    waterfill_shares,
    DispersionBranch,
    optimal_dispersion,
)
from repro.optim.dp import combine_server_curves, brute_force_combination

__all__ = [
    "bisect_root",
    "solve_monotone",
    "expand_bracket",
    "ShareProblemItem",
    "optimal_share_for_price",
    "waterfill_shares",
    "DispersionBranch",
    "optimal_dispersion",
    "combine_server_curves",
    "brute_force_combination",
]
