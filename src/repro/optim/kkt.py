"""Closed-form KKT solutions for the two convex subproblems of the paper.

Subproblem 1 — *share allocation* (paper eq. (16) inside the greedy
constructor and eq. (18) inside ``Adjust_ResourceShares``): given clients
with fixed traffic, split one server's GPS capacity among them.

With service rate ``s * phi`` (``s = C / t``), branch arrivals ``a`` and
SLA weight ``w`` (= agreed rate x utility slope x traffic portion), the
per-client objective is::

    minimize   w / (s * phi - a)  +  price * phi
    subject to phi in [lower, upper],  s * phi > a

Setting the derivative to zero gives the closed form the paper prints as a
bounded expression::

    phi*(price) = ( a + sqrt(w * s / price) ) / s      (clipped to bounds)

which is decreasing in ``price``.  A shared capacity budget turns ``price``
into ``price_floor + eta`` with the multiplier ``eta >= 0`` found by
bisection on the monotone total-usage curve (:func:`waterfill_shares`).

Subproblem 2 — *dispersion rates* (``Adjust_DispersionRates``): given fixed
shares (hence fixed per-branch service rates ``r^p, r^b``), split a
client's unit of traffic across servers::

    minimize   sum_j  alpha_j * ( 1/(r^p_j - alpha_j L) + 1/(r^b_j - alpha_j L) )
    subject to sum_j alpha_j = 1,   0 <= alpha_j,   alpha_j L < min(r^p_j, r^b_j)

Each term is convex increasing in ``alpha_j`` with marginal::

    G_j(alpha) = r^p / (r^p - alpha L)^2  +  r^b / (r^b - alpha L)^2

so optimality equalizes marginals at a multiplier ``nu``; nested bisection
(outer on ``nu``, inner on each ``alpha_j``) solves it to machine accuracy
(:func:`optimal_dispersion`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import SolverError
from repro.optim.bisection import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    solve_monotone,
)

_EPS = 1e-12


@dataclass(frozen=True)
class ShareProblemItem:
    """One client's slice of a server-share problem.

    Attributes:
        service_per_share: ``s = C / t`` — service rate delivered by one
            full unit of the server's capacity share.
        arrival_rate: ``a = alpha * lambda`` — branch arrival rate.
        weight: ``w`` — marginal revenue of response-time reduction
            (agreed rate x utility slope x traffic portion).  ``w = 0``
            clients are pinned at their lower bound.
        lower: smallest admissible share (must already include the
            stability margin: ``lower * s > a``).
        upper: largest admissible share.
    """

    service_per_share: float
    arrival_rate: float
    weight: float
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.service_per_share <= 0:
            raise SolverError(
                f"service_per_share must be > 0, got {self.service_per_share}"
            )
        if self.arrival_rate < 0:
            raise SolverError(f"arrival_rate must be >= 0, got {self.arrival_rate}")
        if self.weight < 0:
            raise SolverError(f"weight must be >= 0, got {self.weight}")
        if not 0 <= self.lower <= self.upper:
            raise SolverError(
                f"bounds must satisfy 0 <= lower <= upper, got "
                f"[{self.lower}, {self.upper}]"
            )

    def is_stable_at(self, phi: float) -> bool:
        return phi * self.service_per_share > self.arrival_rate

    def share_at_price(self, price: float) -> float:
        """The clipped closed-form ``phi*(price)``; decreasing in price."""
        if self.weight <= 0.0:
            return self.lower
        if price <= 0.0:
            return self.upper
        unclipped = (
            self.arrival_rate
            + math.sqrt(self.weight * self.service_per_share / price)
        ) / self.service_per_share
        return min(max(unclipped, self.lower), self.upper)

    def response_cost(self, phi: float) -> float:
        """``w / (s phi - a)``, or ``inf`` when the queue is unstable."""
        headroom = phi * self.service_per_share - self.arrival_rate
        if headroom <= 0:
            return math.inf if self.weight > 0 else 0.0
        return self.weight / headroom


def optimal_share_for_price(
    item: ShareProblemItem, price: float
) -> Optional[float]:
    """Best share for one client when capacity costs ``price`` per unit.

    Returns ``None`` when no admissible share keeps the queue stable (the
    client cannot be served on this server under the given bounds).
    """
    phi = item.share_at_price(price)
    if item.arrival_rate > 0 and not item.is_stable_at(phi):
        return None
    return phi


def waterfill_shares(
    items: Sequence[ShareProblemItem],
    budget: float,
    price_floor: float = 0.0,
) -> Optional[Tuple[List[float], float]]:
    """Split ``budget`` units of a server's capacity among ``items``.

    Implements the bisection-on-the-multiplier solution of eq. (18):
    the effective price of capacity is ``price_floor + eta`` where
    ``price_floor`` is the server's real marginal energy cost (``P1`` for
    processing, typically 0 for bandwidth) and ``eta >= 0`` is the
    capacity multiplier.

    Returns ``(shares, effective_price)`` or ``None`` when even the lower
    bounds do not fit in the budget.
    """
    if budget < 0:
        raise SolverError(f"budget must be >= 0, got {budget}")
    if price_floor < 0:
        raise SolverError(f"price_floor must be >= 0, got {price_floor}")
    if not items:
        return [], price_floor

    total_lower = sum(item.lower for item in items)
    if total_lower > budget + 1e-9:
        return None

    # Flatten the items once so the usage curve evaluated inside the
    # bisection loop touches only local floats — this is the innermost
    # hot path of the whole solver, and attribute/method dispatch per
    # item per bisection step dominates its cost.  The arithmetic is
    # kept operation-for-operation identical to
    # ``ShareProblemItem.share_at_price``.
    flat = [
        (
            item.weight,
            item.service_per_share,
            item.arrival_rate,
            item.lower,
            item.upper,
            item.weight * item.service_per_share,
        )
        for item in items
    ]

    def total_at(price: float) -> float:
        acc = 0.0
        for w, s, a, lower, upper, ws in flat:
            if w <= 0.0:
                acc += lower
            elif price <= 0.0:
                acc += upper
            else:
                phi = (a + math.sqrt(ws / price)) / s
                if phi < lower:
                    phi = lower
                elif phi > upper:
                    phi = upper
                acc += phi
        return acc

    if price_floor > 0.0:
        if total_at(price_floor) <= budget:
            price = price_floor
            return [item.share_at_price(price) for item in items], price
    else:
        # Zero price: everyone would take their upper bound.
        if sum(item.upper for item in items) <= budget:
            return [item.upper for item in items], 0.0

    # Bracket the multiplier: usage is decreasing in price and reaches
    # sum(lower) <= budget as price -> inf.
    price_lo = max(price_floor, _EPS)
    price_hi = max(1.0, 2.0 * price_lo)
    for _ in range(200):
        if total_at(price_hi) <= budget:
            break
        price_hi *= 2.0
    else:
        raise SolverError("could not bracket the capacity multiplier")

    price = solve_monotone(
        total_at, budget, price_lo, price_hi, increasing=False
    )
    shares = [item.share_at_price(price) for item in items]

    # Bisection leaves a sub-tolerance residual; push it into the client
    # with the most headroom so the budget is met exactly from above.
    residual = sum(shares) - budget
    if residual > 0:
        for idx in sorted(
            range(len(shares)),
            key=lambda i: shares[i] - items[i].lower,
            reverse=True,
        ):
            slack = shares[idx] - items[idx].lower
            cut = min(slack, residual)
            shares[idx] -= cut
            residual -= cut
            if residual <= 0:
                break
    for idx, item in enumerate(items):
        if item.arrival_rate > 0 and not item.is_stable_at(shares[idx]):
            return None
    return shares, price


@dataclass(frozen=True)
class DispersionBranch:
    """Fixed service rates of one (client, server) branch.

    ``rate_processing`` / ``rate_bandwidth`` are ``phi * C / t`` with the
    shares held fixed; a zero rate marks the branch unusable.
    """

    rate_processing: float
    rate_bandwidth: float

    def __post_init__(self) -> None:
        if self.rate_processing < 0 or self.rate_bandwidth < 0:
            raise SolverError("service rates must be >= 0")

    @property
    def usable(self) -> bool:
        return self.rate_processing > 0 and self.rate_bandwidth > 0

    def max_alpha(self, arrival_rate: float, margin: float) -> float:
        """Largest traffic portion keeping both queues stable with margin."""
        if not self.usable or arrival_rate <= 0:
            return 0.0 if not self.usable else 1.0
        bottleneck = min(self.rate_processing, self.rate_bandwidth)
        return bottleneck / (arrival_rate * margin)

    def marginal(self, alpha: float, arrival_rate: float) -> float:
        """``G(alpha)`` — marginal response-time cost of more traffic."""
        head_p = self.rate_processing - alpha * arrival_rate
        head_b = self.rate_bandwidth - alpha * arrival_rate
        if head_p <= 0 or head_b <= 0:
            return math.inf
        return (
            self.rate_processing / (head_p * head_p)
            + self.rate_bandwidth / (head_b * head_b)
        )

    def response_cost(self, alpha: float, arrival_rate: float) -> float:
        """``alpha * (W_p + W_b)`` for this branch; ``inf`` when unstable."""
        if alpha <= 0:
            return 0.0
        head_p = self.rate_processing - alpha * arrival_rate
        head_b = self.rate_bandwidth - alpha * arrival_rate
        if head_p <= 0 or head_b <= 0:
            return math.inf
        return alpha * (1.0 / head_p + 1.0 / head_b)


def optimal_dispersion(
    branches: Sequence[DispersionBranch],
    arrival_rate: float,
    total: float = 1.0,
    stability_margin: float = 1.01,
) -> Optional[List[float]]:
    """Optimal traffic split across branches (``Adjust_DispersionRates``).

    Returns the list of ``alpha_j`` summing to ``total`` that minimizes the
    alpha-weighted mean response time, or ``None`` when the branches cannot
    stably absorb ``total`` of the client's traffic.
    """
    if arrival_rate <= 0:
        raise SolverError(f"arrival_rate must be > 0, got {arrival_rate}")
    if total <= 0:
        raise SolverError(f"total must be > 0, got {total}")
    if not branches:
        return None

    caps = [
        min(branch.max_alpha(arrival_rate, stability_margin), total)
        for branch in branches
    ]
    if sum(caps) < total:
        return None

    # The nested bisection below is the solver's hottest loop (tens of
    # marginal evaluations per branch per outer step).  Flatten the
    # branch rates and inline ``DispersionBranch.marginal`` plus the
    # ``bisect_root`` recurrence over local floats; the operation
    # sequence — including the zero/tolerance exit tests and the
    # midpoint returned — is identical to the generic path, so the
    # result is bitwise unchanged.
    rates = [(b.rate_processing, b.rate_bandwidth) for b in branches]
    tol = DEFAULT_TOLERANCE

    def alpha_at(nu: float, idx: int) -> float:
        cap = caps[idx]
        if cap <= 0:
            return 0.0
        rate_p, rate_b = rates[idx]
        # marginal(0) == rate_p/rate_p^2 + rate_b/rate_b^2, written out
        # exactly as DispersionBranch.marginal evaluates it at alpha=0.
        head_p = rate_p - 0.0 * arrival_rate
        head_b = rate_b - 0.0 * arrival_rate
        if rate_p / (head_p * head_p) + rate_b / (head_b * head_b) >= nu:
            return 0.0
        head_p = rate_p - cap * arrival_rate
        head_b = rate_b - cap * arrival_rate
        if head_p <= 0 or head_b <= 0:
            margin_cap = math.inf
        else:
            margin_cap = (
                rate_p / (head_p * head_p) + rate_b / (head_b * head_b)
            )
        if margin_cap <= nu:
            return cap
        # bisect_root(f, 0.0, cap) with f(a) = marginal(a) - nu: the
        # pre-checks above guarantee f(0) < 0 < f(cap), so the bracket
        # holds and neither endpoint is a root.
        lo, hi = 0.0, cap
        for _ in range(DEFAULT_MAX_ITERATIONS):
            mid = 0.5 * (lo + hi)
            head_p = rate_p - mid * arrival_rate
            head_b = rate_b - mid * arrival_rate
            if head_p <= 0 or head_b <= 0:
                f_mid = math.inf
            else:
                f_mid = (
                    rate_p / (head_p * head_p)
                    + rate_b / (head_b * head_b)
                    - nu
                )
            # mid >= 0 on [0, cap], so abs(mid) == mid and the generic
            # tolerance scale max(1.0, abs(mid)) inlines to a compare.
            if f_mid == 0.0 or (hi - lo) <= tol * (mid if mid > 1.0 else 1.0):
                return mid
            if f_mid <= 0:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def total_at(nu: float) -> float:
        acc = 0.0
        for idx in range(len(branches)):
            acc += alpha_at(nu, idx)
        return acc

    usable = [idx for idx in range(len(branches)) if caps[idx] > 0]
    nu_lo = min(branches[idx].marginal(0.0, arrival_rate) for idx in usable)
    nu_hi = max(branches[idx].marginal(caps[idx], arrival_rate) for idx in usable)
    nu_hi = max(nu_hi, nu_lo * 2 + 1.0)

    nu = solve_monotone(total_at, total, nu_lo, nu_hi, increasing=True)
    alphas = [alpha_at(nu, idx) for idx in range(len(branches))]

    # Distribute the bisection residual to branches with headroom so the
    # traffic portions sum to ``total`` exactly.
    residual = total - sum(alphas)
    if residual > 0:
        for idx in sorted(
            range(len(alphas)), key=lambda i: caps[i] - alphas[i], reverse=True
        ):
            room = caps[idx] - alphas[idx]
            add = min(room, residual)
            alphas[idx] += add
            residual -= add
            if residual <= 1e-12:
                break
        if residual > 1e-9:
            return None
    elif residual < 0:
        # Shrink proportionally from branches with positive alpha.
        excess = -residual
        for idx in sorted(
            range(len(alphas)), key=lambda i: alphas[i], reverse=True
        ):
            cut = min(alphas[idx], excess)
            alphas[idx] -= cut
            excess -= cut
            if excess <= 1e-12:
                break
    return alphas
