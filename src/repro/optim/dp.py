"""Grid dynamic program for combining per-server profit curves.

``Assign_Distribute`` (section V.A) evaluates, for each candidate server,
the best achievable profit when the server carries ``g / G`` of a client's
traffic (``g = 0 .. G``).  The per-server curves are then combined by a
dynamic program that picks one grid point per server such that the chosen
traffic portions sum to exactly 1 (``sum_j alpha_ij = 1``) and the total
profit is maximal — a bounded-knapsack-style DP in ``O(J * G^2)``.

Two interchangeable implementations are provided:

* :func:`combine_server_curves` — the production kernel: the inner
  ``O(G^2)`` recurrence is evaluated as a NumPy rolling-maximum (one
  ``(G+1) x (G+1)`` max-plus step per server), with ``argmax`` matching
  the scalar tie-break (smallest unit count wins);
* :func:`combine_server_curves_scalar` — the original pure-Python loop,
  kept as the reference oracle for tests and as the measured baseline in
  ``benchmarks/bench_hotpaths.py``.

Both are exact for the discretized problem; :func:`brute_force_combination`
provides an exponential reference used by the test suite.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import SolverError

NEG_INF = float("-inf")


def _check_inputs(curves: Sequence[Sequence[float]], granularity: int) -> None:
    if granularity < 1:
        raise SolverError(f"granularity must be >= 1, got {granularity}")
    for j, curve in enumerate(curves):
        if len(curve) != granularity + 1:
            raise SolverError(
                f"curve {j} has {len(curve)} points, expected {granularity + 1}"
            )


def _reconstruct(
    choices: Sequence[Sequence[int]], granularity: int
) -> List[int]:
    units = [0] * len(choices)
    remaining = granularity
    for j in range(len(choices) - 1, -1, -1):
        units[j] = int(choices[j][remaining])
        remaining -= units[j]
    if remaining != 0:
        raise SolverError("DP reconstruction failed to consume all grid units")
    return units


def combine_server_curves(
    curves: Sequence[Sequence[float]],
    granularity: int,
) -> Tuple[float, List[int]]:
    """Pick one grid point per curve so the points sum to ``granularity``.

    Args:
        curves: ``curves[j][g]`` is the profit of routing ``g`` grid units
            of traffic to server ``j``; use ``-inf`` for impossible points.
            Index 0 (no traffic) should normally be 0.
        granularity: the grid size ``G``; chosen units must sum to exactly
            ``G``.

    Returns:
        ``(best_total, units)`` where ``units[j]`` is the grid allocation
        of server ``j``.  ``best_total`` is ``-inf`` when no combination is
        feasible.
    """
    _check_inputs(curves, granularity)
    if not curves:
        return NEG_INF, []

    size = granularity + 1
    # prior[u, k] view such that prior[u, k] = best[u - k] for k <= u.
    idx = np.arange(size)
    offsets = idx[:, None] - idx[None, :]
    valid = offsets >= 0
    offsets = np.where(valid, offsets, 0)

    best = np.full(size, NEG_INF)
    best[0] = 0.0
    choices = np.empty((len(curves), size), dtype=np.intp)
    for j, curve in enumerate(curves):
        values = np.asarray(curve, dtype=np.float64)
        # candidate[u, k] = best[u - k] + curve[k]; -inf marks infeasible.
        candidate = np.where(valid, best[offsets], NEG_INF) + values[None, :]
        # argmax returns the first maximal k — same tie-break as the scalar
        # loop's strict-improvement scan, and 0 for all-infeasible rows.
        choices[j] = np.argmax(candidate, axis=1)
        best = np.max(candidate, axis=1)

    total = float(best[granularity])
    if total == NEG_INF:
        return NEG_INF, [0] * len(curves)
    return total, _reconstruct(choices, granularity)


def combine_server_curves_scalar(
    curves: Sequence[Sequence[float]],
    granularity: int,
) -> Tuple[float, List[int]]:
    """Pure-Python reference implementation of :func:`combine_server_curves`."""
    _check_inputs(curves, granularity)
    if not curves:
        return NEG_INF, []

    # best[u] = best profit achieving u units with the servers seen so far.
    best = [NEG_INF] * (granularity + 1)
    best[0] = 0.0
    # choices[j][u] = units given to server j in the best solution for u.
    choices: List[List[int]] = []

    for curve in curves:
        new_best = [NEG_INF] * (granularity + 1)
        choice_row = [0] * (granularity + 1)
        for used in range(granularity + 1):
            top = NEG_INF
            top_units = 0
            for units in range(used + 1):
                prior = best[used - units]
                value = curve[units]
                if prior == NEG_INF or value == NEG_INF:
                    continue
                candidate = prior + value
                if candidate > top:
                    top = candidate
                    top_units = units
            new_best[used] = top
            choice_row[used] = top_units
        best = new_best
        choices.append(choice_row)

    total = best[granularity]
    if total == NEG_INF:
        return NEG_INF, [0] * len(curves)
    return total, _reconstruct(choices, granularity)


def brute_force_combination(
    curves: Sequence[Sequence[float]],
    granularity: int,
) -> Tuple[float, List[int]]:
    """Exponential reference for :func:`combine_server_curves` (tests only)."""
    if not curves:
        return NEG_INF, []

    best_total = NEG_INF
    best_units: List[int] = [0] * len(curves)

    def recurse(j: int, remaining: int, acc: float, units: List[int]) -> None:
        nonlocal best_total, best_units
        if j == len(curves):
            if remaining == 0 and acc > best_total:
                best_total = acc
                best_units = list(units)
            return
        for g in range(remaining + 1):
            value = curves[j][g]
            if value == NEG_INF:
                continue
            units.append(g)
            recurse(j + 1, remaining - g, acc + value, units)
            units.pop()

    recurse(0, granularity, 0.0, [])
    return best_total, best_units
