"""Grid dynamic program for combining per-server profit curves.

``Assign_Distribute`` (section V.A) evaluates, for each candidate server,
the best achievable profit when the server carries ``g / G`` of a client's
traffic (``g = 0 .. G``).  The per-server curves are then combined by a
dynamic program that picks one grid point per server such that the chosen
traffic portions sum to exactly 1 (``sum_j alpha_ij = 1``) and the total
profit is maximal — a bounded-knapsack-style DP in ``O(J * G^2)``.

:func:`combine_server_curves` is the production kernel and adapts its
strategy to the problem size, because the three regimes have very
different constant factors:

* **one curve** — the recurrence degenerates to reading ``curve[G]``;
  answered directly;
* **small problems** (``J * (G+1)^2`` cells below
  :data:`SCALAR_CROSSOVER_CELLS`) — a pure-Python loop over plain floats.
  At the paper's default ``G = 10`` a typical cluster DP is a few hundred
  cells, where NumPy's per-call dispatch overhead exceeds the whole
  scalar solve (the PR-1 benchmark measured the array kernel at
  0.84–1.0x of scalar on these sizes);
* **large problems** — the inner ``O(G^2)`` max-plus step evaluated as a
  NumPy sliding-window maximum: the candidate matrix
  ``candidate[u, k] = best[u - k] + curve[k]`` is materialized as a
  stride-tricks window view over the reversed, ``-inf``-padded ``best``
  vector (no index gather), and ``argmax`` matches the scalar tie-break
  (smallest unit count wins).

All three produce bit-identical results: the same IEEE-754 additions on
the same operands, and the same first-maximum tie-break
(property-tested; ``benchmarks/check_regression.py`` additionally
asserts the adaptive choice is never slower than the scalar reference).

:func:`combine_curve_batches` solves *many* independent DPs in lockstep —
one gather-indexed recurrence stepping every batch member at once, padded
to the widest member.  ``best_placement`` uses it to fold all of a
client's candidate clusters (the memo-cache misses, see ALGORITHMS.md
§14) into a single call, amortizing the array dispatch overhead that
motivates the scalar crossover above.  Same operands, same tie-break:
batch results are bit-identical to per-cluster solves.

:func:`combine_server_curves_scalar` remains the frozen reference oracle
and :func:`brute_force_combination` the exponential test reference.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.exceptions import SolverError

NEG_INF = float("-inf")

#: Below this many DP cells (curves x (G+1)^2) the plain-Python loop wins;
#: measured on the benchmark host (see ALGORITHMS.md §14).
SCALAR_CROSSOVER_CELLS = 6000


def _check_inputs(curves: Sequence[Sequence[float]], granularity: int) -> None:
    if granularity < 1:
        raise SolverError(f"granularity must be >= 1, got {granularity}")
    for j, curve in enumerate(curves):
        if len(curve) != granularity + 1:
            raise SolverError(
                f"curve {j} has {len(curve)} points, expected {granularity + 1}"
            )


def _reconstruct(
    choices: Sequence[Sequence[int]], granularity: int
) -> List[int]:
    units = [0] * len(choices)
    remaining = granularity
    for j in range(len(choices) - 1, -1, -1):
        units[j] = int(choices[j][remaining])
        remaining -= units[j]
    if remaining != 0:
        raise SolverError("DP reconstruction failed to consume all grid units")
    return units


def combine_server_curves(
    curves: Sequence[Sequence[float]],
    granularity: int,
) -> Tuple[float, List[int]]:
    """Pick one grid point per curve so the points sum to ``granularity``.

    Args:
        curves: ``curves[j][g]`` is the profit of routing ``g`` grid units
            of traffic to server ``j``; use ``-inf`` for impossible points.
            Index 0 (no traffic) should normally be 0.
        granularity: the grid size ``G``; chosen units must sum to exactly
            ``G``.

    Returns:
        ``(best_total, units)`` where ``units[j]`` is the grid allocation
        of server ``j``.  ``best_total`` is ``-inf`` when no combination is
        feasible.
    """
    _check_inputs(curves, granularity)
    if not curves:
        return NEG_INF, []
    if len(curves) == 1:
        # One curve must carry everything: the recurrence collapses to
        # best[G] = 0.0 + curve[G] (the explicit 0.0 + keeps the -0.0
        # corner bitwise-faithful to the full DP).
        total = float(0.0 + curves[0][granularity])
        if total == NEG_INF:
            return NEG_INF, [0]
        return total, [granularity]
    size = granularity + 1
    if len(curves) * size * size <= SCALAR_CROSSOVER_CELLS:
        return _combine_scalar_core(
            [
                curve.tolist() if isinstance(curve, np.ndarray) else list(curve)
                for curve in curves
            ],
            granularity,
        )
    return _combine_vectorized(curves, granularity)


def _combine_vectorized(
    curves: Sequence[Sequence[float]],
    granularity: int,
) -> Tuple[float, List[int]]:
    """Sliding-window max-plus evaluation of the DP recurrence."""
    size = granularity + 1
    pad = np.full(size - 1, NEG_INF)
    best = np.full(size, NEG_INF)
    best[0] = 0.0
    choices = np.empty((len(curves), size), dtype=np.intp)
    for j, curve in enumerate(curves):
        values = np.asarray(curve, dtype=np.float64)
        # window u of the reversed padded vector is exactly
        # [best[u], best[u-1], ..., best[0], -inf, ...], so
        # candidate[u, k] = best[u - k] + curve[k] with -inf marking the
        # k > u region — the same matrix the O(G^2) loop scans.
        padded = np.concatenate((best[::-1], pad))
        candidate = sliding_window_view(padded, size)[::-1] + values[None, :]
        # argmax returns the first maximal k — same tie-break as the scalar
        # loop's strict-improvement scan, and 0 for all-infeasible rows.
        choices[j] = np.argmax(candidate, axis=1)
        best = np.max(candidate, axis=1)

    total = float(best[granularity])
    if total == NEG_INF:
        return NEG_INF, [0] * len(curves)
    return total, _reconstruct(choices, granularity)


def combine_curve_batches(
    groups: Sequence[np.ndarray],
    granularity: int,
) -> List[Tuple[float, List[int]]]:
    """Solve many independent curve-combination DPs in lockstep.

    ``groups[k]`` is a ``(J_k, G + 1)`` float64 matrix holding one DP's
    curves (``J_k >= 1``); the return value carries one
    ``(best_total, units)`` pair per group, each bitwise identical to
    ``combine_server_curves(groups[k], granularity)``.

    ``best_placement`` evaluates one small DP per candidate cluster; at
    the paper's ``G = 10`` each is a few hundred cells, so per-call
    dispatch — not arithmetic — dominates both the scalar and the
    vectorized single-DP kernels.  Stacking the groups lets every
    recurrence step run as one set of array operations over all groups:
    the same sliding-window max-plus step as :func:`_combine_vectorized`,
    which is row-independent, so group ``k``'s lane computes exactly what
    the single-group kernel would.  Groups shorter than the deepest one
    are padded with ``-inf`` curve rows and their lanes frozen by mask
    (never by arithmetic, which could flip ``-0.0``).
    """
    count = len(groups)
    if count == 0:
        return []
    size = granularity + 1
    depths = [group.shape[0] for group in groups]
    deepest = max(depths)
    stacked = np.full((count, deepest, size), NEG_INF)
    for k, group in enumerate(groups):
        stacked[k, : depths[k]] = group
    depths_arr = np.array(depths)

    # candidate[u, k] = best[u - k] + curve[k]: realized as one fancy-index
    # gather over a left-(-inf)-padded copy of ``best`` (index u - k
    # shifted by the pad width; negative u - k lands in the pad), which
    # sidesteps the per-step Python cost of a sliding-window view.
    grid = np.arange(size)
    gather = (size - 1) + grid[:, None] - grid[None, :]
    padded = np.full((count, 2 * size - 1), NEG_INF)

    best = np.full((count, size), NEG_INF)
    best[:, 0] = 0.0
    choices = np.zeros((count, deepest, size), dtype=np.intp)
    for j in range(deepest):
        padded[:, size - 1 :] = best
        candidate = padded[:, gather]
        candidate += stacked[:, j, None, :]
        choices[:, j, :] = candidate.argmax(axis=2)
        stepped = candidate.max(axis=2)
        # Exhausted groups keep their final vector; the -inf padding row
        # already made their lanes all -inf, so masking (a bitwise copy)
        # restores them exactly.
        best = np.where((depths_arr > j)[:, None], stepped, best)

    results: List[Tuple[float, List[int]]] = []
    for k, depth in enumerate(depths):
        total = float(best[k, granularity])
        if total == NEG_INF:
            results.append((NEG_INF, [0] * depth))
        else:
            results.append((total, _reconstruct(choices[k, :depth], granularity)))
    return results


def _combine_scalar_core(
    curves: Sequence[Sequence[float]],
    granularity: int,
) -> Tuple[float, List[int]]:
    """The O(J * G^2) reference recurrence over plain Python floats."""
    # best[u] = best profit achieving u units with the servers seen so far.
    best = [NEG_INF] * (granularity + 1)
    best[0] = 0.0
    # choices[j][u] = units given to server j in the best solution for u.
    choices: List[List[int]] = []

    for curve in curves:
        new_best = [NEG_INF] * (granularity + 1)
        choice_row = [0] * (granularity + 1)
        for used in range(granularity + 1):
            top = NEG_INF
            top_units = 0
            for units in range(used + 1):
                prior = best[used - units]
                value = curve[units]
                if prior == NEG_INF or value == NEG_INF:
                    continue
                candidate = prior + value
                if candidate > top:
                    top = candidate
                    top_units = units
            new_best[used] = top
            choice_row[used] = top_units
        best = new_best
        choices.append(choice_row)

    total = best[granularity]
    if total == NEG_INF:
        return NEG_INF, [0] * len(curves)
    return total, _reconstruct(choices, granularity)


def combine_server_curves_scalar(
    curves: Sequence[Sequence[float]],
    granularity: int,
) -> Tuple[float, List[int]]:
    """Pure-Python reference implementation of :func:`combine_server_curves`."""
    _check_inputs(curves, granularity)
    if not curves:
        return NEG_INF, []
    return _combine_scalar_core(curves, granularity)


def brute_force_combination(
    curves: Sequence[Sequence[float]],
    granularity: int,
) -> Tuple[float, List[int]]:
    """Exponential reference for :func:`combine_server_curves` (tests only)."""
    if not curves:
        return NEG_INF, []

    best_total = NEG_INF
    best_units: List[int] = [0] * len(curves)

    def recurse(j: int, remaining: int, acc: float, units: List[int]) -> None:
        nonlocal best_total, best_units
        if j == len(curves):
            if remaining == 0 and acc > best_total:
                best_total = acc
                best_units = list(units)
            return
        for g in range(remaining + 1):
            value = curves[j][g]
            if value == NEG_INF:
                continue
            units.append(g)
            recurse(j + 1, remaining - g, acc + value, units)
            units.pop()

    recurse(0, granularity, 0.0, [])
    return best_total, best_units
