"""Robust scalar root finding for monotone functions.

The KKT systems in :mod:`repro.optim.kkt` all reduce to "find the Lagrange
multiplier at which a monotone resource-usage curve hits its budget".
Bisection is the right tool: the curves are monotone but have unbounded
derivatives near stability boundaries, which defeats Newton-type methods.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.exceptions import SolverError

DEFAULT_TOLERANCE = 1e-10
DEFAULT_MAX_ITERATIONS = 200


def bisect_root(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> float:
    """Root of ``f`` on ``[lo, hi]``; ``f(lo)`` and ``f(hi)`` must straddle 0.

    Converges on the interval width; ``max_iterations`` bisections of a unit
    interval reach width ``2**-max_iterations``, far below any tolerance
    this library uses.
    """
    if lo > hi:
        raise SolverError(f"invalid bracket: lo={lo} > hi={hi}")
    f_lo = f(lo)
    f_hi = f(hi)
    if f_lo == 0.0:
        return lo
    if f_hi == 0.0:
        return hi
    if (f_lo > 0) == (f_hi > 0):
        raise SolverError(
            f"bracket does not straddle a root: f({lo})={f_lo}, f({hi})={f_hi}"
        )
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        f_mid = f(mid)
        if f_mid == 0.0 or (hi - lo) <= tolerance * max(1.0, abs(mid)):
            return mid
        if (f_mid > 0) == (f_lo > 0):
            lo, f_lo = mid, f_mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def solve_monotone(
    f: Callable[[float], float],
    target: float,
    lo: float,
    hi: float,
    increasing: bool,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> float:
    """Solve ``f(x) == target`` for monotone ``f`` on ``[lo, hi]``.

    If the target lies outside ``f``'s range on the bracket, the nearer
    endpoint is returned (saturation semantics — exactly what multiplier
    searches want).
    """
    f_lo = f(lo)
    f_hi = f(hi)
    if increasing:
        if target <= f_lo:
            return lo
        if target >= f_hi:
            return hi
    else:
        if target >= f_lo:
            return lo
        if target <= f_hi:
            return hi
    return bisect_root(
        lambda x: f(x) - target,
        lo,
        hi,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )


def expand_bracket(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    max_doublings: int = 100,
) -> Tuple[float, float]:
    """Grow ``hi`` geometrically until ``f`` changes sign on ``[lo, hi]``."""
    f_lo = f(lo)
    for _ in range(max_doublings):
        if (f(hi) > 0) != (f_lo > 0) or f(hi) == 0.0:
            return lo, hi
        hi *= 2.0
    raise SolverError(f"could not bracket a sign change from lo={lo} (f(lo)={f_lo})")
