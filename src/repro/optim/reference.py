"""Slow scipy-based reference solvers.

These solve the same convex subproblems as :mod:`repro.optim.kkt` with
general-purpose numerical optimization (SLSQP).  They exist so the test
suite can certify the closed forms against an independent implementation;
production code paths never import this module.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy import optimize

from repro.optim.kkt import DispersionBranch, ShareProblemItem


def reference_waterfill(
    items: Sequence[ShareProblemItem],
    budget: float,
    price_floor: float = 0.0,
) -> Optional[List[float]]:
    """Solve the share-allocation problem with SLSQP.

    Minimizes ``sum_i w_i/(s_i phi_i - a_i) + price_floor * sum_i phi_i``
    subject to the capacity budget and per-item bounds.  Returns ``None``
    when the lower bounds alone exceed the budget.
    """
    if not items:
        return []
    lowers = np.array([item.lower for item in items])
    uppers = np.array([item.upper for item in items])
    if lowers.sum() > budget + 1e-9:
        return None

    s = np.array([item.service_per_share for item in items])
    a = np.array([item.arrival_rate for item in items])
    w = np.array([item.weight for item in items])

    def objective(phi: np.ndarray) -> float:
        headroom = s * phi - a
        if np.any(headroom[w > 0] <= 0):
            return 1e18
        cost = price_floor * phi.sum()
        with np.errstate(divide="ignore"):
            response = np.where(w > 0, w / np.maximum(headroom, 1e-300), 0.0)
        return float(response.sum() + cost)

    start = np.clip((a / s) * 1.5 + 0.05, lowers, uppers)
    scale = budget - lowers.sum()
    if start.sum() > budget and scale > 0:
        start = lowers + (start - lowers) * scale / (start - lowers).sum()

    result = optimize.minimize(
        objective,
        start,
        method="SLSQP",
        bounds=list(zip(lowers, uppers)),
        constraints=[
            {"type": "ineq", "fun": lambda phi: budget - phi.sum()},
        ],
        options={"maxiter": 500, "ftol": 1e-12},
    )
    if not result.success:
        return None
    return [float(x) for x in result.x]


def reference_dispersion(
    branches: Sequence[DispersionBranch],
    arrival_rate: float,
    total: float = 1.0,
) -> Optional[List[float]]:
    """Solve the dispersion problem with SLSQP (reference for tests)."""
    usable = [branch.usable for branch in branches]
    if not any(usable):
        return None
    r_p = np.array([b.rate_processing for b in branches])
    r_b = np.array([b.rate_bandwidth for b in branches])
    caps = np.array(
        [
            min(b.max_alpha(arrival_rate, 1.0001), total) if b.usable else 0.0
            for b in branches
        ]
    )
    if caps.sum() < total:
        return None

    def objective(alpha: np.ndarray) -> float:
        head_p = r_p - alpha * arrival_rate
        head_b = r_b - alpha * arrival_rate
        active = alpha > 1e-15
        if np.any(head_p[active] <= 0) or np.any(head_b[active] <= 0):
            return 1e18
        with np.errstate(divide="ignore"):
            terms = np.where(
                active,
                alpha
                * (
                    1.0 / np.maximum(head_p, 1e-300)
                    + 1.0 / np.maximum(head_b, 1e-300)
                ),
                0.0,
            )
        return float(terms.sum())

    start = caps / caps.sum() * total
    result = optimize.minimize(
        objective,
        start,
        method="SLSQP",
        bounds=[(0.0, float(c)) for c in caps],
        constraints=[{"type": "eq", "fun": lambda alpha: alpha.sum() - total}],
        options={"maxiter": 500, "ftol": 1e-12},
    )
    if not result.success:
        return None
    return [float(x) for x in result.x]
