"""Feasibility audit + differential verification.

This package is the single source of truth for the paper's hard
constraints and for every numerical tolerance the solvers use:

* :mod:`repro.audit.invariants` — each constraint of the MINLP
  (section IV, (3)-(12)) as a named, tolerance-parameterized predicate
  over an :class:`~repro.model.allocation.Allocation` and a
  :class:`~repro.model.datacenter.CloudSystem`, plus the shared
  tolerance constants (``FEASIBILITY_TOLERANCE``, ``ACCEPT_TOLERANCE``,
  ``AGREEMENT_TOLERANCE``, ...) that used to live scattered across the
  core modules;
* :mod:`repro.audit.differential` — a harness that pushes one instance
  through all four scoring paths (scalar oracle, vectorized kernels,
  delta scorer, online service) and asserts they agree;
* :mod:`repro.audit.hooks` — opt-in debug instrumentation
  (``REPRO_AUDIT=1`` or ``--audit``) that re-validates the working
  allocation after every solver pass, repair op, and service event.

:mod:`repro.audit.differential` imports the solvers and the service
engine; import it explicitly (``from repro.audit import differential``)
rather than through this package root, which stays dependency-light so
that :mod:`repro.model.validation` can delegate here without cycles.
"""

from repro.audit.hooks import audit_enabled, audit_point, disable_audit, enable_audit
from repro.audit.invariants import (
    ACCEPT_TOLERANCE,
    AGREEMENT_TOLERANCE,
    FEASIBILITY_TOLERANCE,
    NEGLIGIBLE_ALPHA,
    SHARE_BUDGET_TOLERANCE,
    INVARIANTS,
    Violation,
    find_violations,
    validate_allocation,
)

__all__ = [
    "ACCEPT_TOLERANCE",
    "AGREEMENT_TOLERANCE",
    "FEASIBILITY_TOLERANCE",
    "NEGLIGIBLE_ALPHA",
    "SHARE_BUDGET_TOLERANCE",
    "INVARIANTS",
    "Violation",
    "find_violations",
    "validate_allocation",
    "audit_enabled",
    "audit_point",
    "enable_audit",
    "disable_audit",
]
