"""Differential verification across the four scoring paths.

The repo scores an allocation four ways:

1. the **scalar oracle** — :func:`repro.model.profit.evaluate_profit`
   driving :class:`~repro.core.allocator.ResourceAllocator` with the
   pure-Python kernels;
2. the **vectorized kernels** — the same solver with the NumPy batched
   curves (claimed bit-parity with the scalar kernels);
3. the **delta scorer** — the solver gated by
   :class:`~repro.core.delta.DeltaScorer`'s incremental profit;
4. the **service engine** — the online repair path
   (:class:`~repro.service.engine.AllocationService`), admitting the
   same clients one event at a time.

:func:`run_differential` pushes one instance through all four and cross-
checks them:

* every path's final allocation must carry **zero violations** under the
  invariant pack (:mod:`repro.audit.invariants`);
* every path's *reported* profit must match an independent scalar
  re-evaluation of its own allocation within ``AGREEMENT_TOLERANCE``
  (this is the check that catches a drifting incremental scorer);
* paths 1-3 solve the same batch problem, so their profits must agree
  within ``AGREEMENT_TOLERANCE`` — and paths 1 and 2 must agree
  **bitwise**, allocation and profit, because kernel vectorization
  promises bit-parity;
* the service path solves a different (online) problem, so its profit is
  compared only against its own re-evaluation, never cross-path.

The harness backs the ``repro audit`` CLI subcommand and the pytest
fixtures in ``tests/audit/conftest.py``; :func:`audit_snapshot` /
:func:`audit_journal` run the same checks over saved service state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.audit.invariants import (
    AGREEMENT_TOLERANCE,
    Violation,
    check_no_entries_on_servers,
    find_violations,
)
from repro.config import SolverConfig
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit

#: Path names, in reporting order.
PATH_NAMES = ("scalar", "vectorized", "delta", "service")


@dataclass
class PathReport:
    """One scoring path's outcome on one instance."""

    name: str
    reported_profit: float
    recomputed_profit: float
    violations: List[Violation]
    allocation: Allocation

    @property
    def self_consistent(self) -> bool:
        if math.isinf(self.reported_profit) or math.isinf(self.recomputed_profit):
            return self.reported_profit == self.recomputed_profit
        return (
            abs(self.reported_profit - self.recomputed_profit)
            <= AGREEMENT_TOLERANCE
        )

    @property
    def ok(self) -> bool:
        return self.self_consistent and not self.violations


@dataclass
class DifferentialReport:
    """All four paths plus the cross-path disagreements for one instance."""

    seed: Optional[int]
    paths: Dict[str, PathReport]
    disagreements: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements and all(p.ok for p in self.paths.values())

    def summary(self) -> str:
        lines = []
        for name in PATH_NAMES:
            path = self.paths[name]
            status = "ok" if path.ok else "FAIL"
            lines.append(
                f"  {name:<10} profit={path.reported_profit:+.9f} "
                f"violations={len(path.violations)} [{status}]"
            )
        for issue in self.disagreements:
            lines.append(f"  DISAGREE: {issue}")
        return "\n".join(lines)


def _solve_path(
    system: CloudSystem, config: SolverConfig
) -> Tuple[float, Allocation]:
    from repro.core.allocator import ResourceAllocator

    result = ResourceAllocator(config).solve(system)
    return result.profit, result.allocation


def _service_path(
    system: CloudSystem, config: SolverConfig
) -> Tuple[float, Allocation]:
    from repro.service.driver import empty_copy
    from repro.service.engine import AllocationService
    from repro.service.events import ClientAdmit

    service = AllocationService(empty_copy(system), config=config)
    for client in system.clients:
        service.apply(ClientAdmit(client=client))
    return service.profit(), service.allocation.copy()


def _path_report(
    name: str, system: CloudSystem, reported: float, allocation: Allocation
) -> PathReport:
    recomputed = evaluate_profit(
        system, allocation, require_all_served=False
    ).total_profit
    violations = find_violations(system, allocation, require_all_served=False)
    return PathReport(
        name=name,
        reported_profit=reported,
        recomputed_profit=recomputed,
        violations=violations,
        allocation=allocation,
    )


def run_differential(
    system: CloudSystem,
    config: Optional[SolverConfig] = None,
    seed: Optional[int] = None,
    tolerance: float = AGREEMENT_TOLERANCE,
    use_cache: bool = True,
    check_dual_bound: bool = False,
) -> DifferentialReport:
    """Run one instance through all four scoring paths and cross-check.

    ``use_cache`` arms the memo cache (:mod:`repro.core.cache`) on the
    vectorized/delta/service paths — the production configuration — so
    the bitwise scalar-vs-vectorized gate simultaneously proves cache
    transparency.  The scalar oracle never caches.  With the cache on,
    the vectorized path is additionally re-solved cache-off and the two
    runs must match bitwise (allocation and profit).

    ``check_dual_bound`` adds the Lagrangian upper bound
    (:func:`repro.gap.dual.dual_bound`) as a fifth, *independent* judge:
    no feasible allocation can earn more than the bound, so any path
    whose reported profit exceeds it is provably mis-scoring — the one
    failure mode the four paths cannot catch by agreeing with each
    other (a bug in shared scoring machinery shifts them all together).
    Breaches are reported as structured ``(dual-bound)`` violations on
    the offending path.
    """
    base = config or SolverConfig()
    variants: Dict[str, SolverConfig] = {
        "scalar": replace(
            base,
            use_vectorized_kernels=False,
            use_delta_scoring=False,
            use_curve_cache=False,
        ),
        "vectorized": replace(
            base,
            use_vectorized_kernels=True,
            use_delta_scoring=False,
            use_curve_cache=use_cache,
        ),
        "delta": replace(
            base,
            use_vectorized_kernels=True,
            use_delta_scoring=True,
            use_curve_cache=use_cache,
        ),
    }
    paths: Dict[str, PathReport] = {}
    for name, variant in variants.items():
        reported, allocation = _solve_path(system, variant)
        paths[name] = _path_report(name, system, reported, allocation)
    reported, allocation = _service_path(system, variants["delta"])
    paths["service"] = _path_report("service", system, reported, allocation)

    disagreements: List[str] = []
    scalar = paths["scalar"]
    vectorized = paths["vectorized"]
    if scalar.reported_profit != vectorized.reported_profit:
        disagreements.append(
            "scalar vs vectorized profit not bit-identical: "
            f"{scalar.reported_profit!r} != {vectorized.reported_profit!r}"
        )
    if scalar.allocation != vectorized.allocation:
        disagreements.append("scalar vs vectorized allocations differ")
    delta = paths["delta"]
    if abs(delta.reported_profit - scalar.reported_profit) > tolerance:
        disagreements.append(
            "delta-scored solve drifted from scalar solve: "
            f"{delta.reported_profit!r} vs {scalar.reported_profit!r}"
        )
    if use_cache:
        uncached_profit, uncached_allocation = _solve_path(
            system, replace(variants["vectorized"], use_curve_cache=False)
        )
        if uncached_profit != vectorized.reported_profit:
            disagreements.append(
                "memo cache is not bit-transparent: cached profit "
                f"{vectorized.reported_profit!r} != uncached "
                f"{uncached_profit!r}"
            )
        if uncached_allocation != vectorized.allocation:
            disagreements.append(
                "memo cache is not bit-transparent: cached and uncached "
                "vectorized allocations differ"
            )
    if check_dual_bound:
        _check_dual_bound(system, paths)
    return DifferentialReport(seed=seed, paths=paths, disagreements=disagreements)


#: Numerical slack for the dual-bound sanity check: the bound is a float
#: computation on a different code path, so exact comparison is wrong,
#: but any real mis-scoring overshoots by whole profit units.
DUAL_BOUND_TOLERANCE = 1e-6


def _check_dual_bound(system: CloudSystem, paths: Dict[str, PathReport]) -> None:
    """Flag any path whose reported profit exceeds the Lagrangian bound."""
    from repro.gap.dual import dual_bound

    bound = dual_bound(system).bound
    for report in paths.values():
        if report.reported_profit > bound + DUAL_BOUND_TOLERANCE:
            report.violations.append(
                Violation(
                    "(dual-bound)",
                    f"path {report.name}",
                    f"reported profit {report.reported_profit!r} exceeds "
                    f"the Lagrangian upper bound {bound!r} — no feasible "
                    "allocation can earn that much, the path is mis-scoring",
                    slack=bound - report.reported_profit,
                )
            )


def run_matrix(
    seeds=range(20),
    num_clients: int = 10,
    config: Optional[SolverConfig] = None,
    tolerance: float = AGREEMENT_TOLERANCE,
    system_factory: Optional[Callable[[int], CloudSystem]] = None,
    use_cache: bool = True,
    check_dual_bound: bool = False,
) -> List[DifferentialReport]:
    """Differential-verify a matrix of seeded workload instances."""
    from repro.workload.generator import generate_system

    reports = []
    for seed in seeds:
        system = (
            system_factory(seed)
            if system_factory is not None
            else generate_system(num_clients=num_clients, seed=seed)
        )
        base = config or SolverConfig(seed=seed)
        reports.append(
            run_differential(
                system,
                config=base,
                seed=seed,
                tolerance=tolerance,
                use_cache=use_cache,
                check_dual_bound=check_dual_bound,
            )
        )
    return reports


def audit_snapshot(
    doc: dict,
    tolerance: float = AGREEMENT_TOLERANCE,
) -> List[str]:
    """Cross-check a service snapshot document; returns found problems.

    Verifies the stored profit against a scalar re-evaluation, runs the
    invariant pack over the stored allocation (every in-system client of
    a healthy snapshot is fully served), and scans for rows referencing
    servers the snapshot itself marks as failed.
    """
    from repro.io import allocation_from_dict, system_from_dict

    problems: List[str] = []
    system = system_from_dict(doc["system"])
    allocation = allocation_from_dict(doc["allocation"])
    for violation in find_violations(system, allocation, require_all_served=True):
        problems.append(str(violation))
    for violation in check_no_entries_on_servers(
        allocation, doc.get("failed_servers", ())
    ):
        problems.append(str(violation))
    recomputed = evaluate_profit(
        system, allocation, require_all_served=False
    ).total_profit
    stored = doc.get("profit")
    if stored is None:
        problems.append("snapshot carries no profit field")
    elif math.isinf(recomputed) or abs(recomputed - stored) > tolerance:
        problems.append(
            f"stored profit {stored!r} disagrees with re-evaluation "
            f"{recomputed!r}"
        )
    return problems


def audit_journal(
    snapshot_doc: dict,
    journal_path: Optional[str] = None,
    config: Optional[SolverConfig] = None,
    tolerance: float = AGREEMENT_TOLERANCE,
) -> List[str]:
    """Replay snapshot + journal with the audit hooks armed.

    Every replayed event re-runs the invariant pack (via the service's
    audit point), and the final state's incremental profit is checked
    against the scalar oracle.  Returns the list of problems found.
    """
    from repro.audit import hooks
    from repro.core.scoring import score
    from repro.exceptions import ReproError
    from repro.service.journal import recover

    problems: List[str] = []
    previously_enabled = hooks.audit_enabled()
    hooks.enable_audit()
    try:
        service = recover(snapshot_doc, journal_path, config=config)
    except ReproError as exc:
        return [f"replay failed: {exc}"]
    finally:
        if not previously_enabled:
            hooks.reset_audit()
    incremental = service.profit()
    oracle = score(service.system, service.allocation)
    if math.isinf(incremental) or abs(incremental - oracle) > tolerance:
        problems.append(
            f"replayed service profit {incremental!r} disagrees with "
            f"oracle {oracle!r}"
        )
    return problems
