"""Paper constraints as named, tolerance-parameterized predicates.

Single source of truth for feasibility.  Each hard constraint of the
profit-maximization MINLP (section IV of the paper) is one predicate
returning a list of structured :class:`Violation` records:

=========================  ==========================================
predicate                  paper constraint
=========================  ==========================================
check_cluster_assignment   (6)/(10): one cluster per client, entries
                           only inside it
check_traffic_conservation (5): per-client alpha sums to exactly 1
check_share_capacity       (4): per-server GPS shares sum to <= 1
check_storage_capacity     (8): disk reservations fit the server
check_queue_stability      (7): both M/M/1 queues of every branch
                           strictly stable
=========================  ==========================================

The module also owns every numerical tolerance the rest of the code
uses, so that "how close to the boundary is still feasible" is decided
in exactly one place:

``FEASIBILITY_TOLERANCE``
    Slack on constraint sums (alpha totals, share totals, storage).
    Shares come out of bisection so exact equality cannot be expected.
``AGREEMENT_TOLERANCE``
    Maximum tolerated profit disagreement between any two scoring paths
    (scalar oracle, vectorized kernels, delta scorer, service engine).
``ACCEPT_TOLERANCE``
    Hill-climbing accept-if-better gate: a move must improve profit by
    more than this to be kept.  Strictly below the agreement tolerance
    would let scoring noise masquerade as improvement, so the gate sits
    three orders below it and the scorers are held to 1e-9 agreement.
``NEGLIGIBLE_ALPHA``
    Traffic portions below this are treated as "not served here" when
    pruning near-empty branches.
``SHARE_BUDGET_TOLERANCE``
    Slack allowed when a move planner checks a candidate share budget
    against a server's remaining capacity.

:mod:`repro.model.validation` re-exports :func:`find_violations` /
:func:`validate_allocation` for backward compatibility; new code should
import from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.exceptions import InfeasibleAllocationError
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem

#: Numerical slack for share sums and alpha sums.  Shares are produced by
#: bisection so exact equality cannot be expected.
FEASIBILITY_TOLERANCE = 1e-6

#: Maximum tolerated profit disagreement between any two scoring paths.
AGREEMENT_TOLERANCE = 1e-9

#: Accept-if-better gate for hill-climbing moves (shares, dispersion,
#: reassignment, power, repair): keep a move only if it improves profit
#: by more than this.
ACCEPT_TOLERANCE = 1e-12

#: Traffic portions below this are treated as zero when pruning branches.
NEGLIGIBLE_ALPHA = 1e-9

#: Slack when checking a candidate share budget against server capacity.
SHARE_BUDGET_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Violation:
    """One violated constraint, tagged with the paper's constraint label.

    The first three fields match the legacy record exactly (callers
    construct them positionally).  The optional fields identify the
    offending entity and quantify the miss: ``slack`` is the margin to
    the constraint boundary in its natural orientation (capacity minus
    demand, ``mu - lambda``, ``1 - sum``), so a violated constraint
    reports a negative slack.
    """

    constraint: str
    subject: str
    detail: str
    client_id: Optional[int] = None
    server_id: Optional[int] = None
    cluster_id: Optional[int] = None
    slack: Optional[float] = None

    def __str__(self) -> str:
        return f"[{self.constraint}] {self.subject}: {self.detail}"


def check_cluster_assignment(
    system: CloudSystem,
    allocation: Allocation,
    require_all_served: bool = True,
    tolerance: float = FEASIBILITY_TOLERANCE,
) -> List[Violation]:
    """Constraint (6)/(10): each client served by exactly one known cluster,
    with every per-server entry inside that cluster."""
    violations: List[Violation] = []
    for client in system.clients:
        cid = client.client_id
        if not allocation.is_assigned(cid):
            if require_all_served:
                violations.append(
                    Violation(
                        "(6)",
                        f"client {cid}",
                        "not assigned to any cluster",
                        client_id=cid,
                    )
                )
            continue
        cluster_id = allocation.cluster_of[cid]
        if cluster_id not in system.cluster_ids():
            violations.append(
                Violation(
                    "(6)",
                    f"client {cid}",
                    f"unknown cluster {cluster_id}",
                    client_id=cid,
                    cluster_id=cluster_id,
                )
            )
            continue
        for server_id in allocation.entries_of_client(cid):
            if system.cluster_of_server(server_id) != cluster_id:
                violations.append(
                    Violation(
                        "(6)",
                        f"client {cid}",
                        f"entry on server {server_id} outside assigned "
                        f"cluster {cluster_id}",
                        client_id=cid,
                        server_id=server_id,
                        cluster_id=cluster_id,
                    )
                )
    return violations


def check_traffic_conservation(
    system: CloudSystem,
    allocation: Allocation,
    require_all_served: bool = True,
    tolerance: float = FEASIBILITY_TOLERANCE,
) -> List[Violation]:
    """Constraint (5): every served client's traffic portions sum to 1.

    ``require_all_served=False`` relaxes this to "sums to 1 *for clients
    that have any entries*", which is what partial states inside the
    greedy constructor need.  Clients flagged by
    :func:`check_cluster_assignment` for an unknown cluster are skipped
    here (their entries are meaningless).
    """
    violations: List[Violation] = []
    for client in system.clients:
        cid = client.client_id
        if not allocation.is_assigned(cid):
            continue
        cluster_id = allocation.cluster_of[cid]
        if cluster_id not in system.cluster_ids():
            continue
        entries = allocation.entries_of_client(cid)
        if not entries:
            if require_all_served:
                violations.append(
                    Violation(
                        "(5)",
                        f"client {cid}",
                        "assigned but serves no traffic",
                        client_id=cid,
                        cluster_id=cluster_id,
                        slack=-1.0,
                    )
                )
            continue
        total_alpha = allocation.total_alpha(cid)
        if abs(total_alpha - 1.0) > tolerance:
            violations.append(
                Violation(
                    "(5)",
                    f"client {cid}",
                    f"traffic portions sum to {total_alpha:.9f}, expected 1",
                    client_id=cid,
                    cluster_id=cluster_id,
                    slack=1.0 - total_alpha,
                )
            )
    return violations


def check_share_capacity(
    system: CloudSystem,
    allocation: Allocation,
    require_all_served: bool = True,
    tolerance: float = FEASIBILITY_TOLERANCE,
) -> List[Violation]:
    """Constraint (4): per-server GPS shares (plus background load) <= 1."""
    violations: List[Violation] = []
    for server in system.servers():
        sid = server.server_id
        used_p, used_b = allocation.server_share_totals(sid)
        used_p += server.background_processing
        used_b += server.background_bandwidth
        if used_p > 1.0 + tolerance:
            violations.append(
                Violation(
                    "(4)",
                    f"server {sid}",
                    f"processing shares sum to {used_p:.9f} > 1",
                    server_id=sid,
                    slack=1.0 - used_p,
                )
            )
        if used_b > 1.0 + tolerance:
            violations.append(
                Violation(
                    "(4)",
                    f"server {sid}",
                    f"bandwidth shares sum to {used_b:.9f} > 1",
                    server_id=sid,
                    slack=1.0 - used_b,
                )
            )
    return violations


def check_storage_capacity(
    system: CloudSystem,
    allocation: Allocation,
    require_all_served: bool = True,
    tolerance: float = FEASIBILITY_TOLERANCE,
) -> List[Violation]:
    """Constraint (8): disk reservations of served clients fit the server."""
    violations: List[Violation] = []
    for server in system.servers():
        sid = server.server_id
        storage = server.background_storage
        for client_id in allocation.clients_on_server(sid):
            entry = allocation.entry(client_id, sid)
            if entry is not None and entry.alpha > 0.0:
                storage += system.client(client_id).storage_req
        if storage > server.cap_storage + tolerance:
            violations.append(
                Violation(
                    "(8)",
                    f"server {sid}",
                    f"storage demand {storage:.9f} exceeds capacity "
                    f"{server.cap_storage:.9f}",
                    server_id=sid,
                    slack=server.cap_storage - storage,
                )
            )
    return violations


def check_queue_stability(
    system: CloudSystem,
    allocation: Allocation,
    require_all_served: bool = True,
    tolerance: float = FEASIBILITY_TOLERANCE,
) -> List[Violation]:
    """Constraint (7): both M/M/1 queues of every served branch are
    strictly stable (``mu > lambda``, an open inequality — no tolerance:
    a queue at ``rho == 1`` has unbounded response time, so "almost
    stable" is not a numerical nicety we can grant)."""
    violations: List[Violation] = []
    for client_id, server_id, entry in allocation.iter_entries():
        if entry.alpha <= 0.0:
            continue
        client = system.client(client_id)
        server = system.server(server_id)
        arrival = entry.alpha * client.rate_predicted
        mu_p = entry.phi_p * server.cap_processing / client.t_proc
        mu_b = entry.phi_b * server.cap_bandwidth / client.t_comm
        if mu_p <= arrival:
            violations.append(
                Violation(
                    "(7)",
                    f"client {client_id} on server {server_id}",
                    f"processing queue unstable: mu={mu_p:.9f} <= "
                    f"lambda={arrival:.9f}",
                    client_id=client_id,
                    server_id=server_id,
                    slack=mu_p - arrival,
                )
            )
        if mu_b <= arrival:
            violations.append(
                Violation(
                    "(7)",
                    f"client {client_id} on server {server_id}",
                    f"communication queue unstable: mu={mu_b:.9f} <= "
                    f"lambda={arrival:.9f}",
                    client_id=client_id,
                    server_id=server_id,
                    slack=mu_b - arrival,
                )
            )
    return violations


#: Every invariant, in reporting order, keyed by a short name.  All
#: predicates share one signature
#: ``(system, allocation, require_all_served, tolerance) -> [Violation]``.
INVARIANTS: Tuple[
    Tuple[str, Callable[[CloudSystem, Allocation, bool, float], List[Violation]]],
    ...,
] = (
    ("cluster-assignment", check_cluster_assignment),
    ("traffic-conservation", check_traffic_conservation),
    ("share-capacity", check_share_capacity),
    ("storage-capacity", check_storage_capacity),
    ("queue-stability", check_queue_stability),
)


def check_no_entries_on_servers(
    allocation: Allocation,
    server_ids,
    reason: str = "failed",
) -> List[Violation]:
    """Operational invariant: no allocation row references a server from
    ``server_ids`` (used by the online service after draining a failed
    server — any surviving row would bill traffic to dead hardware)."""
    violations: List[Violation] = []
    excluded = set(server_ids)
    for client_id, server_id, entry in allocation.iter_entries():
        if server_id in excluded:
            violations.append(
                Violation(
                    "(3)",
                    f"client {client_id} on server {server_id}",
                    f"entry references {reason} server {server_id} "
                    f"(alpha={entry.alpha:.9f})",
                    client_id=client_id,
                    server_id=server_id,
                )
            )
    return violations


def find_violations(
    system: CloudSystem,
    allocation: Allocation,
    require_all_served: bool = True,
    tolerance: float = FEASIBILITY_TOLERANCE,
) -> List[Violation]:
    """Check every hard constraint; return all violations found.

    Composes the :data:`INVARIANTS` predicates in order.  Empty result
    == feasible.
    """
    violations: List[Violation] = []
    for _name, predicate in INVARIANTS:
        violations.extend(predicate(system, allocation, require_all_served, tolerance))
    return violations


def validate_allocation(
    system: CloudSystem,
    allocation: Allocation,
    require_all_served: bool = True,
    tolerance: float = FEASIBILITY_TOLERANCE,
) -> None:
    """Raise :class:`InfeasibleAllocationError` if any constraint is violated."""
    violations = find_violations(
        system, allocation, require_all_served=require_all_served, tolerance=tolerance
    )
    if violations:
        summary = "; ".join(str(v) for v in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise InfeasibleAllocationError(
            f"{len(violations)} violations: {summary}{more}", violations=violations
        )
