"""Opt-in audit instrumentation for solver and service hot paths.

When enabled — ``REPRO_AUDIT=1`` in the environment, the ``--audit``
CLI flag, or :func:`enable_audit` programmatically — every call to
:func:`audit_point` re-runs the full invariant pack from
:mod:`repro.audit.invariants` on the working allocation and raises
:class:`~repro.exceptions.InfeasibleAllocationError` (carrying the
structured violation list) the moment a solver pass, repair op, or
service event leaves the state infeasible.  Disabled, an audit point is
a single attribute check, so the hooks can live inside local search and
the service engine without a measurable cost.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.audit.invariants import FEASIBILITY_TOLERANCE, Violation, find_violations
from repro.exceptions import InfeasibleAllocationError

#: Environment variable that switches the audit hooks on.
AUDIT_ENV_VAR = "REPRO_AUDIT"

_FALSY = {"", "0", "false", "no", "off"}

#: Programmatic override: None defers to the environment variable.
_override: Optional[bool] = None


def audit_enabled() -> bool:
    """True when audit points should run the invariant pack."""
    if _override is not None:
        return _override
    return os.environ.get(AUDIT_ENV_VAR, "").strip().lower() not in _FALSY


def enable_audit() -> None:
    """Switch audit points on for this process (overrides the env var)."""
    global _override
    _override = True


def disable_audit() -> None:
    """Switch audit points off for this process (overrides the env var)."""
    global _override
    _override = False


def reset_audit() -> None:
    """Drop the programmatic override; defer to ``REPRO_AUDIT`` again."""
    global _override
    _override = None


def audit_point(
    system,
    allocation,
    where: str,
    require_all_served: bool = False,
    tolerance: float = FEASIBILITY_TOLERANCE,
    extra_violations: Optional[List[Violation]] = None,
) -> None:
    """Validate the allocation if auditing is on; no-op otherwise.

    ``where`` names the hook site (e.g. ``"local_search.reassignment_pass"``)
    and is prepended to the error so a failing audit pinpoints the pass
    that broke feasibility.  ``extra_violations`` lets a call site merge
    in operational checks (e.g. the service's failed-server row scan).
    """
    if not audit_enabled():
        return
    violations = find_violations(
        system, allocation, require_all_served=require_all_served, tolerance=tolerance
    )
    if extra_violations:
        violations = list(extra_violations) + violations
    if violations:
        summary = "; ".join(str(v) for v in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise InfeasibleAllocationError(
            f"audit failed at {where}: {len(violations)} violations: "
            f"{summary}{more}",
            violations=violations,
        )
