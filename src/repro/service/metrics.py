"""Observability for the online allocation service.

The registry separates two kinds of signals:

* **deterministic counters** (events per type, admits accepted/queued,
  re-optimizations triggered/swapped, ...) — these are part of the
  service's logical state and are carried through snapshots, so a
  restored service reports the same totals as one that never died;
* **wall-clock measurements** (repair latency histogram, events/sec) —
  these describe the *process*, not the allocation, and are deliberately
  excluded from snapshots so replay determinism is byte-exact.

The profit timeline records ``(seq, profit)`` after every event; it is
deterministic but unbounded, so it also stays out of snapshots (replay
regenerates it exactly).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Default reservoir size.  4096 samples put the nearest-rank p99 of a
#: long stream within a few percent of the exact value while bounding a
#: shard's histogram to ~32 KiB no matter how many events it has served.
DEFAULT_HISTOGRAM_CAPACITY = 4096

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class LatencyHistogram:
    """Latency quantiles (p50/p90/p99) over a bounded reservoir.

    A long-running shard records one sample per event; storing them all
    grows memory and quantile-sort cost linearly with uptime.  The
    histogram instead keeps a fixed-size uniform sample of the stream
    (Vitter's Algorithm R, driven by an internal 64-bit LCG so the
    choice of survivors is deterministic for a given record sequence and
    never touches the global RNG).  ``count``, ``mean`` and ``max`` are
    exact over the whole stream; quantiles are estimates over the
    reservoir — exact until ``capacity`` samples have been seen.
    """

    def __init__(self, capacity: int = DEFAULT_HISTOGRAM_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._lcg = 0x9E3779B97F4A7C15  # fixed seed: deterministic survivors

    @classmethod
    def from_state(
        cls,
        samples: Iterable[float],
        count: int,
        sum_seconds: float,
        max_seconds: float,
        capacity: int = DEFAULT_HISTOGRAM_CAPACITY,
    ) -> "LatencyHistogram":
        """Rebuild a histogram from shipped state (e.g. from a worker
        process) so reservoirs can be pooled across process boundaries."""
        histogram = cls(capacity)
        histogram._samples = list(samples)[:capacity]
        histogram._count = count
        histogram._sum = sum_seconds
        histogram._max = max_seconds
        return histogram

    def state(self) -> Dict[str, Any]:
        """The picklable counterpart of :meth:`from_state`."""
        return {
            "samples": list(self._samples),
            "count": self._count,
            "sum_seconds": self._sum,
            "max_seconds": self._max,
            "capacity": self.capacity,
        }

    def _next_index(self, bound: int) -> int:
        self._lcg = (self._lcg * _LCG_MULT + _LCG_INC) & _LCG_MASK
        return (self._lcg >> 33) % bound

    def record(self, seconds: float) -> None:
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds
        if len(self._samples) < self.capacity:
            self._samples.append(seconds)
            self._sorted = None
            return
        # Algorithm R: the new sample replaces a random slot with
        # probability capacity/count, keeping the reservoir uniform.
        slot = self._next_index(self._count)
        if slot < self.capacity:
            self._samples[slot] = seconds
            self._sorted = None

    @property
    def count(self) -> int:
        """Total samples recorded (not the reservoir occupancy)."""
        return self._count

    @property
    def samples(self) -> Tuple[float, ...]:
        """The current reservoir contents (for merging across shards)."""
        return tuple(self._samples)

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the reservoir; 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        rank = min(len(self._sorted) - 1, max(0, round(q * len(self._sorted)) - 1))
        return self._sorted[rank]

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_seconds": self.mean(),
            "p50_seconds": self.quantile(0.50),
            "p90_seconds": self.quantile(0.90),
            "p99_seconds": self.quantile(0.99),
            "max_seconds": self._max,
        }


def merged_quantiles(histograms: Iterable[LatencyHistogram]) -> Dict[str, float]:
    """Pooled quantiles across shards: one sorted pass over all reservoirs.

    Each reservoir is a uniform sample of its own stream, so the merge
    weights shards by their reservoir occupancy — exact while every
    shard is below capacity, an estimate after.
    """
    pooled: List[float] = []
    total = 0
    mean_sum = 0.0
    peak = 0.0
    for histogram in histograms:
        pooled.extend(histogram.samples)
        total += histogram.count
        mean_sum += histogram.mean() * histogram.count
        peak = max(peak, histogram.to_dict()["max_seconds"])
    if not pooled:
        return {
            "count": 0,
            "mean_seconds": 0.0,
            "p50_seconds": 0.0,
            "p90_seconds": 0.0,
            "p99_seconds": 0.0,
            "max_seconds": 0.0,
        }
    pooled.sort()

    def rank(q: float) -> float:
        return pooled[min(len(pooled) - 1, max(0, round(q * len(pooled)) - 1))]

    return {
        "count": total,
        "mean_seconds": mean_sum / total if total else 0.0,
        "p50_seconds": rank(0.50),
        "p90_seconds": rank(0.90),
        "p99_seconds": rank(0.99),
        "max_seconds": peak,
    }


class MetricsRegistry:
    """Counters + repair-latency histogram + profit timeline + gauges."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.repair_latency = LatencyHistogram()
        self.profit_timeline: List[Tuple[int, float]] = []
        self.queue_depth = 0
        self._started = time.perf_counter()

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def record_event(self, seq: int, profit: float, repair_seconds: float) -> None:
        self.incr("events_total")
        self.repair_latency.record(repair_seconds)
        self.profit_timeline.append((seq, profit))

    def events_per_second(self) -> float:
        elapsed = time.perf_counter() - self._started
        events = self.counters.get("events_total", 0)
        return events / elapsed if elapsed > 0 else 0.0

    def deterministic_counters(self) -> Dict[str, int]:
        """The snapshot-carried subset: every counter (all are logical)."""
        return dict(sorted(self.counters.items()))

    def seed_counters(self, counters: Dict[str, int]) -> None:
        """Restore counters from a snapshot (replaces current values)."""
        self.counters = dict(counters)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": self.deterministic_counters(),
            "queue_depth": self.queue_depth,
            "events_per_second": self.events_per_second(),
            "repair_latency": self.repair_latency.to_dict(),
            "profit_timeline_len": len(self.profit_timeline),
            "last_profit": self.profit_timeline[-1][1] if self.profit_timeline else None,
        }
