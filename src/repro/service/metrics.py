"""Observability for the online allocation service.

The registry separates two kinds of signals:

* **deterministic counters** (events per type, admits accepted/queued,
  re-optimizations triggered/swapped, ...) — these are part of the
  service's logical state and are carried through snapshots, so a
  restored service reports the same totals as one that never died;
* **wall-clock measurements** (repair latency histogram, events/sec) —
  these describe the *process*, not the allocation, and are deliberately
  excluded from snapshots so replay determinism is byte-exact.

The profit timeline records ``(seq, profit)`` after every event; it is
deterministic but unbounded, so it also stays out of snapshots (replay
regenerates it exactly).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple


class LatencyHistogram:
    """Latency samples with nearest-rank quantiles (p50/p90/p99)."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile; 0.0 on an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        rank = min(len(self._sorted) - 1, max(0, round(q * len(self._sorted)) - 1))
        return self._sorted[rank]

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_seconds": self.mean(),
            "p50_seconds": self.quantile(0.50),
            "p90_seconds": self.quantile(0.90),
            "p99_seconds": self.quantile(0.99),
            "max_seconds": max(self._samples) if self._samples else 0.0,
        }


class MetricsRegistry:
    """Counters + repair-latency histogram + profit timeline + gauges."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.repair_latency = LatencyHistogram()
        self.profit_timeline: List[Tuple[int, float]] = []
        self.queue_depth = 0
        self._started = time.perf_counter()

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def record_event(self, seq: int, profit: float, repair_seconds: float) -> None:
        self.incr("events_total")
        self.repair_latency.record(repair_seconds)
        self.profit_timeline.append((seq, profit))

    def events_per_second(self) -> float:
        elapsed = time.perf_counter() - self._started
        events = self.counters.get("events_total", 0)
        return events / elapsed if elapsed > 0 else 0.0

    def deterministic_counters(self) -> Dict[str, int]:
        """The snapshot-carried subset: every counter (all are logical)."""
        return dict(sorted(self.counters.items()))

    def seed_counters(self, counters: Dict[str, int]) -> None:
        """Restore counters from a snapshot (replaces current values)."""
        self.counters = dict(counters)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": self.deterministic_counters(),
            "queue_depth": self.queue_depth,
            "events_per_second": self.events_per_second(),
            "repair_latency": self.repair_latency.to_dict(),
            "profit_timeline_len": len(self.profit_timeline),
            "last_profit": self.profit_timeline[-1][1] if self.profit_timeline else None,
        }
