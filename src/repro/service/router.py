"""Sharded async service tier: N engines behind a backpressured router.

One :class:`~repro.service.engine.AllocationService` tops out at a few
hundred events/sec — every event repairs against the whole datacenter's
state.  The router turns the service into a *tier*: the fleet's servers
are dealt round-robin into ``num_shards`` disjoint cluster slices
(:func:`repro.core.sharded.deal_servers` — the same dealing the batch
hierarchy uses, so every shard owns ~1/S of every cluster's capacity),
and each slice is run by its own independent engine.  Clients route to
shards by stable id hash, server events by slice ownership, so every
event has exactly one home and shard engines never share state.

**Ingestion.**  An asyncio event router fronts the engines with one
bounded queue per shard.  Consumers drain their queue in batches of
``batch_size`` events between repair commits and yield between batches,
so ingestion interleaves with repair instead of starving behind it.
Producers choose their coupling:

* :meth:`ServiceRouter.submit` (closed loop) — **backpressure**: when
  the shard's queue is at ``queue_budget`` the caller awaits until the
  consumer frees a slot; nothing is ever dropped;
* :meth:`ServiceRouter.offer` (open loop) — **load shedding**: arrivals
  cannot be paused, so when a queue is at budget the *lowest
  marginal-profit admit* loses its slot (Mazzucco-style admission under
  overload: what you refuse is the profit lever).  Departures, rate
  updates and server events are never shed — dropping them would
  desynchronize the router from reality — so the queue may transiently
  exceed its budget when it holds only unsheddable work.

Shedding ranks admits by marginal profit: with an
:class:`~repro.service.admission.OpportunityCost` policy on an
in-process engine the rank is the *live* eq.-(16) estimate from the
shard's cached marginal curves; otherwise it falls back to
:func:`admit_priority`, a static proxy (best-case revenue rate minus
the utilization demand priced at the fleet's mean ``P1``).  Client id
is the deterministic tie-break; every decision is logged as a
:class:`ShedRecord` carrying the best retained candidate so tests can
assert the policy exactly.

**Failover.**  :meth:`ServiceRouter.failover` ships a shard's state
through the versioned snapshot codec (the same document the journal
recovery path consumes), restores it into a standby engine, asserts the
standby's snapshot hash is byte-identical to the live engine's, and
atomically swaps it in — the standby continues bit-identically, queued
events and all.

**Determinism.**  Each engine remains a deterministic function of its
event substream; with per-shard journals armed, replaying shard ``i``'s
journal into a fresh engine over the same slice reproduces the live
engine's snapshot hash (:meth:`ServiceRouter.verify_shard_replay` — the
sharded replay-determinism CI gate).  Router-level decisions (routing,
shedding) depend only on event content and queue occupancy, never on
the wall clock, so a repeated run over the same burst stream sheds the
same admits and reaches the same per-shard hashes.

**Scaling out.**  ``mode="async"`` (the default) runs every engine in
the host process — fully deterministic, but repair work serializes on
one core.  ``mode="process"`` forks one long-lived engine process per
shard: the parent keeps routing, queueing and shedding; workers own
their engine and journal and apply shipped batches with at most one
batch in flight per shard.  Shard engines then repair *concurrently*,
so aggregate events/sec scales with shard count.  Shed decisions in
this mode depend on batch-acknowledgement timing and are not
reproducible run-to-run, but per-shard *replay* determinism is
untouched: whatever substream a worker journaled replays to its exact
snapshot hash.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from collections import deque

from repro.config import SolverConfig
from repro.core.sharded import ShardSpec, deal_servers, shard_subsystem
from repro.exceptions import ConfigurationError, ServiceError
from repro.io import dump_canonical
from repro.model.client import Client
from repro.model.datacenter import CloudSystem
from repro.service.admission import (
    AdmissionPolicy,
    AlwaysAdmitIfFeasible,
    PricingSchedule,
    fleet_cost_coefficient,
    static_admit_priority,
)
from repro.service.engine import AllocationService, ServicePolicy
from repro.service.events import (
    ClientAdmit,
    ClientDepart,
    RateUpdate,
    ServerFail,
    ServerRecover,
    ServiceEvent,
)
from repro.service.journal import EventJournal
from repro.service.metrics import LatencyHistogram, merged_quantiles


@dataclass(frozen=True)
class RouterPolicy:
    """Shape of the service tier.

    ``num_shards`` — independent engines (clamped to the server count);
    ``queue_budget`` — per-shard queue depth at which backpressure (closed
    loop) or shedding (open loop) engages; ``batch_size`` — events a
    consumer applies per drain slice before yielding to ingestion;
    ``pending_budget`` — optional open-loop admission gate: when a
    shard's total *pending exposure* (unplaced admits on the engine,
    plus admits still queued or in flight toward it) reaches this many
    clients, further admits are shed at the door instead of piling onto
    the engine's pending queue (every capacity-freeing event retries
    that whole queue, so letting it grow without bound turns overload
    into quadratic work).  ``None`` (the default) disables the gate;
    closed loop ignores it.

    ``admit_cost_coefficient`` — price per unit of utilization demand
    used by the static shed proxy (see :func:`admit_priority`).
    ``None`` (the default) derives it from the fleet's mean marginal
    power price ``P1``.  ``legacy_admit_priority`` restores the pre-fix
    unpriced proxy (revenue minus raw demand) for byte-for-byte replay
    of old shed decisions.
    """

    num_shards: int = 4
    queue_budget: int = 64
    batch_size: int = 16
    pending_budget: Optional[int] = None
    admit_cost_coefficient: Optional[float] = None
    legacy_admit_priority: bool = False

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.queue_budget < 1:
            raise ConfigurationError(
                f"queue_budget must be >= 1, got {self.queue_budget}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.pending_budget is not None and self.pending_budget < 1:
            raise ConfigurationError(
                f"pending_budget must be >= 1, got {self.pending_budget}"
            )
        if self.admit_cost_coefficient is not None:
            if not self.admit_cost_coefficient >= 0.0:
                raise ConfigurationError(
                    "admit_cost_coefficient must be >= 0, got "
                    f"{self.admit_cost_coefficient}"
                )
            if self.legacy_admit_priority:
                raise ConfigurationError(
                    "admit_cost_coefficient conflicts with "
                    "legacy_admit_priority (the legacy proxy is unpriced)"
                )


def admit_priority(
    client: Client, cost_coefficient: Optional[float] = None
) -> float:
    """Static marginal-profit proxy used to rank admits for shedding.

    Best-case revenue rate (the SLA utility at zero response time times
    the agreed rate) minus a cost estimate: the client's utilization
    demand (predicted rate times total per-request service demand)
    priced at ``cost_coefficient`` dollars per unit of utilization —
    normally the fleet's mean marginal power price ``P1``, which puts
    both terms in $/time.  ``None`` reproduces the legacy unpriced
    proxy (raw demand subtracted from a revenue rate), kept reachable
    so old shed decisions replay exactly.  A cheap stand-in for the
    eq.-(16) marginal curve that needs no engine state, so the router
    can rank a queue without touching a shard.
    """
    return static_admit_priority(client, cost_coefficient)


def _shed_key(priority: float, client_id: int) -> Tuple[float, int]:
    """Total order for shedding: lowest priority first, id as tie-break."""
    return (priority, client_id)


@dataclass(frozen=True)
class ShedRecord:
    """One shedding decision, with the best admit it chose to keep."""

    shard_id: int
    client_id: int
    priority: float
    #: Lowest-priority admit retained in the queue at decision time
    #: (``None`` when the shed emptied the queue of admits).
    retained_client_id: Optional[int]
    retained_priority: Optional[float]


class _ShardLane:
    """One shard's ingestion lane: bounded queue + engine + counters.

    In async mode ``engine`` is the live in-process engine; in process
    mode it is ``None`` and the engine lives behind ``conn`` in a forked
    worker (``worker_pending`` / ``summary`` mirror its acked state).
    """

    def __init__(
        self,
        shard_id: int,
        engine: Optional[AllocationService],
        journal_path: Optional[str],
    ) -> None:
        self.shard_id = shard_id
        self.engine = engine
        self.journal_path = journal_path
        self.queue: Deque[ServiceEvent] = deque()
        #: queued admits by client id -> (priority, event); the shed
        #: policy's O(1) membership + O(budget) min scan.
        self.admits: Dict[int, Tuple[float, ClientAdmit]] = {}
        self.wakeup = asyncio.Event()
        self.space = asyncio.Event()
        self.offered = 0
        self.applied = 0
        self.shed = 0
        self.rejected = 0
        self.failovers = 0
        self.peak_depth = 0
        # process-mode plumbing
        self.proc: Optional[multiprocessing.Process] = None
        self.conn: Optional[Connection] = None
        self.inflight = 0
        #: admits inside the in-flight batch: shipped to the worker but
        #: not yet reflected in ``worker_pending`` (ack pending).
        self.inflight_admits = 0
        self.worker_pending = 0
        self.peak_worker_pending = 0
        self.summary: Optional[Dict[str, Any]] = None

    def push(self, event: ServiceEvent, priority: Optional[float] = None) -> None:
        self.queue.append(event)
        if priority is not None and isinstance(event, ClientAdmit):
            self.admits[event.client.client_id] = (priority, event)
        self.peak_depth = max(self.peak_depth, len(self.queue))
        self.wakeup.set()

    def pop_batch(self, limit: int) -> List[ServiceEvent]:
        batch: List[ServiceEvent] = []
        for _ in range(min(limit, len(self.queue))):
            event = self.queue.popleft()
            if isinstance(event, ClientAdmit):
                self.admits.pop(event.client.client_id, None)
            batch.append(event)
        return batch

    def lowest_admit(self) -> Tuple[int, float]:
        """The queued admit the shed policy would drop first."""
        cid = min(self.admits, key=lambda c: _shed_key(self.admits[c][0], c))
        return cid, self.admits[cid][0]

    def drop_admit(self, client_id: int) -> None:
        _, event = self.admits.pop(client_id)
        self.queue.remove(event)


def _shard_worker_main(
    conn: Connection,
    sub_system: CloudSystem,
    config: Optional[SolverConfig],
    policy: Optional[ServicePolicy],
    journal_path: Optional[str],
    admission: Optional[AdmissionPolicy] = None,
    pricing: Optional[PricingSchedule] = None,
) -> None:
    """Engine process: apply shipped batches until the ``None`` sentinel.

    Each batch is acked with ``(applied, rejected, engine_pending)``;
    the sentinel is answered with the shard's final summary (profit,
    snapshot hash, shipped histogram state) before the process exits.
    """
    journal = EventJournal(journal_path) if journal_path is not None else None
    engine = AllocationService(
        sub_system,
        config=config,
        policy=policy,
        journal=journal,
        admission=admission,
        pricing=pricing,
    )
    try:
        while True:
            batch = conn.recv()
            if batch is None:
                break
            applied = 0
            rejected = 0
            for event in batch:
                try:
                    engine.apply(event)
                    applied += 1
                except ServiceError:
                    rejected += 1
            conn.send((applied, rejected, len(engine.pending)))
        conn.send(
            {
                "profit": engine.profit(),
                "snapshot_hash": engine.snapshot_hash(),
                "pending_clients": len(engine.pending),
                "repair_latency": engine.metrics.repair_latency.to_dict(),
                "histogram_state": engine.metrics.repair_latency.state(),
                "counters": engine.metrics.deterministic_counters(),
            }
        )
    finally:
        if journal is not None:
            journal.close()
        conn.close()


class ServiceRouter:
    """The sharded service tier; see module docstring.

    ``system`` provides the fleet (its clusters are dealt into slices);
    any clients it carries are ignored — clients arrive as events.  Pass
    ``journal_dir`` to journal each shard's accepted substream to
    ``shard-<i>.jsonl`` (required by :meth:`verify_shard_replay`).
    ``mode`` is ``"async"`` (in-process, deterministic) or ``"process"``
    (one forked engine per shard — see module docstring).
    """

    def __init__(
        self,
        system: CloudSystem,
        router: Optional[RouterPolicy] = None,
        config: Optional[SolverConfig] = None,
        policy: Optional[ServicePolicy] = None,
        journal_dir: Optional[str] = None,
        mode: str = "async",
        admission: Optional[AdmissionPolicy] = None,
        pricing: Optional[PricingSchedule] = None,
    ) -> None:
        if mode not in ("async", "process"):
            raise ConfigurationError(
                f"mode must be 'async' or 'process', got {mode!r}"
            )
        self.policy = router or RouterPolicy()
        self.mode = mode
        self._config = config
        self._engine_policy = policy
        self.admission = admission if admission is not None else AlwaysAdmitIfFeasible()
        self.pricing = pricing
        if self.policy.legacy_admit_priority:
            self.admit_cost_coefficient: Optional[float] = None
        elif self.policy.admit_cost_coefficient is not None:
            self.admit_cost_coefficient = self.policy.admit_cost_coefficient
        else:
            self.admit_cost_coefficient = fleet_cost_coefficient(system)
        hands = deal_servers(system, self.policy.num_shards)
        self.num_shards = len(hands)
        self.subsystems: List[CloudSystem] = []
        self._lanes: List[_ShardLane] = []
        self._server_shard: Dict[int, int] = {}
        self.shed_log: List[ShedRecord] = []
        self._closing = False
        for shard_id, server_ids in enumerate(hands):
            spec = ShardSpec(
                shard_id=shard_id, client_ids=(), server_ids=server_ids
            )
            sub_system = shard_subsystem(system, spec)
            self.subsystems.append(sub_system)
            journal_path = None
            if journal_dir is not None:
                journal_path = os.path.join(
                    journal_dir, f"shard-{shard_id}.jsonl"
                )
            engine = None
            if mode == "async":
                journal = (
                    EventJournal(journal_path)
                    if journal_path is not None
                    else None
                )
                engine = AllocationService(
                    sub_system,
                    config=config,
                    policy=policy,
                    journal=journal,
                    admission=self.admission,
                    pricing=self.pricing,
                )
            self._lanes.append(_ShardLane(shard_id, engine, journal_path))
            for sid in server_ids:
                self._server_shard[sid] = shard_id

    # -- routing -------------------------------------------------------------

    def shard_of_client(self, client_id: int) -> int:
        """Stable client->shard hash; a client's whole life stays on one shard."""
        return client_id % self.num_shards

    def shard_of(self, event: ServiceEvent) -> int:
        if isinstance(event, ClientAdmit):
            return self.shard_of_client(event.client.client_id)
        if isinstance(event, (ClientDepart, RateUpdate)):
            return self.shard_of_client(event.client_id)
        if isinstance(event, (ServerFail, ServerRecover)):
            try:
                return self._server_shard[event.server_id]
            except KeyError:
                raise ServiceError(
                    f"unknown server {event.server_id}"
                ) from None
        raise ServiceError(f"not a service event: {type(event).__name__}")

    @property
    def engines(self) -> List[AllocationService]:
        if self.mode != "async":
            raise ServiceError("engines live in worker processes in process mode")
        return [lane.engine for lane in self._lanes]

    def _engine_pending(self, lane: _ShardLane) -> int:
        """Unplaced admits on the shard's engine (acked mirror in
        process mode — stale by at most one in-flight batch)."""
        if lane.engine is not None:
            return len(lane.engine.pending)
        return lane.worker_pending

    def _pending_exposure(self, lane: _ShardLane) -> int:
        """Worst-case unplaced admits the shard could reach: admits the
        engine has already parked, plus admits queued on the lane, plus
        admits inside the in-flight batch.  The acked engine count alone
        lags by up to ``batch_size`` events in process mode, so gating
        on it lets admissions overshoot ``pending_budget``; gating on
        the full exposure keeps the budget a hard ceiling in both
        modes."""
        return self._engine_pending(lane) + len(lane.admits) + lane.inflight_admits

    def _admit_priority(self, lane: _ShardLane, client: Client) -> float:
        """Shed-ranking priority for one admit: the live eq.-(16)
        marginal-profit estimate when the admission policy provides one
        and the shard's engine is in-process, else the static priced
        proxy.  Infeasible-now estimates (``-inf``) fall back to the
        static proxy so a client the engine would queue-and-retry is
        ranked by its prospects, not shed unconditionally."""
        if self.admission.uses_live_estimate and lane.engine is not None:
            estimate = self.admission.priority(lane.engine, client)
            if estimate == estimate and abs(estimate) != float("inf"):
                return estimate
        return static_admit_priority(client, self.admit_cost_coefficient)

    # -- ingestion -----------------------------------------------------------

    def offer(self, event: ServiceEvent) -> bool:
        """Open-loop enqueue: shed rather than block; returns False iff the
        offered event itself was shed (a displaced *queued* admit also
        counts against the lane's ``shed`` counter but not this return)."""
        lane = self._lanes[self.shard_of(event)]
        lane.offered += 1
        over_budget = len(lane.queue) >= self.policy.queue_budget
        if isinstance(event, ClientAdmit):
            priority = self._admit_priority(lane, event.client)
            if (
                self.policy.pending_budget is not None
                and self._pending_exposure(lane) >= self.policy.pending_budget
            ):
                # The engine is saturated past its retry budget: this
                # admit could only join an already-hopeless queue.
                self._record_shed(lane, event.client.client_id, priority)
                return False
            if over_budget:
                if not lane.admits:
                    # Only unsheddable work queued: the newcomer is the
                    # sole candidate and loses.
                    self._record_shed(lane, event.client.client_id, priority)
                    return False
                victim_id, victim_priority = lane.lowest_admit()
                if _shed_key(priority, event.client.client_id) <= _shed_key(
                    victim_priority, victim_id
                ):
                    self._record_shed(lane, event.client.client_id, priority)
                    return False
                lane.drop_admit(victim_id)
                self._record_shed(lane, victim_id, victim_priority)
            lane.push(event, priority)
            return True
        # Departures / rate updates / server events are never shed; free a
        # slot by evicting the worst queued admit when over budget.
        if over_budget and lane.admits:
            victim_id, victim_priority = lane.lowest_admit()
            lane.drop_admit(victim_id)
            self._record_shed(lane, victim_id, victim_priority)
        lane.push(event)
        return True

    def _record_shed(
        self, lane: _ShardLane, client_id: int, priority: float
    ) -> None:
        lane.shed += 1
        retained_id: Optional[int] = None
        retained_priority: Optional[float] = None
        if lane.admits:
            retained_id, retained_priority = lane.lowest_admit()
        self.shed_log.append(
            ShedRecord(
                shard_id=lane.shard_id,
                client_id=client_id,
                priority=priority,
                retained_client_id=retained_id,
                retained_priority=retained_priority,
            )
        )

    async def submit(self, event: ServiceEvent) -> None:
        """Closed-loop enqueue: await a free slot instead of shedding."""
        lane = self._lanes[self.shard_of(event)]
        while len(lane.queue) >= self.policy.queue_budget:
            lane.space.clear()
            if len(lane.queue) < self.policy.queue_budget:
                break
            await lane.space.wait()
        lane.offered += 1
        if isinstance(event, ClientAdmit):
            lane.push(event, self._admit_priority(lane, event.client))
        else:
            lane.push(event)

    # -- consumers -----------------------------------------------------------

    async def _drain_lane(self, lane: _ShardLane) -> None:
        while True:
            if not lane.queue:
                if self._closing:
                    return
                lane.wakeup.clear()
                if lane.queue or self._closing:
                    continue
                await lane.wakeup.wait()
                continue
            batch = lane.pop_batch(self.policy.batch_size)
            for event in batch:
                try:
                    lane.engine.apply(event)
                    lane.applied += 1
                except ServiceError:
                    # An event invalidated upstream — typically the
                    # departure or rate update of a client whose admit
                    # was shed.  The engine rejects it before journaling,
                    # so the shard's replay stream stays clean.
                    lane.rejected += 1
            lane.space.set()
            # One batch per slice: yield so ingestion and the other
            # lanes interleave between repair commits.
            await asyncio.sleep(0)

    async def _run_to_completion(self) -> None:
        while any(lane.queue for lane in self._lanes):
            await asyncio.sleep(0)
        self._closing = True
        for lane in self._lanes:
            lane.wakeup.set()

    async def run_open_loop_async(
        self, bursts: Sequence[Any]
    ) -> Dict[str, Any]:
        """Feed timestamped bursts open-loop (see :mod:`repro.service.loadgen`);
        drains every queue, then returns :meth:`report` with wall time."""
        started = time.perf_counter()
        consumers = [
            asyncio.create_task(self._drain_lane(lane)) for lane in self._lanes
        ]
        try:
            for burst in bursts:
                for event in burst.events:
                    self.offer(event)
                # The burst boundary is the ingestion tier's scheduling
                # point: consumers run between bursts, as they would
                # between arrival instants.
                await asyncio.sleep(0)
            await self._run_to_completion()
            await asyncio.gather(*consumers)
        finally:
            self._closing = False
            for task in consumers:
                task.cancel()
        return self.report(elapsed=time.perf_counter() - started)

    def run_open_loop(self, bursts: Sequence[Any]) -> Dict[str, Any]:
        if self.mode == "process":
            return self._run_open_loop_process(bursts)
        return asyncio.run(self.run_open_loop_async(bursts))

    # -- process mode ---------------------------------------------------------

    def _start_workers(self) -> None:
        ctx = multiprocessing.get_context("fork")
        for lane in self._lanes:
            parent_conn, child_conn = ctx.Pipe()
            lane.conn = parent_conn
            lane.proc = ctx.Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    self.subsystems[lane.shard_id],
                    self._config,
                    self._engine_policy,
                    lane.journal_path,
                    self.admission,
                    self.pricing,
                ),
                daemon=True,
            )
            lane.proc.start()
            child_conn.close()

    def _pump_lane(self, lane: _ShardLane) -> None:
        """Ship the next batch if the lane is idle and has queued work.

        One batch in flight per shard: the worker is never asked to
        buffer, so parent-side queue occupancy (the shed signal) stays
        an honest measure of how far behind the shard is.
        """
        if lane.inflight == 0 and lane.queue:
            batch = lane.pop_batch(self.policy.batch_size)
            lane.conn.send(batch)
            lane.inflight = len(batch)
            # Shipped admits stay counted against pending_budget until
            # the ack folds them into worker_pending (satellite fix for
            # the up-to-batch_size overshoot).
            lane.inflight_admits = sum(
                1 for event in batch if isinstance(event, ClientAdmit)
            )

    def _collect_acks(self, block: bool) -> None:
        conns = [lane.conn for lane in self._lanes if lane.inflight]
        if not conns:
            return
        for conn in connection_wait(conns, timeout=0.05 if block else 0):
            lane = next(l for l in self._lanes if l.conn is conn)
            applied, rejected, pending = conn.recv()
            lane.applied += applied
            lane.rejected += rejected
            lane.worker_pending = pending
            lane.peak_worker_pending = max(lane.peak_worker_pending, pending)
            lane.inflight = 0
            lane.inflight_admits = 0

    def _run_open_loop_process(self, bursts: Sequence[Any]) -> Dict[str, Any]:
        started = time.perf_counter()
        self._start_workers()
        try:
            for burst in bursts:
                for event in burst.events:
                    self.offer(event)
                self._collect_acks(block=False)
                for lane in self._lanes:
                    self._pump_lane(lane)
            while any(lane.queue or lane.inflight for lane in self._lanes):
                self._collect_acks(block=True)
                for lane in self._lanes:
                    self._pump_lane(lane)
            elapsed = time.perf_counter() - started
            for lane in self._lanes:
                lane.conn.send(None)
            for lane in self._lanes:
                lane.summary = lane.conn.recv()
                lane.worker_pending = lane.summary["pending_clients"]
                lane.peak_worker_pending = max(
                    lane.peak_worker_pending, lane.worker_pending
                )
        finally:
            self._teardown_workers()
        return self.report(elapsed=elapsed)

    def _teardown_workers(self) -> None:
        for lane in self._lanes:
            if lane.proc is not None:
                lane.proc.join(timeout=10)
                if lane.proc.is_alive():
                    lane.proc.terminate()
                lane.proc = None
            if lane.conn is not None:
                lane.conn.close()
                lane.conn = None
            lane.inflight = 0
            lane.inflight_admits = 0

    async def run_closed_loop_async(
        self, events: Sequence[ServiceEvent]
    ) -> Dict[str, Any]:
        """Feed a flat stream with backpressure; nothing is ever shed."""
        started = time.perf_counter()
        consumers = [
            asyncio.create_task(self._drain_lane(lane)) for lane in self._lanes
        ]
        try:
            for event in events:
                await self.submit(event)
            await self._run_to_completion()
            await asyncio.gather(*consumers)
        finally:
            self._closing = False
            for task in consumers:
                task.cancel()
        return self.report(elapsed=time.perf_counter() - started)

    def run_closed_loop(self, events: Sequence[ServiceEvent]) -> Dict[str, Any]:
        if self.mode == "process":
            return self._run_closed_loop_process(events)
        return asyncio.run(self.run_closed_loop_async(events))

    def _run_closed_loop_process(
        self, events: Sequence[ServiceEvent]
    ) -> Dict[str, Any]:
        """Process-mode closed loop: block on a full lane, never shed.

        This is the tier's *capacity* measurement — every event is
        applied (or rejected by validation), and the four engines repair
        concurrently.
        """
        started = time.perf_counter()
        self._start_workers()
        try:
            for event in events:
                lane = self._lanes[self.shard_of(event)]
                while len(lane.queue) >= self.policy.queue_budget:
                    self._collect_acks(block=True)
                    for other in self._lanes:
                        self._pump_lane(other)
                lane.offered += 1
                if isinstance(event, ClientAdmit):
                    lane.push(event, self._admit_priority(lane, event.client))
                else:
                    lane.push(event)
                self._collect_acks(block=False)
                for other in self._lanes:
                    self._pump_lane(other)
            while any(lane.queue or lane.inflight for lane in self._lanes):
                self._collect_acks(block=True)
                for lane in self._lanes:
                    self._pump_lane(lane)
            elapsed = time.perf_counter() - started
            for lane in self._lanes:
                lane.conn.send(None)
            for lane in self._lanes:
                lane.summary = lane.conn.recv()
                lane.worker_pending = lane.summary["pending_clients"]
                lane.peak_worker_pending = max(
                    lane.peak_worker_pending, lane.worker_pending
                )
        finally:
            self._teardown_workers()
        return self.report(elapsed=elapsed)

    # -- failover ------------------------------------------------------------

    def ship_snapshot(self, shard_id: int) -> Dict[str, Any]:
        """The shard's state as a wire document (canonical JSON round-trip)."""
        lane = self._lanes[shard_id]
        if lane.engine is None:
            raise ServiceError(
                "snapshot shipping and failover need mode='async' "
                "(process-mode engines live in workers)"
            )
        doc = lane.engine.snapshot()
        return json.loads(dump_canonical(doc))

    def failover(self, shard_id: int) -> str:
        """Warm-failover shard ``shard_id``: snapshot -> standby -> swap.

        The standby restores from the shipped document and must hash
        byte-identically to the live engine before it takes over (raises
        :class:`ServiceError` otherwise).  Queued events survive — they
        apply to the standby exactly as they would have to the original.
        Returns the asserted snapshot hash.
        """
        lane = self._lanes[shard_id]
        document = self.ship_snapshot(shard_id)
        expected = lane.engine.snapshot_hash()
        standby = AllocationService.restore(
            document,
            config=self._config,
            policy=self._engine_policy,
            journal=lane.engine.journal,
            admission=self.admission,
            pricing=self.pricing,
        )
        actual = standby.snapshot_hash()
        if actual != expected:
            raise ServiceError(
                f"shard {shard_id} failover diverged: live snapshot "
                f"{expected[:12]}... but standby restored to {actual[:12]}..."
            )
        lane.engine = standby
        lane.failovers += 1
        return expected

    # -- determinism ---------------------------------------------------------

    def verify_shard_replay(self, shard_id: int) -> Tuple[str, str]:
        """(live hash, journal-replay hash) for one shard; equal iff the
        shard's applied substream replays byte-deterministically."""
        lane = self._lanes[shard_id]
        if lane.journal_path is None:
            raise ServiceError(
                "shard replay verification requires journal_dir"
            )
        if lane.engine is not None:
            live = lane.engine.snapshot_hash()
        elif lane.summary is not None:
            live = lane.summary["snapshot_hash"]
        else:
            raise ServiceError(
                f"shard {shard_id} has no live hash yet: run the router "
                "(process mode) before verifying replay"
            )
        fresh = AllocationService(
            self.subsystems[shard_id],
            config=self._config,
            policy=self._engine_policy,
            admission=self.admission,
            pricing=self.pricing,
        )
        fresh.apply_many(
            [event for _, event in EventJournal.read(lane.journal_path)]
        )
        return live, fresh.snapshot_hash()

    def close(self) -> None:
        """Close every shard journal (idempotent; workers close their own)."""
        for lane in self._lanes:
            if lane.engine is not None and lane.engine.journal is not None:
                lane.engine.journal.close()

    def __enter__(self) -> "ServiceRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reporting -----------------------------------------------------------

    def report(self, elapsed: Optional[float] = None) -> Dict[str, Any]:
        shards = []
        histograms: List[LatencyHistogram] = []
        for lane in self._lanes:
            cell = {
                "shard_id": lane.shard_id,
                "offered": lane.offered,
                "applied": lane.applied,
                "shed": lane.shed,
                "rejected": lane.rejected,
                "failovers": lane.failovers,
                "queue_depth": len(lane.queue),
                "peak_queue_depth": lane.peak_depth,
            }
            if lane.engine is not None:
                cell["pending_clients"] = len(lane.engine.pending)
                cell["profit"] = lane.engine.profit()
                cell["snapshot_hash"] = lane.engine.snapshot_hash()
                cell["repair_latency"] = lane.engine.metrics.repair_latency.to_dict()
                histograms.append(lane.engine.metrics.repair_latency)
            elif lane.summary is not None:
                state = lane.summary["histogram_state"]
                cell["pending_clients"] = lane.summary["pending_clients"]
                cell["peak_pending_clients"] = lane.peak_worker_pending
                cell["profit"] = lane.summary["profit"]
                cell["snapshot_hash"] = lane.summary["snapshot_hash"]
                cell["repair_latency"] = lane.summary["repair_latency"]
                histograms.append(
                    LatencyHistogram.from_state(
                        state["samples"],
                        state["count"],
                        state["sum_seconds"],
                        state["max_seconds"],
                        capacity=state["capacity"],
                    )
                )
            else:
                cell["pending_clients"] = 0
                cell["profit"] = 0.0
            shards.append(cell)
        applied = sum(s["applied"] for s in shards)
        report: Dict[str, Any] = {
            "mode": self.mode,
            "admission_policy": self.admission.name,
            "dynamic_pricing": self.pricing is not None,
            "num_shards": self.num_shards,
            "queue_budget": self.policy.queue_budget,
            "batch_size": self.policy.batch_size,
            "offered_total": sum(s["offered"] for s in shards),
            "applied_total": applied,
            "shed_total": sum(s["shed"] for s in shards),
            "rejected_total": sum(s["rejected"] for s in shards),
            # Shards are disjoint, so the tier's profit is the plain sum.
            "aggregate_profit": sum(s["profit"] for s in shards),
            "repair_latency": merged_quantiles(histograms),
            "shards": shards,
        }
        if elapsed is not None:
            report["elapsed_seconds"] = elapsed
            report["events_per_second"] = applied / elapsed if elapsed > 0 else 0.0
        return report
