"""Append-only event journal + crash recovery for the allocation service.

The journal is a text file of one canonical-JSON line per event::

    {"event":{...versioned event doc...},"seq":12}

Lines are flushed on every append, so a killed process loses at most the
event it was mid-way through applying.  Recovery composes a snapshot with
the journal's tail: :func:`recover` restores the snapshot, then replays
every journaled event with ``seq`` greater than the snapshot's, checking
sequence continuity.  Because the engine is deterministic and
canonicalizes at every event boundary, the recovered service is
bit-identical to one that never died.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterator, List, Optional, Tuple

from repro.config import SolverConfig
from repro.exceptions import ServiceError
from repro.io import SerializationError, dump_canonical
from repro.service.admission import AdmissionPolicy, PricingSchedule
from repro.service.engine import AllocationService, ServicePolicy
from repro.service.events import ServiceEvent, event_from_dict, event_to_dict


class EventJournal:
    """Append-only journal; one canonical JSON line per accepted event."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = None

    def append(self, seq: int, event: ServiceEvent) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._handle.write(
            dump_canonical({"seq": seq, "event": event_to_dict(event)}) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def read(path: str) -> Iterator[Tuple[int, ServiceEvent]]:
        """Yield ``(seq, event)`` pairs; raises :class:`ServiceError` on a
        corrupt line (truncated tail lines are corrupt too — the journal
        flushes per event, so only deliberate tampering produces them)."""
        with open(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    seq = record["seq"]
                    event = event_from_dict(record["event"])
                except (ValueError, KeyError, TypeError, SerializationError) as exc:
                    raise ServiceError(
                        f"corrupt journal line {line_number} in {path}: {exc}"
                    ) from exc
                if not isinstance(seq, int) or seq < 1:
                    raise ServiceError(
                        f"corrupt journal line {line_number} in {path}: "
                        f"bad seq {seq!r}"
                    )
                yield seq, event


def recover(
    snapshot_doc: dict,
    journal_path: Optional[str] = None,
    config: Optional[SolverConfig] = None,
    policy: Optional[ServicePolicy] = None,
    admission: Optional[AdmissionPolicy] = None,
    pricing: Optional[PricingSchedule] = None,
) -> AllocationService:
    """Snapshot + journal tail -> the service as of the last journaled event.

    Events at or before the snapshot's ``seq`` are skipped; the remainder
    must be contiguous from ``seq + 1`` (a gap means snapshot and journal
    belong to different runs, which raises :class:`ServiceError`).  The
    replayed events are *not* re-journaled; pass the recovered service a
    fresh :class:`EventJournal` afterwards if it should keep logging.
    Pass the run's ``admission`` / ``pricing`` so replayed admits are
    gated and priced exactly as they were live.
    """
    service = AllocationService.restore(
        snapshot_doc,
        config=config,
        policy=policy,
        admission=admission,
        pricing=pricing,
    )
    if journal_path is None or not os.path.exists(journal_path):
        return service
    replayed: List[ServiceEvent] = []
    for seq, event in EventJournal.read(journal_path):
        if seq <= service.seq + len(replayed):
            continue
        if seq != service.seq + len(replayed) + 1:
            raise ServiceError(
                f"journal {journal_path} jumps to seq {seq} but the "
                f"restored service expects {service.seq + len(replayed) + 1}; "
                "snapshot and journal are from different runs"
            )
        replayed.append(event)
    service.apply_many(replayed)
    return service
