"""Online allocation service: event-driven incremental repair.

The batch layers (:mod:`repro.core`, :mod:`repro.sim`) re-solve the whole
datacenter per decision epoch; this package keeps a *live* allocation
current against a stream of typed events, repairing locally and falling
back to the batch solver only when accumulated rate drift says the
incremental state has degraded.

Module map:

* :mod:`repro.service.events` — the five event types + JSON codecs;
* :mod:`repro.service.engine` — :class:`AllocationService`, the
  incremental decision engine with snapshot/restore;
* :mod:`repro.service.journal` — append-only event journal and
  snapshot+journal crash recovery;
* :mod:`repro.service.driver` — replay workload traces as event streams;
* :mod:`repro.service.metrics` — counters, repair-latency histogram,
  profit timeline.
"""

from repro.service.driver import (
    TraceDriverConfig,
    flatten_events,
    generate_epoch_events,
    run_service_trace,
)
from repro.service.engine import (
    AllocationService,
    EventOutcome,
    ServicePolicy,
)
from repro.service.events import (
    ClientAdmit,
    ClientDepart,
    RateUpdate,
    ServerFail,
    ServerRecover,
    ServiceEvent,
    event_from_dict,
    event_to_dict,
)
from repro.service.journal import EventJournal, recover
from repro.service.metrics import LatencyHistogram, MetricsRegistry

__all__ = [
    "AllocationService",
    "ClientAdmit",
    "ClientDepart",
    "EventJournal",
    "EventOutcome",
    "LatencyHistogram",
    "MetricsRegistry",
    "RateUpdate",
    "ServerFail",
    "ServerRecover",
    "ServiceEvent",
    "ServicePolicy",
    "TraceDriverConfig",
    "event_from_dict",
    "event_to_dict",
    "flatten_events",
    "generate_epoch_events",
    "recover",
    "run_service_trace",
]
