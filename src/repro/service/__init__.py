"""Online allocation service: event-driven incremental repair.

The batch layers (:mod:`repro.core`, :mod:`repro.sim`) re-solve the whole
datacenter per decision epoch; this package keeps a *live* allocation
current against a stream of typed events, repairing locally and falling
back to the batch solver only when accumulated rate drift says the
incremental state has degraded.

Module map:

* :mod:`repro.service.events` — the five event types + JSON codecs;
* :mod:`repro.service.admission` — pluggable admission policies and
  load-indexed dynamic pricing (the profit levers under overload);
* :mod:`repro.service.engine` — :class:`AllocationService`, the
  incremental decision engine with snapshot/restore;
* :mod:`repro.service.journal` — append-only event journal and
  snapshot+journal crash recovery;
* :mod:`repro.service.driver` — replay workload traces as event streams;
* :mod:`repro.service.router` — :class:`ServiceRouter`, the sharded
  async tier (bounded queues, backpressure, load shedding, failover);
* :mod:`repro.service.loadgen` — open-loop Poisson burst generator;
* :mod:`repro.service.metrics` — counters, repair-latency histogram,
  profit timeline.
"""

from repro.service.admission import (
    AdmissionPolicy,
    AlwaysAdmitIfFeasible,
    OpportunityCost,
    PriceTier,
    PricingSchedule,
    RevenueThreshold,
    fleet_cost_coefficient,
    make_admission_policy,
    static_admit_priority,
)
from repro.service.driver import (
    TraceDriverConfig,
    flatten_events,
    generate_epoch_events,
    run_service_trace,
)
from repro.service.engine import (
    AllocationService,
    EventOutcome,
    ServicePolicy,
)
from repro.service.events import (
    ClientAdmit,
    ClientDepart,
    RateUpdate,
    ServerFail,
    ServerRecover,
    ServiceEvent,
    event_from_dict,
    event_to_dict,
)
from repro.service.journal import EventJournal, recover
from repro.service.loadgen import (
    Burst,
    LoadGenConfig,
    flatten_bursts,
    generate_load,
)
from repro.service.metrics import LatencyHistogram, MetricsRegistry, merged_quantiles
from repro.service.router import (
    RouterPolicy,
    ServiceRouter,
    ShedRecord,
    admit_priority,
)

__all__ = [
    "AdmissionPolicy",
    "AllocationService",
    "AlwaysAdmitIfFeasible",
    "Burst",
    "ClientAdmit",
    "ClientDepart",
    "EventJournal",
    "EventOutcome",
    "LatencyHistogram",
    "LoadGenConfig",
    "MetricsRegistry",
    "OpportunityCost",
    "PriceTier",
    "PricingSchedule",
    "RateUpdate",
    "RevenueThreshold",
    "RouterPolicy",
    "ServerFail",
    "ServerRecover",
    "ServiceEvent",
    "ServicePolicy",
    "ServiceRouter",
    "ShedRecord",
    "TraceDriverConfig",
    "admit_priority",
    "fleet_cost_coefficient",
    "make_admission_policy",
    "static_admit_priority",
    "event_from_dict",
    "event_to_dict",
    "flatten_bursts",
    "flatten_events",
    "generate_epoch_events",
    "generate_load",
    "merged_quantiles",
    "recover",
    "run_service_trace",
]
