"""The online allocation engine.

:class:`AllocationService` is a long-lived decision process over one
datacenter: it consumes :mod:`repro.service.events` one at a time,
maintains a live :class:`~repro.model.Allocation` plus a running profit
(via an always-attached :class:`~repro.core.delta.DeltaScorer`), and
repairs locally — in ``O(touched)`` per event — instead of re-running the
batch solver:

* **admit** — constructor placement (:func:`~repro.core.repair.place_client`)
  inside a transaction; rolled back and queued when no feasible placement
  exists;
* **depart** — release the client's shares, rebalance and try to power
  down the servers it touched, then retry the pending queue;
* **rate update** — swap the client spec, rebalance its servers; if the
  new rate broke stability, re-place the client from scratch (queueing it
  if that fails too), then check the drift trigger;
* **server fail** — forcibly drain the server (stay-feasible per client);
  clients that cannot be rehomed are queued;
* **server recover** — return the server to the eligible pool and retry
  the queue.

When accumulated rate drift (relative to the rates at the last
re-optimization) exceeds ``ServicePolicy.drift_threshold`` — or every
``oracle_period`` events — the engine runs the full batch solver on the
non-failed portion of the system and atomically swaps the result in
*only if* it beats the incrementally-repaired allocation.

**Replay determinism.**  The engine is a deterministic function of
(initial system, config, policy, event sequence): no wall clock enters
any decision, the solver draws from a fresh seeded RNG per solve, and —
crucially — every event ends with a *canonicalization boundary*
(:meth:`~repro.core.state.WorkingState.canonicalize` +
:meth:`~repro.core.delta.DeltaScorer.resync`) that normalizes all
history-dependent derived state (dict order, aggregate and Kahan sums).
A service restored from :meth:`snapshot` therefore continues
bit-identically to one that never died, which the replay-determinism CI
gate checks by hashing final snapshots.

Invariant between events: every client inside the system is fully served
(its traffic sums to 1 over live entries) and the state is feasible —
clients the engine cannot serve wait in :attr:`pending`, outside the
system, and earn nothing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Set

from repro.audit.hooks import audit_enabled, audit_point
from repro.audit.invariants import check_no_entries_on_servers
from repro.config import SolverConfig
from repro.core.allocator import ResourceAllocator
from repro.core.cache import maybe_attach_cache
from repro.core.delta import AGREEMENT_TOLERANCE, DeltaScorer
from repro.core.repair import (
    consolidate_servers,
    drain_server,
    place_client,
    rebalance_servers,
    reseat_client,
)
from repro.core.scoring import score
from repro.core.state import WorkingState
from repro.exceptions import ConfigurationError, ServiceError
from repro.io import (
    allocation_from_dict,
    allocation_to_dict,
    client_from_dict,
    client_to_dict,
    dump_canonical,
    require_format,
    system_from_dict,
    system_to_dict,
)
from repro.model.allocation import Allocation
from repro.model.client import Client
from repro.model.cluster import Cluster
from repro.model.datacenter import CloudSystem
from repro.service.admission import (
    AdmissionPolicy,
    AlwaysAdmitIfFeasible,
    PricingSchedule,
    fleet_cost_coefficient,
)
from repro.service.events import (
    ClientAdmit,
    ClientDepart,
    RateUpdate,
    ServerFail,
    ServerRecover,
    ServiceEvent,
    _EVENT_TAGS,
)
from repro.service.metrics import MetricsRegistry

SNAPSHOT_FORMAT = "repro.service-snapshot"
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class ServicePolicy:
    """Knobs governing when incremental repair gives way to a full re-solve.

    ``drift_threshold`` — relative accumulated rate drift (weighted L1
    against the rates at the last re-optimization) that triggers a
    re-solve; ``oracle_period`` — additionally re-solve every N events
    (0 disables); ``regression_tolerance`` — the batch candidate must
    beat the repaired allocation by more than this to be swapped in.
    """

    drift_threshold: float = 0.25
    oracle_period: int = 0
    regression_tolerance: float = 1e-6

    def __post_init__(self) -> None:
        if not self.drift_threshold > 0.0:
            raise ConfigurationError(
                f"drift_threshold must be > 0, got {self.drift_threshold}"
            )
        if self.oracle_period < 0:
            raise ConfigurationError(
                f"oracle_period must be >= 0, got {self.oracle_period}"
            )
        if self.regression_tolerance < 0.0:
            raise ConfigurationError(
                f"regression_tolerance must be >= 0, got {self.regression_tolerance}"
            )


class PendingQueue:
    """FIFO admission queue indexed by client id.

    The engine's original pending list made every membership probe an
    O(n) scan, so one queue-retry pass under overload was O(n²).  This
    keeps the same FIFO iteration order (dict insertion order) while
    membership, lookup, in-place replace and removal are O(1).

    ``on_change`` fires with the new depth after every mutation; the
    engine wires it to ``metrics.queue_depth``, so the gauge is updated
    at the single point where the queue actually changes and can never
    go stale, whichever event path touched it.
    """

    def __init__(self, on_change: Optional[Callable[[int], None]] = None) -> None:
        self._clients: Dict[int, Client] = {}
        self._on_change = on_change

    def _changed(self) -> None:
        if self._on_change is not None:
            self._on_change(len(self._clients))

    def add(self, client: Client) -> None:
        if client.client_id in self._clients:
            raise ServiceError(
                f"client {client.client_id} is already pending"
            )
        self._clients[client.client_id] = client
        self._changed()

    def remove(self, client_id: int) -> Client:
        try:
            client = self._clients.pop(client_id)
        except KeyError:
            raise ServiceError(f"client {client_id} is not pending") from None
        self._changed()
        return client

    def replace(self, client: Client) -> None:
        """Swap a queued client's spec without losing its queue position."""
        if client.client_id not in self._clients:
            raise ServiceError(f"client {client.client_id} is not pending")
        self._clients[client.client_id] = client
        self._changed()

    def get(self, client_id: int) -> Optional[Client]:
        return self._clients.get(client_id)

    def clear(self) -> None:
        self._clients.clear()
        self._changed()

    def __contains__(self, client_id: int) -> bool:
        return client_id in self._clients

    def __len__(self) -> int:
        return len(self._clients)

    def __iter__(self) -> Iterator[Client]:
        return iter(self._clients.values())

    def __getitem__(self, index: int) -> Client:
        return list(self._clients.values())[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PendingQueue):
            return list(self) == list(other)
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"PendingQueue({sorted(self._clients)})"


@dataclass
class EventOutcome:
    """What one :meth:`AllocationService.apply` call did."""

    seq: int
    event: ServiceEvent
    accepted: bool = True
    queued: bool = False
    swapped: bool = False
    stranded: List[int] = field(default_factory=list)
    profit: float = 0.0
    repair_seconds: float = 0.0


class AllocationService:
    """Event-driven incremental allocation over one datacenter.

    The constructor deep-copies ``system`` (the caller's object is never
    mutated) and places any client that ``allocation`` leaves unserved;
    clients with no feasible placement start in :attr:`pending`.
    """

    def __init__(
        self,
        system: CloudSystem,
        config: Optional[SolverConfig] = None,
        policy: Optional[ServicePolicy] = None,
        allocation: Optional[Allocation] = None,
        journal: Optional[Any] = None,
        admission: Optional[AdmissionPolicy] = None,
        pricing: Optional[PricingSchedule] = None,
    ) -> None:
        self.config = config or SolverConfig()
        self.policy = policy or ServicePolicy()
        #: Admission gate + ranking signal for admits and retries; the
        #: default reproduces the historical pure-feasibility behavior.
        self.admission = admission or AlwaysAdmitIfFeasible()
        #: Optional load-indexed repricing of v/beta, applied to event
        #: clients at admit and re-admit time (never to the constructor's
        #: batch-given clients, which arrive already priced).
        self.pricing = pricing
        # JSON round-trip = deep copy with exact float preservation; the
        # live system and a restored one are then bytes-for-bytes equal.
        self.system = system_from_dict(system_to_dict(system))
        #: $/utilization price the static admission proxy multiplies a
        #: client's demand by (the fleet's mean P1).
        self.admit_cost_coefficient = fleet_cost_coefficient(self.system)
        self.state = WorkingState(
            self.system, allocation.copy() if allocation is not None else None
        )
        self.scorer = DeltaScorer(
            self.state, validate=self.config.validate_delta_scoring
        )
        maybe_attach_cache(self.state, self.config)
        self.journal = journal
        self.metrics = MetricsRegistry()
        self.seq = 0
        self.failed: Set[int] = set()
        self.pending = PendingQueue(on_change=self._note_queue_depth)
        self._drift_ref: Dict[int, float] = {}
        self._events_since_oracle = 0

        for client in list(self.system.clients):
            if self.state.allocation.entries_of_client(client.client_id):
                self._drift_ref[client.client_id] = client.rate_predicted
            elif not self._try_place(client):
                self.pending.add(self._evict(client.client_id))
        self._boundary()
        if math.isinf(self.scorer.profit()):
            raise ServiceError("initial allocation is infeasible")

    def _note_queue_depth(self, depth: int) -> None:
        """Single queue-depth sink: every PendingQueue mutation lands here."""
        self.metrics.queue_depth = depth

    # -- public surface ------------------------------------------------------

    @property
    def allocation(self) -> Allocation:
        """The live allocation (a mutable view; ``copy()`` it to keep)."""
        return self.state.allocation

    def profit(self) -> float:
        """Running profit of the current allocation (incremental)."""
        return self.scorer.profit()

    def load_index(self) -> float:
        """Fraction of live fleet processing capacity in use, in [0, 1].

        The pricing schedule's load signal.  A pure function of the
        canonicalized working state (servers iterated in fixed fleet
        order, failed servers excluded), so repricing decisions replay
        deterministically.
        """
        used = 0.0
        capacity = 0.0
        for server in self.system.servers():
            if server.server_id in self.failed:
                continue
            cap = server.cap_processing
            capacity += cap
            # Shares are fractions of one server; weight by capacity so
            # the index reflects work, not server count.
            used += cap * (1.0 - self.state.free_processing(server.server_id))
        if capacity <= 0.0:
            return 1.0
        return min(max(used / capacity, 0.0), 1.0)

    def _reprice(self, client: Client) -> Client:
        """The spec the service would admit right now (surge applied)."""
        if self.pricing is None:
            return client
        return self.pricing.reprice(client, self.load_index())

    def apply(self, event: ServiceEvent) -> EventOutcome:
        """Apply one event: validate, journal, repair, re-optimize if due.

        Raises :class:`~repro.exceptions.ServiceError` on an invalid event
        *before* the journal records it, so a journal never contains a
        rejected event.
        """
        self._validate(event)
        self.seq += 1
        if self.journal is not None:
            self.journal.append(self.seq, event)
        started = time.perf_counter()
        outcome = self._dispatch(event)
        self._events_since_oracle += 1
        if (
            self.policy.oracle_period
            and self._events_since_oracle >= self.policy.oracle_period
        ):
            outcome.swapped = self._reoptimize() or outcome.swapped
        self._boundary()
        if audit_enabled():
            audit_point(
                self.system,
                self.state.allocation,
                f"service.apply[{type(event).__name__} seq={self.seq}]",
                require_all_served=True,
                extra_violations=check_no_entries_on_servers(
                    self.state.allocation, self.failed
                ),
            )
        profit = self.scorer.profit()
        if math.isinf(profit):
            raise ServiceError(
                f"service invariant broken after event {self.seq}: "
                "state is infeasible"
            )
        outcome.seq = self.seq
        outcome.profit = profit
        outcome.repair_seconds = time.perf_counter() - started
        self.metrics.incr(f"events_{_EVENT_TAGS[type(event)]}")
        self.metrics.record_event(self.seq, profit, outcome.repair_seconds)
        return outcome

    def apply_many(self, events) -> List[EventOutcome]:
        return [self.apply(event) for event in events]

    # -- validation ----------------------------------------------------------

    def _validate(self, event: ServiceEvent) -> None:
        if isinstance(event, ClientAdmit):
            cid = event.client.client_id
            if self.system.has_client(cid) or cid in self.pending:
                raise ServiceError(f"client {cid} is already known to the service")
        elif isinstance(event, (ClientDepart, RateUpdate)):
            cid = event.client_id
            if not self.system.has_client(cid) and cid not in self.pending:
                raise ServiceError(f"client {cid} is not known to the service")
        elif isinstance(event, ServerFail):
            if event.server_id not in self.state.server_statics:
                raise ServiceError(f"unknown server {event.server_id}")
            if event.server_id in self.failed:
                raise ServiceError(f"server {event.server_id} already failed")
        elif isinstance(event, ServerRecover):
            if event.server_id not in self.failed:
                raise ServiceError(f"server {event.server_id} is not failed")
        else:
            raise ServiceError(f"not a service event: {type(event).__name__}")

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, event: ServiceEvent) -> EventOutcome:
        outcome = EventOutcome(seq=self.seq, event=event)
        if isinstance(event, ClientAdmit):
            self._admit(event.client, outcome)
        elif isinstance(event, ClientDepart):
            self._depart(event.client_id)
        elif isinstance(event, RateUpdate):
            self._rate_update(event, outcome)
        elif isinstance(event, ServerFail):
            self._server_fail(event.server_id, outcome)
        else:
            self._server_recover(event.server_id)
        return outcome

    def _try_place(self, client: Client) -> bool:
        """Place a client already registered in the system, atomically.

        The placement plus its local rebalance either commits with a
        feasible score or rolls back leaving no trace.
        """
        self.state.begin_txn()
        if place_client(
            self.state, client, self.config, excluded_server_ids=self.failed
        ) and not math.isinf(self.scorer.profit()):
            self.state.commit_txn()
            self._drift_ref[client.client_id] = client.rate_predicted
            return True
        self.state.rollback_txn()
        return False

    def _admit(self, client: Client, outcome: EventOutcome) -> None:
        priced = self._reprice(client)
        allowed, _ = self.admission.decide(self, priced)
        if not allowed:
            # Refused on profit grounds: never placed, never queued.
            # The event is journaled (it validated), so replaying with
            # the same policy reproduces the refusal byte-for-byte.
            outcome.accepted = False
            self.metrics.incr("admits_rejected")
            return
        self.system.add_client(priced)
        self.scorer.register_client(priced.client_id)
        if self._try_place(priced):
            self.metrics.incr("admits_accepted")
            return
        self.scorer.deregister_client(priced.client_id)
        self.system.remove_client(priced.client_id)
        # Queue the *original* spec: each retry re-prices against the
        # load in force at that instant, not at first arrival.
        self.pending.add(client)
        outcome.accepted = False
        outcome.queued = True
        self.metrics.incr("admits_queued")

    def _evict(self, client_id: int) -> Client:
        """Remove a served client from the system (shares released)."""
        self.state.unassign_client(client_id)
        self.scorer.deregister_client(client_id)
        self._drift_ref.pop(client_id, None)
        return self.system.remove_client(client_id)

    def _depart(self, client_id: int) -> None:
        if client_id in self.pending:
            self.pending.remove(client_id)
            return
        touched = sorted(self.state.allocation.entries_of_client(client_id))
        self._evict(client_id)
        rebalance_servers(self.state, touched, self.config)
        consolidate_servers(
            self.state, touched, self.config, excluded_server_ids=self.failed
        )
        self._retry_pending()

    def _rate_update(self, event: RateUpdate, outcome: EventOutcome) -> None:
        queued = self.pending.get(event.client_id)
        if queued is not None:
            updated = dataclasses.replace(
                queued, rate_predicted=event.rate_predicted
            )
            self.pending.replace(updated)
            # No capacity was freed, so every *other* pending client is
            # still unplaceable (retry passes are exhaustive after each
            # event); only the updated client's feasibility can have
            # changed.  Retrying just it is equivalent to a full pass —
            # and keeps overload rate-churn O(1) instead of O(pending).
            self._retry_one(updated)
            return
        updated = dataclasses.replace(
            self.system.client(event.client_id), rate_predicted=event.rate_predicted
        )
        self.system.replace_client(updated)
        # The system changed behind the allocation's back; the client's
        # revenue/stability terms must be re-derived, and any cached
        # curves priced against the old rates retired.
        self.scorer.mark_client(updated.client_id)
        self.state.note_client_replaced(updated.client_id)
        touched = sorted(self.state.allocation.entries_of_client(updated.client_id))
        rebalance_servers(self.state, touched, self.config)
        if math.isinf(self.scorer.profit()):
            # Local repair could not restore stability at the new rate:
            # re-place the client from scratch, queueing it as a last resort.
            self.state.unassign_client(updated.client_id)
            rebalance_servers(self.state, touched, self.config)
            if not self._try_place(updated):
                self._evict(updated.client_id)
                self.pending.add(updated)
                outcome.queued = True
                outcome.stranded.append(updated.client_id)
                self.metrics.incr("clients_stranded")
        else:
            # Share rebalancing cannot fix a stale *placement*: the new
            # rate may make a different server strictly better.  Try the
            # accept-if-better move, then see whether the servers the
            # client vacated (or shrank on) can now power down.
            if reseat_client(
                self.state, updated, self.config, excluded_server_ids=self.failed
            ):
                self.metrics.incr("clients_reseated")
            touched = sorted(
                set(touched)
                | set(self.state.allocation.entries_of_client(updated.client_id))
            )
            consolidate_servers(
                self.state, touched, self.config, excluded_server_ids=self.failed
            )
        if self._relative_drift() > self.policy.drift_threshold:
            outcome.swapped = self._reoptimize() or outcome.swapped

    def _server_fail(self, server_id: int, outcome: EventOutcome) -> None:
        self.failed.add(server_id)
        rehomed, stranded = drain_server(
            self.state, server_id, self.config, excluded_server_ids=self.failed
        )
        for client_id in stranded:
            client = self._evict(client_id)
            self.pending.add(client)
            outcome.stranded.append(client_id)
            self.metrics.incr("clients_stranded")
        # Post-drain audit (defense in depth): no surviving row may
        # reference failed hardware — it would silently bill traffic to a
        # dead server and poison every profit figure from here on.  Any
        # offender is zeroed and re-placed atomically (or evicted to the
        # pending queue) before the profit recompute below can see it.
        stale = sorted(
            {
                client_id
                for client_id, sid, _ in self.state.allocation.iter_entries()
                if sid in self.failed
            }
        )
        for client_id in stale:
            self.metrics.incr("stale_rows_purged")
            client = self.system.client(client_id)
            self.state.unassign_client(client_id)
            if client_id in rehomed:
                rehomed.remove(client_id)
            if not self._try_place(client):
                self.pending.add(self._evict(client_id))
                outcome.stranded.append(client_id)
                self.metrics.incr("clients_stranded")
        receiving: Set[int] = set()
        for client_id in rehomed:
            receiving.update(self.state.allocation.entries_of_client(client_id))
        rebalance_servers(self.state, receiving, self.config)

    def _server_recover(self, server_id: int) -> None:
        self.failed.discard(server_id)
        self._retry_pending()

    def _retry_one(
        self, client: Client, priced: Optional[Client] = None
    ) -> bool:
        """Attempt to place one queued client; True iff it left the queue.

        Re-prices and re-gates against the *current* state: a client
        that was profitable at arrival may not be at retry time (or vice
        versa), and the spec admitted is the one priced at this instant.
        The pending queue keeps the original spec either way.
        """
        if priced is None:
            priced = self._reprice(client)
        allowed, _ = self.admission.decide(self, priced)
        if not allowed:
            return False
        self.system.add_client(priced)
        self.scorer.register_client(priced.client_id)
        if self._try_place(priced):
            self.pending.remove(client.client_id)
            self.metrics.incr("pending_placed")
            return True
        self.scorer.deregister_client(priced.client_id)
        self.system.remove_client(priced.client_id)
        return False

    def _retry_pending(self) -> None:
        """One pass over the queue; admits every client that now fits.

        Order is the admission policy's call: FIFO for the baseline
        (``orders_retries=False`` — freed capacity goes to the oldest
        pending client), priority-descending otherwise, so a freed slot
        goes to the highest-marginal-profit candidate.  Priorities are
        evaluated once against the pass's starting state (ties broken by
        queue position), which keeps the pass deterministic and one
        estimate per client; the per-client gate inside
        :meth:`_retry_one` still sees the live state.
        """
        entries = [(client, self._reprice(client)) for client in self.pending]
        if self.admission.orders_retries and len(entries) > 1:
            ranked = sorted(
                range(len(entries)),
                key=lambda i: (
                    -self.admission.priority(self, entries[i][1]),
                    i,
                ),
            )
            entries = [entries[i] for i in ranked]
        for client, priced in entries:
            self._retry_one(client, priced)

    # -- drift-triggered re-optimization -------------------------------------

    def _relative_drift(self) -> float:
        """Weighted L1 drift of predicted rates since the last re-solve."""
        numerator = 0.0
        denominator = 0.0
        for client_id in sorted(self._drift_ref):
            reference = self._drift_ref[client_id]
            numerator += abs(
                self.system.client(client_id).rate_predicted - reference
            )
            denominator += reference
        return numerator / denominator if denominator > 0.0 else 0.0

    def _reduced_system(self) -> Optional[CloudSystem]:
        """The solvable sub-system: clusters minus failed servers."""
        if not self.system.clients:
            return None
        if not self.failed:
            return self.system
        clusters: List[Cluster] = []
        for cluster in self.system.clusters:
            servers = [
                s for s in cluster.servers if s.server_id not in self.failed
            ]
            if not servers:
                continue
            if len(servers) == len(cluster.servers):
                clusters.append(cluster)
            else:
                clusters.append(
                    Cluster(
                        cluster_id=cluster.cluster_id,
                        name=cluster.name,
                        servers=servers,
                    )
                )
        if not clusters:
            return None
        return CloudSystem(
            clusters=clusters, clients=list(self.system.clients), name=self.system.name
        )

    def _reoptimize(self) -> bool:
        """Full batch re-solve; atomically swap in the result iff it wins.

        Either way the drift reference resets to the current rates — the
        decision "repair is still good enough" is itself re-anchored.
        """
        self._events_since_oracle = 0
        self.metrics.incr("reoptimizations")
        self._drift_ref = {
            client.client_id: client.rate_predicted
            for client in self.system.clients
        }
        reduced = self._reduced_system()
        if reduced is None:
            return False
        candidate = ResourceAllocator(self.config).solve(reduced).allocation
        candidate_profit = score(self.system, candidate)
        if candidate_profit <= self.scorer.profit() + self.policy.regression_tolerance:
            return False
        self.state.restore(candidate)
        self.metrics.incr("reoptimizations_swapped")
        # The batch solver may have left some clients unserved; they leave
        # the system for the queue (the engine's invariant: in-system means
        # served), then the queue gets a retry against the new allocation.
        for client in list(self.system.clients):
            if not self.state.allocation.entries_of_client(client.client_id):
                self.pending.add(self._evict(client.client_id))
        self._retry_pending()
        return True

    # -- canonical event boundary --------------------------------------------

    def _boundary(self) -> None:
        """Normalize history-dependent derived state (see module docs)."""
        self.state.canonicalize()
        self.scorer.resync()

    # -- snapshot / restore ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Serialize the full logical state as a versioned document.

        The ``profit`` field is the *full evaluator's* value on the
        canonicalized state — a pure function of (system, allocation) — so
        equal logical states always snapshot to identical bytes.
        """
        self._boundary()
        return {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "seq": self.seq,
            "system": system_to_dict(self.system),
            "allocation": allocation_to_dict(self.state.allocation),
            "failed_servers": sorted(self.failed),
            "pending": [client_to_dict(c) for c in self.pending],
            "drift_ref": {
                str(cid): rate for cid, rate in sorted(self._drift_ref.items())
            },
            "events_since_oracle": self._events_since_oracle,
            "profit": score(self.system, self.state.allocation),
            "counters": self.metrics.deterministic_counters(),
        }

    def snapshot_hash(self) -> str:
        """SHA-256 of the canonical snapshot rendering."""
        return hashlib.sha256(
            dump_canonical(self.snapshot()).encode("utf-8")
        ).hexdigest()

    @classmethod
    def restore(
        cls,
        doc: Dict[str, Any],
        config: Optional[SolverConfig] = None,
        policy: Optional[ServicePolicy] = None,
        journal: Optional[Any] = None,
        admission: Optional[AdmissionPolicy] = None,
        pricing: Optional[PricingSchedule] = None,
    ) -> "AllocationService":
        """Rebuild a service from :meth:`snapshot` output.

        The restored engine continues bit-identically to the one that was
        snapshotted (given the same config/policy).  Raises
        :class:`~repro.exceptions.ServiceError` when the document's stored
        profit disagrees with the restored state.
        """
        require_format(doc, SNAPSHOT_FORMAT, max_version=SNAPSHOT_VERSION)
        try:
            system = system_from_dict(doc["system"])
            allocation = allocation_from_dict(doc["allocation"])
            service = cls(
                system,
                config=config,
                policy=policy,
                allocation=allocation,
                journal=journal,
                admission=admission,
                pricing=pricing,
            )
            service.seq = doc["seq"]
            service.failed = set(doc["failed_servers"])
            service.pending.clear()
            for entry in doc["pending"]:
                service.pending.add(client_from_dict(entry))
            service._drift_ref = {
                int(cid): rate for cid, rate in doc["drift_ref"].items()
            }
            service._events_since_oracle = doc["events_since_oracle"]
            service.metrics.seed_counters(doc["counters"])
            stored_profit = doc["profit"]
        except ServiceError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed service snapshot: {exc}") from exc
        restored_profit = score(service.system, service.state.allocation)
        if abs(restored_profit - stored_profit) > AGREEMENT_TOLERANCE:
            raise ServiceError(
                "snapshot is inconsistent: stored profit "
                f"{stored_profit!r} but restored state evaluates to "
                f"{restored_profit!r}"
            )
        return service
