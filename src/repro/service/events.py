"""Typed events consumed by the online allocation service.

The service (:mod:`repro.service.engine`) is a long-lived process whose
input is a stream of these five events:

* :class:`ClientAdmit` — a new client (full SLA spec embedded) asks to be
  served;
* :class:`ClientDepart` — a served (or queued) client leaves;
* :class:`RateUpdate` — a client's predicted arrival rate drifted;
* :class:`ServerFail` — a server dies; its traffic must be rehomed now;
* :class:`ServerRecover` — a failed server returns to the eligible pool.

Events round-trip through versioned JSON documents (the journal's line
format) via :func:`event_to_dict` / :func:`event_from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Union

from repro.exceptions import ModelError
from repro.io import SerializationError, client_from_dict, client_to_dict, require_format
from repro.model.client import Client

EVENT_FORMAT = "repro.service-event"
EVENT_VERSION = 1


@dataclass(frozen=True)
class ClientAdmit:
    """A new client arrives; ``client`` is its full (self-contained) spec."""

    client: Client


@dataclass(frozen=True)
class ClientDepart:
    client_id: int


@dataclass(frozen=True)
class RateUpdate:
    """The client's predicted arrival rate moved to ``rate_predicted``."""

    client_id: int
    rate_predicted: float

    def __post_init__(self) -> None:
        if self.rate_predicted <= 0:
            raise ModelError(
                f"rate_predicted must be > 0, got {self.rate_predicted}"
            )


@dataclass(frozen=True)
class ServerFail:
    server_id: int


@dataclass(frozen=True)
class ServerRecover:
    server_id: int


ServiceEvent = Union[ClientAdmit, ClientDepart, RateUpdate, ServerFail, ServerRecover]

_EVENT_TAGS = {
    ClientAdmit: "client_admit",
    ClientDepart: "client_depart",
    RateUpdate: "rate_update",
    ServerFail: "server_fail",
    ServerRecover: "server_recover",
}


def event_to_dict(event: ServiceEvent) -> Dict[str, Any]:
    """Encode one event as a self-contained versioned document."""
    try:
        tag = _EVENT_TAGS[type(event)]
    except KeyError:
        raise SerializationError(
            f"not a service event: {type(event).__name__}"
        ) from None
    doc: Dict[str, Any] = {
        "format": EVENT_FORMAT,
        "version": EVENT_VERSION,
        "type": tag,
    }
    if isinstance(event, ClientAdmit):
        doc["client"] = client_to_dict(event.client)
    elif isinstance(event, ClientDepart):
        doc["client_id"] = event.client_id
    elif isinstance(event, RateUpdate):
        doc["client_id"] = event.client_id
        doc["rate_predicted"] = event.rate_predicted
    else:
        doc["server_id"] = event.server_id
    return doc


def event_from_dict(doc: Dict[str, Any]) -> ServiceEvent:
    """Decode one event document; raises :class:`SerializationError`."""
    require_format(doc, EVENT_FORMAT, max_version=EVENT_VERSION)
    tag = doc.get("type")
    try:
        if tag == "client_admit":
            return ClientAdmit(client=client_from_dict(doc["client"]))
        if tag == "client_depart":
            return ClientDepart(client_id=doc["client_id"])
        if tag == "rate_update":
            return RateUpdate(
                client_id=doc["client_id"],
                rate_predicted=doc["rate_predicted"],
            )
        if tag == "server_fail":
            return ServerFail(server_id=doc["server_id"])
        if tag == "server_recover":
            return ServerRecover(server_id=doc["server_id"])
    except SerializationError:
        raise
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed {tag} event: {exc}") from exc
    raise SerializationError(f"unknown service event type {tag!r}")
