"""Profit-maximizing admission control and dynamic pricing.

The paper's objective is *provider profit*, yet a pure feasibility gate
admits every client that fits — including clients whose power cost
exceeds their revenue.  Mazzucco et al. ("Squeezing out the Cloud via
Profit-Maximizing Resource Allocation Policies") show that under
overload the profit levers are *which* clients you admit and *what* you
charge them; this module supplies both as pluggable strategy objects the
online engine (:class:`~repro.service.engine.AllocationService`) and the
sharded router (:class:`~repro.service.router.ServiceRouter`) consult on
every admit, retry and shed decision.

**Admission policies.**  An :class:`AdmissionPolicy` answers two
questions about a candidate client: *how valuable is it right now*
(:meth:`~AdmissionPolicy.priority`, the ranking signal shared by the
router's shed order and the engine's retry order) and *may the engine
try to place it at all* (:meth:`~AdmissionPolicy.decide`).  Three
concrete policies:

* :class:`AlwaysAdmitIfFeasible` — today's behavior, kept as the
  baseline: every client may try; retries stay FIFO; ranking uses the
  static proxy below.
* :class:`RevenueThreshold` — a floor on the best-case revenue rate
  ``lambda^a * U(0)``; clients below it are refused outright (cheaper
  than estimating placements when the fleet's price of admission is
  known a priori).
* :class:`OpportunityCost` — the live signal: the client's marginal
  profit is estimated by running ``Assign_Distribute`` over the eq.-(16)
  curve blocks already memoized on the engine's
  :class:`~repro.core.state.WorkingState`
  (:func:`repro.core.assign.estimate_marginal_profit` — a read-only
  probe, so the estimate is exactly what :func:`best_placement` would
  commit).  Feasible clients whose estimate falls below ``min_margin``
  are refused; infeasible-now clients (estimate ``-inf``) fall through
  to the ordinary queue-and-retry path, because infeasibility is not
  evidence of unprofitability.

**The static proxy, with units fixed.**  The router's historical
``admit_priority`` subtracted a *utilization demand* (``rate x (t_proc +
t_comm)``, in utilization-time units) directly from a revenue rate in
$/time.  The two terms only share units after the demand is priced:
multiplying by a power coefficient in $/utilization (the fleet's mean
``P1`` by default, :func:`fleet_cost_coefficient`) lands both sides in
$/time.  :func:`static_admit_priority` takes that coefficient;
``cost_coefficient=None`` reproduces the legacy unpriced proxy so
recorded shed decisions stay replayable.

**Dynamic pricing.**  A :class:`PricingSchedule` maps the engine's
deterministic load index (fraction of fleet processing capacity in use)
to per-class multipliers on the SLA's ``v`` (base value) and ``beta``
(slope).  The engine applies it at admit *and* re-admit time: the spec
that enters the system is the repriced one, so surge revenue flows into
every profit figure, while the pending queue keeps the *original* spec
and re-prices at each retry against the then-current load.  Repriced
utility classes get a fresh class index (derived from the tier, see
:data:`PRICED_CLASS_STRIDE`) so the snapshot codec's per-index
deduplication can never alias two price points of one class.  Because
the load index is a pure function of engine state, repricing is
replay-deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple, TYPE_CHECKING

from repro.core.assign import estimate_marginal_profit
from repro.exceptions import ConfigurationError
from repro.model.client import Client
from repro.model.datacenter import CloudSystem
from repro.model.utility import ClippedLinearUtility, UtilityClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.engine import AllocationService

#: Repriced utility classes live at ``stride * (tier + 1) + base_index``
#: so every (class, price tier) pair owns a distinct index — the system
#: codec deduplicates utility classes by index, so two price points of
#: one class must never share one.  Mirrors the loadgen's
#: ``GENERATED_ID_BASE`` idiom.
PRICED_CLASS_STRIDE = 1_000_000


def fleet_cost_coefficient(system: CloudSystem) -> float:
    """Mean ``P1`` (power per unit utilization) across the fleet.

    The price that converts a client's utilization demand into the same
    $/time units as its revenue rate; the default coefficient for
    :func:`static_admit_priority`.  Falls back to 1.0 (the legacy
    behavior) for a fleet with no servers.
    """
    p1s = [server.server_class.power_per_util for server in system.servers()]
    if not p1s:
        return 1.0
    return sum(p1s) / len(p1s)


def static_admit_priority(
    client: Client, cost_coefficient: Optional[float] = None
) -> float:
    """Static marginal-profit proxy: revenue rate minus priced demand.

    Best-case revenue rate (the SLA utility at zero response time times
    the agreed rate) minus the client's utilization demand scaled by
    ``cost_coefficient`` ($/utilization — see
    :func:`fleet_cost_coefficient`).  ``None`` keeps the legacy unpriced
    subtraction (coefficient 1.0 applied to raw demand), reachable so
    shed decisions recorded before the units fix replay identically.
    """
    demand = client.rate_predicted * (client.t_proc + client.t_comm)
    if cost_coefficient is None:
        return client.revenue(0.0) - demand
    return client.revenue(0.0) - cost_coefficient * demand


# -- admission policies -------------------------------------------------------


class AdmissionPolicy:
    """Strategy consulted on every admit, retry and shed ranking.

    Subclasses override :meth:`priority` (the ranking signal) and
    :meth:`decide` (the gate).  ``orders_retries`` switches the engine's
    pending-queue retry pass from FIFO to priority order;
    ``uses_live_estimate`` tells the router the policy can price a
    candidate against a live engine (and should, when one is in
    process).
    """

    name: str = "base"
    orders_retries: bool = False
    uses_live_estimate: bool = False

    def priority(self, service: "AllocationService", client: Client) -> float:
        """Marginal-profit signal; higher = keep/admit first."""
        return static_admit_priority(client, service.admit_cost_coefficient)

    def decide(
        self, service: "AllocationService", client: Client
    ) -> Tuple[bool, float]:
        """``(may_try_placement, priority)`` for one candidate."""
        return True, self.priority(service, client)


@dataclass(frozen=True)
class AlwaysAdmitIfFeasible(AdmissionPolicy):
    """The baseline: feasibility is the only gate, retries stay FIFO."""

    name = "always_admit_if_feasible"
    orders_retries = False
    uses_live_estimate = False


@dataclass(frozen=True)
class RevenueThreshold(AdmissionPolicy):
    """Refuse clients whose best-case revenue rate is below a floor.

    ``min_revenue_rate`` is compared against ``lambda^a * U(0)`` — no
    engine state needed, so the gate costs one multiply.  Retries are
    ranked by the static proxy.
    """

    min_revenue_rate: float = 0.0

    name = "revenue_threshold"
    orders_retries = True
    uses_live_estimate = False

    def __post_init__(self) -> None:
        if self.min_revenue_rate < 0.0:
            raise ConfigurationError(
                f"min_revenue_rate must be >= 0, got {self.min_revenue_rate}"
            )

    def decide(
        self, service: "AllocationService", client: Client
    ) -> Tuple[bool, float]:
        return (
            client.revenue(0.0) >= self.min_revenue_rate,
            self.priority(service, client),
        )


@dataclass(frozen=True)
class OpportunityCost(AdmissionPolicy):
    """Gate and rank on the live eq.-(16) marginal-profit estimate.

    The estimate is what ``Assign_Distribute`` would commit for the
    client right now (activation power included), read through the
    memoized curve blocks.  Feasible clients below ``min_margin`` are
    refused outright — admitting them would burn capacity and power on
    negative margin.  Infeasible-now clients (estimate ``-inf``) are
    *not* refused: they take the ordinary queue-and-retry path, and each
    retry re-evaluates the gate against the then-current state.
    """

    min_margin: float = 0.0

    name = "opportunity_cost"
    orders_retries = True
    uses_live_estimate = True

    def __post_init__(self) -> None:
        if not math.isfinite(self.min_margin):
            raise ConfigurationError(
                f"min_margin must be finite, got {self.min_margin}"
            )

    def priority(self, service: "AllocationService", client: Client) -> float:
        return estimate_marginal_profit(
            service.state, client, service.config, service.failed
        )

    def decide(
        self, service: "AllocationService", client: Client
    ) -> Tuple[bool, float]:
        estimate = self.priority(service, client)
        if math.isinf(estimate):
            # No feasible placement right now: queue-and-retry decides.
            return True, estimate
        return estimate >= self.min_margin, estimate


#: CLI/config aliases -> policy constructors.
_POLICY_ALIASES = {
    "always": "always_admit_if_feasible",
    "revenue": "revenue_threshold",
    "opportunity": "opportunity_cost",
}


def make_admission_policy(
    name: str,
    min_revenue_rate: float = 0.0,
    min_margin: float = 0.0,
) -> AdmissionPolicy:
    """Policy factory for CLI/config surfaces; accepts short aliases."""
    canonical = _POLICY_ALIASES.get(name, name)
    if canonical == "always_admit_if_feasible":
        return AlwaysAdmitIfFeasible()
    if canonical == "revenue_threshold":
        return RevenueThreshold(min_revenue_rate=min_revenue_rate)
    if canonical == "opportunity_cost":
        return OpportunityCost(min_margin=min_margin)
    raise ConfigurationError(
        f"unknown admission policy {name!r}; known: "
        f"{sorted(set(_POLICY_ALIASES) | set(_POLICY_ALIASES.values()))}"
    )


# -- dynamic pricing ----------------------------------------------------------


@dataclass(frozen=True)
class PriceTier:
    """One rung of a load-indexed price schedule.

    The tier applies when the load index is at least ``min_load``;
    ``v_factor`` scales the SLA's base value ``v`` and ``beta_factor``
    its slope ``beta``.
    """

    min_load: float
    v_factor: float = 1.0
    beta_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_load <= 1.0:
            raise ConfigurationError(
                f"min_load must lie in [0, 1], got {self.min_load}"
            )
        if self.v_factor <= 0.0 or self.beta_factor <= 0.0:
            raise ConfigurationError(
                "price factors must be > 0, got "
                f"v_factor={self.v_factor}, beta_factor={self.beta_factor}"
            )

    @property
    def is_identity(self) -> bool:
        return self.v_factor == 1.0 and self.beta_factor == 1.0


@dataclass(frozen=True)
class PricingSchedule:
    """Load-indexed per-class repricing of ``v``/``beta``.

    ``tiers`` must be sorted by strictly increasing ``min_load`` and
    start at 0.0, so every load maps to exactly one tier.  Repricing
    replaces the client's utility class with a scaled
    :class:`~repro.model.utility.ClippedLinearUtility` built from the
    class's linear approximation (exact for the linear forms the
    workload generator emits) under a tier-specific class index.
    """

    tiers: Tuple[PriceTier, ...]

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ConfigurationError("a pricing schedule needs >= 1 tier")
        loads = [tier.min_load for tier in self.tiers]
        if loads[0] != 0.0:
            raise ConfigurationError(
                f"the first tier must start at load 0.0, got {loads[0]}"
            )
        if any(b <= a for a, b in zip(loads, loads[1:])):
            raise ConfigurationError(
                f"tier min_loads must be strictly increasing, got {loads}"
            )

    @staticmethod
    def surge(
        knee: float = 0.6,
        peak: float = 0.85,
        knee_v_factor: float = 1.15,
        peak_v_factor: float = 1.30,
        peak_beta_factor: float = 1.10,
    ) -> "PricingSchedule":
        """The stock surge curve: list price, then two overload markups."""
        return PricingSchedule(
            tiers=(
                PriceTier(min_load=0.0),
                PriceTier(min_load=knee, v_factor=knee_v_factor),
                PriceTier(
                    min_load=peak,
                    v_factor=peak_v_factor,
                    beta_factor=peak_beta_factor,
                ),
            )
        )

    def tier_for(self, load: float) -> Tuple[int, PriceTier]:
        """The (index, tier) in force at ``load``."""
        chosen = 0
        for idx, tier in enumerate(self.tiers):
            if load >= tier.min_load:
                chosen = idx
        return chosen, self.tiers[chosen]

    def reprice(self, client: Client, load: float) -> Client:
        """The client as admitted at ``load``: scaled ``v``/``beta``.

        Identity tiers return the client object unchanged (so the
        baseline tier is bitwise today's behavior).  Repricing always
        starts from an unpriced spec — the engine queues originals and
        re-prices per retry — so a client whose class index is already
        in the priced range is refused loudly rather than compounded.
        """
        tier_index, tier = self.tier_for(load)
        if tier.is_identity:
            return client
        base_class = client.utility_class
        if base_class.index >= PRICED_CLASS_STRIDE:
            raise ConfigurationError(
                f"client {client.client_id} already carries priced class "
                f"{base_class.index}; reprice original specs only"
            )
        linear = base_class.linear_approximation()
        priced = UtilityClass(
            index=PRICED_CLASS_STRIDE * (tier_index + 1) + base_class.index,
            function=ClippedLinearUtility(
                base_value=linear.base_value * tier.v_factor,
                slope=linear.slope * tier.beta_factor,
            ),
            name=f"{base_class.name or 'class'}@tier{tier_index}",
        )
        return Client(
            client_id=client.client_id,
            utility_class=priced,
            rate_agreed=client.rate_agreed,
            rate_predicted=client.rate_predicted,
            t_proc=client.t_proc,
            t_comm=client.t_comm,
            storage_req=client.storage_req,
        )
