"""Replay :mod:`repro.workload.traces` trajectories as service event streams.

The epoch simulation feeds the batch solver a fresh rate matrix per
epoch; the online service consumes *events*.  This module bridges the
two: :func:`generate_epoch_events` turns a trace (plus optional client
churn and server fail/recover injection) into per-epoch event batches,
and :func:`run_service_trace` drives a fresh :class:`AllocationService`
through the whole stream — the engine behind the ``repro serve`` CLI
subcommand and the service benchmark.

Everything is deterministic given the config's seed: one
``numpy`` generator draws the trace and all injections.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.config import SolverConfig
from repro.exceptions import ConfigurationError
from repro.model.client import Client
from repro.model.datacenter import CloudSystem
from repro.service.admission import AdmissionPolicy, PricingSchedule
from repro.service.engine import AllocationService, EventOutcome, ServicePolicy
from repro.service.events import (
    ClientAdmit,
    ClientDepart,
    RateUpdate,
    ServerFail,
    ServerRecover,
    ServiceEvent,
)
from repro.workload.traces import make_factors


@dataclass(frozen=True)
class TraceDriverConfig:
    """How a trace becomes an event stream.

    ``churn_probability`` — per-epoch chance of one membership change (a
    random client departs, or a previously departed one returns);
    ``failure_probability`` — per-epoch chance of one server event (a
    random server fails, or a failed one recovers).  Both default to 0 so
    a plain trace produces only admits and rate updates.
    """

    pattern: str = "random_walk"
    num_epochs: int = 10
    drift: float = 0.15
    min_rate_factor: float = 0.3
    max_rate_factor: float = 1.0
    seed: Optional[int] = None
    churn_probability: float = 0.0
    failure_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.num_epochs < 1:
            raise ConfigurationError("num_epochs must be >= 1")
        if not 0.0 <= self.churn_probability <= 1.0:
            raise ConfigurationError("churn_probability must lie in [0, 1]")
        if not 0.0 <= self.failure_probability <= 1.0:
            raise ConfigurationError("failure_probability must lie in [0, 1]")


def _admit_event(client: Client, rate: float) -> ClientAdmit:
    return ClientAdmit(client=dataclasses.replace(client, rate_predicted=rate))


def generate_epoch_events(
    system: CloudSystem, config: TraceDriverConfig
) -> List[List[ServiceEvent]]:
    """Per-epoch event batches for a trace over ``system``'s clients.

    Batch 0 admits every client at its epoch-0 rate; batch ``e >= 1``
    carries that epoch's injections (failures first, then churn) followed
    by a :class:`RateUpdate` for every present client whose rate moved.
    """
    rng = np.random.default_rng(config.seed)
    clients = list(system.clients)
    factors = make_factors(
        config.pattern,
        config.num_epochs + 1,
        len(clients),
        rng,
        drift=config.drift,
        min_factor=config.min_rate_factor,
        max_factor=config.max_rate_factor,
    )
    rates = [
        [client.rate_agreed * float(factors[epoch][idx]) for idx, client in enumerate(clients)]
        for epoch in range(config.num_epochs + 1)
    ]

    batches: List[List[ServiceEvent]] = [
        [_admit_event(client, rates[0][idx]) for idx, client in enumerate(clients)]
    ]
    server_ids = sorted(s.server_id for s in system.servers())
    failed: List[int] = []
    departed: List[int] = []  # indexes into `clients`, FIFO re-admission
    last_rate = list(rates[0])

    for epoch in range(1, config.num_epochs + 1):
        batch: List[ServiceEvent] = []
        if config.failure_probability and rng.random() < config.failure_probability:
            if failed and rng.random() < 0.5:
                batch.append(ServerRecover(server_id=failed.pop(0)))
            elif len(failed) < len(server_ids):
                alive = [sid for sid in server_ids if sid not in failed]
                victim = alive[int(rng.integers(len(alive)))]
                failed.append(victim)
                batch.append(ServerFail(server_id=victim))
        if config.churn_probability and rng.random() < config.churn_probability:
            if departed and rng.random() < 0.5:
                idx = departed.pop(0)
                batch.append(_admit_event(clients[idx], rates[epoch][idx]))
                last_rate[idx] = rates[epoch][idx]
            else:
                present = [i for i in range(len(clients)) if i not in departed]
                if present:
                    idx = present[int(rng.integers(len(present)))]
                    departed.append(idx)
                    batch.append(ClientDepart(client_id=clients[idx].client_id))
        for idx, client in enumerate(clients):
            if idx in departed:
                continue
            rate = rates[epoch][idx]
            if rate != last_rate[idx]:
                batch.append(RateUpdate(client_id=client.client_id, rate_predicted=rate))
                last_rate[idx] = rate
        batches.append(batch)
    return batches


def flatten_events(batches: List[List[ServiceEvent]]) -> List[ServiceEvent]:
    return [event for batch in batches for event in batch]


def empty_copy(system: CloudSystem) -> CloudSystem:
    """The same datacenter with no clients (they arrive as events)."""
    return CloudSystem(clusters=system.clusters, clients=[], name=system.name)


def run_service_trace(
    system: CloudSystem,
    driver_config: Optional[TraceDriverConfig] = None,
    solver_config: Optional[SolverConfig] = None,
    policy: Optional[ServicePolicy] = None,
    journal: Optional[Any] = None,
    admission: Optional[AdmissionPolicy] = None,
    pricing: Optional[PricingSchedule] = None,
) -> Dict[str, Any]:
    """Drive a fresh service through a trace; returns a report dict.

    The report carries the final profit, per-epoch profits (after each
    batch), the metrics registry dump, and the final snapshot hash (the
    replay-determinism fingerprint).  ``admission`` / ``pricing`` select
    the engine's admission policy and surge schedule (defaults keep the
    historical always-admit-if-feasible behavior at list price).
    """
    driver_config = driver_config or TraceDriverConfig()
    service = AllocationService(
        empty_copy(system),
        config=solver_config,
        policy=policy,
        journal=journal,
        admission=admission,
        pricing=pricing,
    )
    epoch_profits: List[float] = []
    outcomes: List[EventOutcome] = []
    for batch in generate_epoch_events(system, driver_config):
        outcomes.extend(service.apply_many(batch))
        epoch_profits.append(service.profit())
    return {
        "final_profit": service.profit(),
        "epoch_profits": epoch_profits,
        "events_applied": len(outcomes),
        "events_queued": sum(1 for o in outcomes if o.queued),
        "reopt_swaps": sum(1 for o in outcomes if o.swapped),
        "pending_clients": len(service.pending),
        "snapshot_hash": service.snapshot_hash(),
        "metrics": service.metrics.to_dict(),
        "service": service,
    }
