"""Open-loop load generator: Poisson bursts of service events.

A closed-loop driver (like :func:`repro.service.driver.run_service_trace`)
waits for the engine between batches, so it can never overload it.  Real
arrival processes don't wait — load arrives whether or not the service
is keeping up.  This module synthesizes that: bursts arrive at
exponential interarrival times, each carrying a Poisson-sized batch of
Admit / Depart / RateUpdate events drawn from a template client pool.
The stream is fed to :meth:`repro.service.router.ServiceRouter.offer`,
which must shed when it falls behind — exactly the regime the shedding
policy exists for.

Generation is deterministic for a given seed (one ``numpy`` generator
draws everything) and *engine-blind*: departures and rate updates target
clients the generator admitted earlier, without knowing whether the
router shed them.  Orphaned events are part of the workload — the
engine rejects them pre-journal and the router counts them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.model.datacenter import CloudSystem
from repro.service.events import (
    ClientAdmit,
    ClientDepart,
    RateUpdate,
    ServiceEvent,
)

#: Generated client ids start here so they never collide with template ids.
GENERATED_ID_BASE = 1_000_000


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of the synthetic arrival process.

    ``arrival_rate`` is bursts per unit time (interarrivals are
    exponential with mean ``1/arrival_rate``); each burst carries
    ``1 + Poisson(burst_mean - 1)`` events split between event types by
    the three weights.  ``num_events`` is the total event budget — the
    last burst is truncated to land on it exactly.
    """

    num_events: int = 1000
    arrival_rate: float = 100.0
    burst_mean: float = 4.0
    admit_weight: float = 0.6
    depart_weight: float = 0.2
    rate_update_weight: float = 0.2
    rate_drift: float = 0.25
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_events < 1:
            raise ConfigurationError("num_events must be >= 1")
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be > 0")
        if self.burst_mean < 1:
            raise ConfigurationError("burst_mean must be >= 1")
        weights = (self.admit_weight, self.depart_weight, self.rate_update_weight)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ConfigurationError(
                "event-type weights must be >= 0 and sum to > 0"
            )
        if not 0.0 <= self.rate_drift < 1.0:
            raise ConfigurationError("rate_drift must lie in [0, 1)")


@dataclass(frozen=True)
class Burst:
    """One arrival instant: everything that lands at time ``at``."""

    at: float
    events: Tuple[ServiceEvent, ...]


def generate_load(system: CloudSystem, config: LoadGenConfig) -> List[Burst]:
    """Synthesize a burst stream using ``system``'s clients as templates.

    Admits clone a template client under a fresh id (perturbing the
    predicted rate by ±``rate_drift``); departures and rate updates
    target a uniformly random *live* generated client (admitted and not
    yet departed).  When no client is live, the draw falls back to an
    admit, so the stream is always well-formed.
    """
    templates = list(system.clients)
    if not templates:
        raise ConfigurationError("load generation needs at least one template client")
    rng = np.random.default_rng(config.seed)
    weights = np.array(
        [config.admit_weight, config.depart_weight, config.rate_update_weight],
        dtype=float,
    )
    weights /= weights.sum()

    live_ids: List[int] = []
    live_rate: Dict[int, float] = {}
    next_id = GENERATED_ID_BASE
    clock = 0.0
    emitted = 0
    bursts: List[Burst] = []

    def make_admit() -> ClientAdmit:
        nonlocal next_id
        template = templates[int(rng.integers(len(templates)))]
        factor = 1.0 + config.rate_drift * float(rng.uniform(-1.0, 1.0))
        client = dataclasses.replace(
            template,
            client_id=next_id,
            rate_predicted=max(1e-9, template.rate_agreed * factor),
        )
        live_ids.append(next_id)
        live_rate[next_id] = template.rate_agreed
        next_id += 1
        return ClientAdmit(client=client)

    def make_event() -> ServiceEvent:
        kind = int(rng.choice(3, p=weights))
        if kind != 0 and not live_ids:
            kind = 0  # nothing live to depart/update: fall back to admit
        if kind == 0:
            return make_admit()
        slot = int(rng.integers(len(live_ids)))
        cid = live_ids[slot]
        if kind == 1:
            # swap-remove keeps the live pool O(1) per draw
            live_ids[slot] = live_ids[-1]
            live_ids.pop()
            del live_rate[cid]
            return ClientDepart(client_id=cid)
        factor = 1.0 + config.rate_drift * float(rng.uniform(-1.0, 1.0))
        return RateUpdate(
            client_id=cid, rate_predicted=max(1e-9, live_rate[cid] * factor)
        )

    while emitted < config.num_events:
        clock += float(rng.exponential(1.0 / config.arrival_rate))
        size = 1 + int(rng.poisson(config.burst_mean - 1.0))
        size = min(size, config.num_events - emitted)
        events = tuple(make_event() for _ in range(size))
        bursts.append(Burst(at=clock, events=events))
        emitted += size
    return bursts


def flatten_bursts(bursts: List[Burst]) -> List[ServiceEvent]:
    """The burst stream as one flat event list (for closed-loop feeding)."""
    return [event for burst in bursts for event in burst.events]
