"""Optimality-gap certification: exact search, dual bounds, gap harness.

The heuristic solver can only ever be benchmarked against itself unless
something *certifies* how far from optimal it lands.  This package
provides that certificate at three scales:

* :mod:`repro.gap.exact` — best-first branch-and-bound over
  client -> cluster assignments with an admissible conditional-dual
  bound; certifies optima (down to a MIP-style ``gap_tolerance``) at
  ``n`` around 20-40 where flat exhaustive enumeration is hopeless;
* :mod:`repro.gap.dual` — a Lagrangian upper bound on the true optimum,
  sound at any scale and cheaper than one heuristic solve at
  ``n = 100000``;
* :mod:`repro.gap.harness` — the seeded cell matrix gluing the tiers
  together and asserting ``dual >= exact >= heuristic`` everywhere;
  backs the ``repro-cloud gap`` CLI subcommand and the
  ``benchmarks/check_gap.py`` CI gate.
"""

from repro.gap.dual import (
    AssignmentBoundModel,
    DualBoundResult,
    assignment_bound_model,
    build_dual_arrays,
    dual_bound,
    linear_majorant,
    refine_conditional_bound,
)
from repro.gap.exact import (
    BranchAndBoundResult,
    branch_and_bound,
    cpsat_cross_check,
)
from repro.gap.harness import (
    GAP_EXPERIMENT_KEY,
    GapCellResult,
    GapCellSpec,
    ScalingProbe,
    default_matrix,
    dual_scaling_probe,
    run_gap_cell,
    run_gap_matrix,
)

__all__ = [
    "AssignmentBoundModel",
    "DualBoundResult",
    "assignment_bound_model",
    "build_dual_arrays",
    "dual_bound",
    "linear_majorant",
    "refine_conditional_bound",
    "BranchAndBoundResult",
    "branch_and_bound",
    "cpsat_cross_check",
    "GAP_EXPERIMENT_KEY",
    "GapCellResult",
    "GapCellSpec",
    "ScalingProbe",
    "default_matrix",
    "dual_scaling_probe",
    "run_gap_cell",
    "run_gap_matrix",
]
