"""The gap harness: seeded matrix of heuristic / exact / dual comparisons.

One *cell* is a single instance pushed through up to three solvers:

* the **heuristic** (:class:`repro.core.allocator.ResourceAllocator`) —
  the paper's force-directed algorithm, the thing being certified;
* the **exact tier** (:func:`repro.gap.exact.branch_and_bound`) — an
  admissible best-first search over client -> cluster assignments that
  certifies the optimum of the builder's ``F`` space down to a MIP-style
  ``gap_tolerance``;
* the **dual tier** (:func:`repro.gap.dual.dual_bound`) — a Lagrangian
  upper bound that is sound at *any* scale, used alone where exact
  search is hopeless (``n`` in the thousands).

Every cell then asserts the sandwich ordering::

    dual_bound  >=  certified optimum  >=  heuristic profit

(up to ``ORDERING_TOLERANCE``) plus a tier-specific quality threshold:
exact cells must come back ``certified`` with the heuristic within
``heuristic_gap_threshold`` of the certified optimum; dual cells must
keep the heuristic within ``dual_gap_threshold`` of the dual bound (the
dual has an intrinsic duality gap, so its threshold is looser — it
guards against regressions, not optimality).

``certified optimum`` is ``max(branch-and-bound best, heuristic)``: the
branch-and-bound is seeded with the heuristic's allocation, so its best
incumbent can never fall below it, but the ``max`` keeps the semantics
explicit — the harness certifies the best *feasible profit anyone
found*, and the certificate says no ``F``-leaf beats it by more than
the tolerance.

**Seeding.**  The harness owns branch ``GAP_EXPERIMENT_KEY = 3`` of the
repo's seeding tree (fig4/fig5/scalability take 0-2, see
:mod:`repro.analysis.runner`).  A cell's instance seed is the uint64
word of ``SeedSequence(root, spawn_key=(3, point, scenario, index))`` —
named children, never seed arithmetic — so the matrix is reproducible
from ``root_seed`` alone and no cell shares a stream with any other
experiment in the repo.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.config import SolverConfig
from repro.core.allocator import ResourceAllocator
from repro.exceptions import ExperimentError
from repro.gap.dual import dual_bound
from repro.gap.exact import branch_and_bound
from repro.model.datacenter import CloudSystem
from repro.workload.generator import generate_system
from repro.workload.scenarios import certification_scenario

#: The gap harness's branch of the repo-wide seeding tree.
GAP_EXPERIMENT_KEY = 3

#: Slack allowed on the sandwich ordering checks — numerical noise only,
#: matches the audit feasibility tolerance.
ORDERING_TOLERANCE = 1e-6

#: Scenario families the matrix can draw cells from.
SCENARIO_BUILDERS: Dict[str, Callable[[int, int], CloudSystem]] = {
    "certification": lambda n, seed: certification_scenario(n, seed),
    "paper": lambda n, seed: generate_system(num_clients=n, seed=seed),
}
_SCENARIO_INDEX = {name: i for i, name in enumerate(sorted(SCENARIO_BUILDERS))}


@dataclass(frozen=True)
class GapCellSpec:
    """One cell of the gap matrix; a pure value, fully determines the run."""

    tier: str  # "exact" | "dual"
    num_clients: int
    scenario: str = "certification"
    point_index: int = 0
    seed_index: int = 0
    root_seed: int = 0
    node_budget: int = 40_000
    time_budget: Optional[float] = None
    relative_gap_tolerance: float = 0.18
    dual_iterations: int = 60
    refine_iterations: int = 8
    heuristic_gap_threshold: float = 0.15
    dual_gap_threshold: float = 0.60

    def __post_init__(self) -> None:
        if self.tier not in ("exact", "dual"):
            raise ExperimentError(
                f"unknown gap tier {self.tier!r}; known: exact, dual"
            )
        if self.scenario not in SCENARIO_BUILDERS:
            raise ExperimentError(
                f"unknown gap scenario {self.scenario!r}; "
                f"known: {sorted(SCENARIO_BUILDERS)}"
            )

    @property
    def key(self) -> str:
        return (
            f"gap/{self.tier}/{self.scenario}/"
            f"n{self.num_clients:05d}/s{self.seed_index:03d}"
        )

    def instance_seed(self) -> int:
        """uint64 word of this cell's node in the seeding tree."""
        child = np.random.SeedSequence(
            self.root_seed,
            spawn_key=(
                GAP_EXPERIMENT_KEY,
                self.point_index,
                _SCENARIO_INDEX[self.scenario],
                self.seed_index,
            ),
        )
        return int(child.generate_state(1, dtype=np.uint64)[0])

    def build_system(self) -> CloudSystem:
        return SCENARIO_BUILDERS[self.scenario](
            self.num_clients, self.instance_seed()
        )


@dataclass
class GapCellResult:
    """Everything one cell measured, plus the checks it failed."""

    spec: GapCellSpec
    instance_seed: int
    heuristic_profit: float
    heuristic_seconds: float
    dual_bound: float
    dual_seconds: float
    dual_iterations: int
    exact_profit: Optional[float] = None  # certified optimum (exact tier)
    exact_bound: Optional[float] = None
    certified: Optional[bool] = None
    gap_tolerance: Optional[float] = None
    nodes_expanded: Optional[int] = None
    leaves_evaluated: Optional[int] = None
    exact_seconds: Optional[float] = None
    termination: Optional[str] = None
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def heuristic_gap(self) -> float:
        """Relative gap of the heuristic against the cell's reference.

        Exact tier: against the certified optimum (a true optimality
        gap, up to the certificate width).  Dual tier: against the dual
        bound (an upper bound on the true gap).
        """
        reference = (
            self.exact_profit if self.exact_profit is not None else self.dual_bound
        )
        if reference <= 0:
            return 0.0 if self.heuristic_profit >= reference else float("inf")
        return max(0.0, (reference - self.heuristic_profit) / reference)

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        parts = [
            f"{self.spec.key:<42} heur={self.heuristic_profit:+.4f}",
            f"dual={self.dual_bound:+.4f}",
        ]
        if self.exact_profit is not None:
            parts.append(
                f"exact={self.exact_profit:+.4f}"
                f"(+/-{self.gap_tolerance:.3f},"
                f" certified={self.certified},"
                f" nodes={self.nodes_expanded})"
            )
        parts.append(f"gap={self.heuristic_gap:.2%}")
        parts.append(f"[{status}]")
        line = "  ".join(parts)
        for failure in self.failures:
            line += f"\n    FAIL: {failure}"
        return line


def run_gap_cell(spec: GapCellSpec) -> GapCellResult:
    """Run one cell: heuristic always, dual always, exact per tier."""
    instance_seed = spec.instance_seed()
    system = spec.build_system()
    if spec.tier == "dual":
        # At dual-tier sizes the full-strength heuristic is the dominant
        # cost of the whole matrix; the bound only needs *a* feasible
        # profit to sandwich, so use the light settings the audit matrix
        # already standardizes on.
        config = SolverConfig(
            seed=spec.seed_index,
            num_initial_solutions=1,
            max_improvement_rounds=2,
        )
    else:
        config = SolverConfig(seed=spec.seed_index)

    started = time.perf_counter()
    heuristic = ResourceAllocator(config).solve(system)
    heuristic_seconds = time.perf_counter() - started

    started = time.perf_counter()
    dual = dual_bound(
        system, iterations=spec.dual_iterations, target=heuristic.profit
    )
    dual_seconds = time.perf_counter() - started

    result = GapCellResult(
        spec=spec,
        instance_seed=instance_seed,
        heuristic_profit=heuristic.profit,
        heuristic_seconds=heuristic_seconds,
        dual_bound=dual.bound,
        dual_seconds=dual_seconds,
        dual_iterations=dual.iterations,
    )

    if spec.tier == "exact":
        assignment = {}
        for client_id in system.client_ids():
            entries = list(heuristic.allocation.entries_of_client(client_id))
            if entries:
                assignment[client_id] = system.cluster_of_server(entries[0])
        tolerance = spec.relative_gap_tolerance * abs(heuristic.profit)
        started = time.perf_counter()
        bnb = branch_and_bound(
            system,
            config,
            node_budget=spec.node_budget,
            time_budget=spec.time_budget,
            dual_iterations=spec.dual_iterations,
            refine_iterations=spec.refine_iterations,
            gap_tolerance=tolerance,
            initial_incumbent=(
                heuristic.profit,
                heuristic.allocation,
                assignment,
            ),
        )
        result.exact_seconds = time.perf_counter() - started
        result.exact_profit = max(bnb.best_profit, heuristic.profit)
        result.exact_bound = bnb.best_bound
        result.certified = bnb.certified
        result.gap_tolerance = tolerance
        result.nodes_expanded = bnb.nodes_expanded
        result.leaves_evaluated = bnb.leaves_evaluated
        result.termination = bnb.termination

    _check_cell(result)
    return result


def _check_cell(result: GapCellResult) -> None:
    """Append every breached invariant/threshold to ``result.failures``."""
    spec = result.spec
    tol = ORDERING_TOLERANCE
    if result.exact_profit is not None:
        if result.dual_bound < result.exact_profit - tol:
            result.failures.append(
                "ordering breach: dual bound "
                f"{result.dual_bound!r} < certified optimum "
                f"{result.exact_profit!r} — the dual is supposed to be "
                "sound, this is a bug"
            )
        if result.exact_profit < result.heuristic_profit - tol:
            result.failures.append(
                "ordering breach: certified optimum "
                f"{result.exact_profit!r} < heuristic "
                f"{result.heuristic_profit!r}"
            )
        if not result.certified:
            result.failures.append(
                f"branch-and-bound failed to certify within "
                f"node_budget={spec.node_budget} "
                f"(termination={result.termination!r}, "
                f"bound={result.exact_bound!r})"
            )
        if result.heuristic_gap > spec.heuristic_gap_threshold:
            result.failures.append(
                f"heuristic gap {result.heuristic_gap:.2%} exceeds the "
                f"exact-tier threshold {spec.heuristic_gap_threshold:.2%}"
            )
    else:
        if result.dual_bound < result.heuristic_profit - tol:
            result.failures.append(
                "ordering breach: dual bound "
                f"{result.dual_bound!r} < heuristic profit "
                f"{result.heuristic_profit!r} — the dual is supposed to "
                "be sound, this is a bug"
            )
        if result.heuristic_gap > spec.dual_gap_threshold:
            result.failures.append(
                f"heuristic-vs-dual gap {result.heuristic_gap:.2%} "
                f"exceeds the dual-tier threshold "
                f"{spec.dual_gap_threshold:.2%}"
            )


def default_matrix(
    root_seed: int = 0,
    exact_sizes: Sequence[int] = (20, 24),
    seeds_per_point: int = 2,
    dual_sizes: Sequence[int] = (1000,),
    node_budget: int = 40_000,
    time_budget: Optional[float] = None,
) -> List[GapCellSpec]:
    """The CI matrix: exact tier at certifiable sizes, dual tier at scale."""
    specs: List[GapCellSpec] = []
    for point, num_clients in enumerate(exact_sizes):
        for seed_index in range(seeds_per_point):
            specs.append(
                GapCellSpec(
                    tier="exact",
                    num_clients=num_clients,
                    scenario="certification",
                    point_index=point,
                    seed_index=seed_index,
                    root_seed=root_seed,
                    node_budget=node_budget,
                    time_budget=time_budget,
                )
            )
    for point, num_clients in enumerate(dual_sizes):
        specs.append(
            GapCellSpec(
                tier="dual",
                num_clients=num_clients,
                scenario="certification",
                point_index=len(exact_sizes) + point,
                seed_index=0,
                root_seed=root_seed,
            )
        )
    return specs


def run_gap_matrix(
    specs: Optional[Iterable[GapCellSpec]] = None,
) -> List[GapCellResult]:
    """Run every cell; never raises on a breach — read ``result.failures``."""
    if specs is None:
        specs = default_matrix()
    return [run_gap_cell(spec) for spec in specs]


@dataclass
class ScalingProbe:
    """Dual-vs-heuristic timing at a scale exact search cannot touch."""

    num_clients: int
    heuristic_seconds: float
    dual_seconds: float
    dual_bound: float
    heuristic_profit: float

    @property
    def speed_ratio(self) -> float:
        """How many dual bounds fit in one heuristic solve (> 1 is good)."""
        if self.dual_seconds <= 0:
            return float("inf")
        return self.heuristic_seconds / self.dual_seconds


def dual_scaling_probe(
    num_clients: int = 1000,
    root_seed: int = 0,
    iterations: int = 60,
) -> ScalingProbe:
    """Time the dual bound against one heuristic solve at ``num_clients``.

    The subsystem's scaling claim: the always-sound upper bound costs
    less than the single heuristic solve it certifies, at any ``n`` the
    heuristic itself can handle.
    """
    spec = GapCellSpec(
        tier="dual",
        num_clients=num_clients,
        scenario="certification",
        point_index=99,
        seed_index=0,
        root_seed=root_seed,
        dual_iterations=iterations,
    )
    system = spec.build_system()
    started = time.perf_counter()
    heuristic = ResourceAllocator(SolverConfig(seed=0)).solve(system)
    heuristic_seconds = time.perf_counter() - started
    started = time.perf_counter()
    dual = dual_bound(system, iterations=iterations, target=heuristic.profit)
    dual_seconds = time.perf_counter() - started
    return ScalingProbe(
        num_clients=num_clients,
        heuristic_seconds=heuristic_seconds,
        dual_seconds=dual_seconds,
        dual_bound=dual.bound,
        heuristic_profit=heuristic.profit,
    )
