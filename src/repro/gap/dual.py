"""Lagrangian dual upper bound on the section-IV profit program.

:mod:`repro.baselines.bounds` certifies profit with a zero-queueing
relaxation that ignores capacity contention and server activation
entirely.  This module prices both: it dualizes the per-server capacity
constraints (4)-(5) with multipliers ``mu >= 0`` while keeping each
server's ON/OFF decision *inside* the Lagrangian (resolved in closed
form), and solves the relaxed problem exactly — so every evaluation of
the dual function ``D(mu)``, at any ``mu >= 0``, converged or not, is a
sound upper bound on the profit of every feasible allocation.
Subgradient steps then tighten the bound; the reported certificate is
the minimum over all iterates.

Derivation sketch (ALGORITHMS.md section 17 has the full argument):

1. **Activation-aware cost floor.**  With ``y_j`` the ON indicator,
   every feasible allocation satisfies ``sum_i phi^p_ij <= (1 - bg^p_j)
   y_j`` (same for bandwidth) and costs at least
   ``P0_j y_j + P1_j sum_i phi^p_ij`` per optional server (servers with
   background load are pinned ON and additionally pay ``P1 bg^p``).
2. **Utility majorant.**  Each utility is replaced by a linear majorant
   ``U(R) <= max(v_hat - beta_hat * R, 0)`` (:func:`linear_majorant`),
   exact for the linear/clipped-linear forms the generator emits.
3. **Lagrangian.**  Multipliers ``mu^p, mu^b >= 0`` on the capacity
   constraints give per-server prices ``p_j = P1_j + mu^p_j`` and
   ``q_j = mu^b_j``, plus a per-server activation term maximized over
   ``y_j in {0, 1}``: ``max(0, mu^p_j + mu^b_j - P0_j)``.  Idle capacity
   therefore never earns dual revenue below its activation cost — this
   is what keeps the bound tight on over-provisioned fleets, where the
   binding economics is which servers to switch ON at all.
4. **Client decomposition.**  The relaxed problem decomposes per client;
   for a fixed traffic split the optimal GPS share per branch is the
   eq.-(16) interior stationary point ``phi* = (a + sqrt(W s / p)) / s``
   (the same closed form ``core/assign.py`` evaluates), giving branch
   value ``g_j(x) = -(lambda x (p_j t^p / C^p_j + q_j t^b / C^b_j)
   + 2 sqrt(lambda^a beta_hat x) (sqrt(p_j t^p / C^p_j)
   + sqrt(q_j t^b / C^b_j)))``.
5. **Vertex argument.**  ``g_j`` is convex in the traffic fraction ``x``
   (linear minus a concave square root, negated), so the per-client
   maximum over the traffic simplex sits on a vertex: all traffic on the
   single best-priced server.  The per-client relaxed value is
   ``max(0, lambda^a v_hat + max_j g_j(1))`` — the outer ``max(0, .)``
   covers the client staying unserved (the leaf builder's fallback when
   a cluster cannot host it) and the clipped utility.

**Server aggregation.**  Servers of the same hardware class in the same
cluster are interchangeable in ``g_j`` (it only reads SKU parameters),
so multipliers are tied per ``(cluster, server class)`` group and the
capacity constraints are summed over each group.  A summed constraint
set is a further relaxation — the bound stays sound — and the
evaluation cost drops from ``O(n * servers)`` to ``O(n * groups)`` per
iteration, which is what lets the bound run on the sharded 100k-client
instances in well under one heuristic solve.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SolverError
from repro.model.datacenter import CloudSystem
from repro.model.utility import (
    ClippedLinearUtility,
    LinearUtility,
    UtilityClass,
)

#: Cell budget per evaluation chunk (clients x groups), keeps peak memory flat.
MAX_CHUNK_CELLS = 4_000_000

#: Default starting price for the bandwidth multipliers.  The bandwidth
#: cost term has an infinite one-sided derivative at ``mu^b = 0`` (the
#: sqrt), so starting exactly at zero would freeze a clamped subgradient;
#: any positive start works, and soundness never depends on it.
DEFAULT_BANDWIDTH_START = 0.25


def linear_majorant(utility_class: UtilityClass) -> Tuple[float, float]:
    """``(v_hat, beta_hat)`` with ``U(R) <= max(v_hat - beta_hat * R, 0)``.

    Exact (the majorant is the utility itself) for
    :class:`LinearUtility` and :class:`ClippedLinearUtility`.  Every
    other non-increasing form falls back to the sound constant majorant
    ``(U(0), 0)``: step and piecewise-linear utilities are flat at their
    peak before the first breakpoint and may stay positive after the
    last one, so no sloped linear function can majorize them exactly.
    """
    fn = utility_class.function
    if isinstance(fn, (LinearUtility, ClippedLinearUtility)):
        return fn.base_value, fn.slope
    return fn.value(0.0), 0.0


@dataclass(frozen=True)
class _DualArrays:
    """Vectorized instance view: clients flat, servers grouped by SKU."""

    # clients, in system order
    lam_agreed: np.ndarray
    lam_pred: np.ndarray
    t_proc: np.ndarray
    t_comm: np.ndarray
    v_hat: np.ndarray
    beta_hat: np.ndarray
    # (cluster, server-class) groups
    cap_p: np.ndarray
    cap_b: np.ndarray
    power_fixed: np.ndarray  # P0 per group member
    power_util: np.ndarray  # P1 per group member
    pinned_free_p: np.ndarray  # sum of (1 - bg^p_j) over pinned-ON members
    pinned_free_b: np.ndarray  # sum of (1 - bg^b_j) over pinned-ON members
    optional_count: np.ndarray  # members free to stay OFF
    pinned_cost: float  # sum of (P0_j + P1_j bg^p_j) over pinned-ON servers
    group_cluster: np.ndarray  # cluster index per group
    cluster_ids: Tuple[int, ...]
    client_ids: Tuple[int, ...]
    group_keys: Tuple[Tuple[int, int], ...]  # (cluster_id, class index)


def build_dual_arrays(system: CloudSystem) -> _DualArrays:
    clients = system.clients
    majorants = [linear_majorant(c.utility_class) for c in clients]
    cluster_ids = tuple(system.cluster_ids())
    cluster_index = {cid: pos for pos, cid in enumerate(cluster_ids)}

    groups: Dict[Tuple[int, int], Dict[str, float]] = {}
    pinned_cost = 0.0
    for cluster in system.clusters:
        for server in cluster:
            sku = server.server_class
            key = (cluster.cluster_id, sku.index)
            slot = groups.setdefault(
                key,
                {
                    "cap_p": sku.cap_processing,
                    "cap_b": sku.cap_bandwidth,
                    "p0": sku.power_fixed,
                    "p1": sku.power_per_util,
                    "pinned_free_p": 0.0,
                    "pinned_free_b": 0.0,
                    "optional": 0.0,
                },
            )
            if server.has_background_load:
                # Pinned ON: pays its fixed + background cost regardless.
                pinned_cost += (
                    sku.power_fixed
                    + sku.power_per_util * server.background_processing
                )
                slot["pinned_free_p"] += server.free_processing_share
                slot["pinned_free_b"] += server.free_bandwidth_share
            else:
                slot["optional"] += 1.0
    if not groups:
        raise SolverError("cannot build a dual bound for an empty fleet")
    keys = sorted(groups)
    return _DualArrays(
        lam_agreed=np.array([c.rate_agreed for c in clients]),
        lam_pred=np.array([c.rate_predicted for c in clients]),
        t_proc=np.array([c.t_proc for c in clients]),
        t_comm=np.array([c.t_comm for c in clients]),
        v_hat=np.array([m[0] for m in majorants]),
        beta_hat=np.array([m[1] for m in majorants]),
        cap_p=np.array([groups[k]["cap_p"] for k in keys]),
        cap_b=np.array([groups[k]["cap_b"] for k in keys]),
        power_fixed=np.array([groups[k]["p0"] for k in keys]),
        power_util=np.array([groups[k]["p1"] for k in keys]),
        pinned_free_p=np.array([groups[k]["pinned_free_p"] for k in keys]),
        pinned_free_b=np.array([groups[k]["pinned_free_b"] for k in keys]),
        optional_count=np.array([groups[k]["optional"] for k in keys]),
        pinned_cost=pinned_cost,
        group_cluster=np.array([cluster_index[k[0]] for k in keys]),
        cluster_ids=cluster_ids,
        client_ids=tuple(system.client_ids()),
        group_keys=tuple(keys),
    )


def _capacity_terms(
    arrays: _DualArrays, mu_p: np.ndarray, mu_b: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Constant part of ``D(mu)`` and each group's priced-in capacity.

    Pinned servers always sell their free capacity to the dual; optional
    servers sell theirs only when the price beats their activation cost
    (the closed-form ``max`` over ``y_j``).
    """
    activation = mu_p + mu_b - arrays.power_fixed
    active = activation > 0.0
    constant = (
        float(mu_p @ arrays.pinned_free_p)
        + float(mu_b @ arrays.pinned_free_b)
        + float((arrays.optional_count * np.maximum(activation, 0.0)).sum())
        - arrays.pinned_cost
    )
    return constant, active


def _queueing_floor(w: np.ndarray, price: np.ndarray) -> np.ndarray:
    """Minimum queueing-plus-headroom cost of one served client on one
    branch of one server, with GPS headroom capped at a full server.

    Writing ``h = phi - lambda r`` for the headroom share, the branch's
    M/M/1 delay is ``r / h`` and the combined cost is ``price * h +
    w / h`` with ``w = lambda^a beta_hat r``.  Unconstrained, AM-GM gives
    ``2 sqrt(price w)`` (the eq.-(16) stationary point) — but ``h <= 1``
    physically, so when ``w > price`` the true floor is ``price + w``
    (buy the whole server, eat the residual delay), which is strictly
    larger.  Without the cap a zero price would buy infinite capacity
    and erase the queueing cost entirely — the dominant looseness on
    under-priced resources.  Traffic splitting cannot beat this floor:
    the per-branch cost is concave in the branch's traffic share (the
    ``sqrt`` piece joins the linear piece with matching slope ``w`` at
    ``w = price``), so the minimum over the traffic simplex sits on a
    vertex — one branch.
    """
    return np.where(
        w <= price, 2.0 * np.sqrt(price * w), price + w
    )


def _branch_values(
    arrays: _DualArrays,
    rows: slice,
    price_p: np.ndarray,
    price_q: np.ndarray,
) -> np.ndarray:
    """``g_ij(1)`` for a chunk of clients: value of routing everything to
    one group-``j`` server under prices ``(p, q)``, queueing priced via
    the linear-majorant slope and the capped-headroom floor."""
    rp = arrays.t_proc[rows, None] / arrays.cap_p[None, :]
    rb = arrays.t_comm[rows, None] / arrays.cap_b[None, :]
    linear = arrays.lam_pred[rows, None] * (price_p * rp + price_q * rb)
    root = (arrays.lam_agreed[rows] * arrays.beta_hat[rows])[:, None]
    curve = _queueing_floor(root * rp, price_p) + _queueing_floor(
        root * rb, price_q
    )
    return -(linear + curve)


def _evaluate(
    arrays: _DualArrays,
    mu_p: np.ndarray,
    mu_b: np.ndarray,
    max_chunk_cells: int = MAX_CHUNK_CELLS,
    allowed: Optional[np.ndarray] = None,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """``D(mu)`` plus a (clamped) subgradient of it.

    The value is exact — that is where soundness lives.  The direction
    clamps each chosen share to [0, 1] so a zero price cannot launch an
    unbounded step; a clamped direction only affects convergence speed,
    never the validity of any evaluated bound.

    ``allowed`` (clients x groups, bool) restricts each client's group
    choice — the conditional dual of a partial client -> cluster
    assignment.  Restricting a maximization can only lower the value, so
    the conditional ``D`` stays a sound bound for every completion of the
    partial assignment.
    """
    num_clients = arrays.lam_agreed.shape[0]
    num_groups = arrays.cap_p.shape[0]
    price_p = arrays.power_util + mu_p
    price_q = mu_b

    total_value = 0.0
    load_p = np.zeros(num_groups)
    load_b = np.zeros(num_groups)
    chunk = max(1, max_chunk_cells // max(1, num_groups))
    for start in range(0, num_clients, chunk):
        rows = slice(start, min(start + chunk, num_clients))
        g = _branch_values(arrays, rows, price_p, price_q)
        if allowed is not None:
            g = np.where(allowed[rows], g, -np.inf)
        j_star = np.argmax(g, axis=1)
        picked = g[np.arange(g.shape[0]), j_star]
        value = arrays.lam_agreed[rows] * arrays.v_hat[rows] + picked
        served = value > 0.0
        total_value += float(value[served].sum())

        if served.any():
            idx = j_star[served]
            lam = arrays.lam_pred[rows][served]
            lam_a = arrays.lam_agreed[rows][served]
            beta = arrays.beta_hat[rows][served]
            rp = arrays.t_proc[rows][served] / arrays.cap_p[idx]
            rb = arrays.t_comm[rows][served] / arrays.cap_b[idx]
            # Optimal headroom: sqrt(w / price) interior, capped at one
            # full server (matches the _queueing_floor pieces).
            w_p = lam_a * beta * rp
            w_b = lam_a * beta * rb
            with np.errstate(divide="ignore", invalid="ignore"):
                head_p = np.where(
                    w_p <= price_p[idx],
                    np.sqrt(
                        np.where(price_p[idx] > 0.0, w_p / price_p[idx], 0.0)
                    ),
                    1.0,
                )
                head_b = np.where(
                    w_b <= price_q[idx],
                    np.sqrt(
                        np.where(price_q[idx] > 0.0, w_b / price_q[idx], 0.0)
                    ),
                    1.0,
                )
            phi_p = lam * rp + head_p
            phi_b = lam * rb + head_b
            np.add.at(load_p, idx, np.clip(phi_p, 0.0, 1.0))
            np.add.at(load_b, idx, np.clip(phi_b, 0.0, 1.0))

    constant, active = _capacity_terms(arrays, mu_p, mu_b)
    sold_p = arrays.pinned_free_p + arrays.optional_count * active
    sold_b = arrays.pinned_free_b + arrays.optional_count * active
    grad_p = sold_p - load_p
    grad_b = sold_b - load_b
    return constant + total_value, grad_p, grad_b


@dataclass
class DualBoundResult:
    """A sound profit certificate plus the trace that produced it.

    ``bound`` is the minimum of ``trace`` — every trace entry is itself a
    valid upper bound, so the trace doubles as the duality-gap trajectory
    against any feasible profit.
    """

    bound: float
    trace: List[float]
    mu_processing: np.ndarray
    mu_bandwidth: np.ndarray
    iterations: int
    runtime_seconds: float
    group_keys: Tuple[Tuple[int, int], ...]

    def gap_to(self, feasible_profit: float) -> float:
        """Relative duality gap against a feasible profit (>= 0 if sound)."""
        scale = max(abs(self.bound), abs(feasible_profit), 1e-12)
        return (self.bound - feasible_profit) / scale


def dual_bound(
    system: CloudSystem,
    iterations: int = 60,
    target: Optional[float] = None,
    step_scale: float = 1.0,
    initial_bandwidth_price: float = DEFAULT_BANDWIDTH_START,
    max_chunk_cells: int = MAX_CHUNK_CELLS,
    arrays: Optional[_DualArrays] = None,
) -> DualBoundResult:
    """Subgradient-optimized Lagrangian upper bound on achievable profit.

    Steps follow a Polyak-style rule towards ``target`` (a known feasible
    profit, e.g. the heuristic's) or towards zero without one, moderated
    by a trust coefficient that halves whenever an iterate overshoots and
    grows while iterates keep descending — the duality gap is unknown a
    priori, so a raw Polyak step (which assumes the target is attainable)
    can oscillate.  Every iterate's ``D(mu)`` lands in ``trace`` and the
    returned ``bound`` is their minimum, so a bad step can only waste an
    iteration, never invalidate the certificate.
    """
    if iterations < 1:
        raise SolverError(f"dual_bound needs iterations >= 1, got {iterations}")
    started = time.perf_counter()
    arrays = arrays if arrays is not None else build_dual_arrays(system)
    num_groups = arrays.cap_p.shape[0]
    mu_p = np.zeros(num_groups)
    mu_b = np.full(num_groups, max(0.0, initial_bandwidth_price))

    trace: List[float] = []
    best = math.inf
    best_mu = (mu_p.copy(), mu_b.copy())
    trust = step_scale
    previous = math.inf
    for step_index in range(iterations):
        value, grad_p, grad_b = _evaluate(
            arrays, mu_p, mu_b, max_chunk_cells=max_chunk_cells
        )
        trace.append(value)
        if value < best:
            best = value
            best_mu = (mu_p.copy(), mu_b.copy())
        if step_index == iterations - 1:
            break
        if value > previous:
            trust *= 0.5
            # Restart the walk from the best point seen: oscillation past
            # it carries no information worth keeping.
            mu_p, mu_b = best_mu[0].copy(), best_mu[1].copy()
        else:
            trust = min(trust * 1.2, 2.0 * step_scale)
        previous = value
        norm_sq = float(grad_p @ grad_p + grad_b @ grad_b)
        if norm_sq <= 1e-18:
            break  # relaxed solution saturates the fleet exactly; done
        overshoot = best - (target if target is not None else 0.0)
        if overshoot <= 0.0:
            overshoot = 0.01 * abs(best) + 1e-9
        step = trust * overshoot / norm_sq
        mu_p = np.maximum(mu_p - step * grad_p, 0.0)
        mu_b = np.maximum(mu_b - step * grad_b, 0.0)

    return DualBoundResult(
        bound=best,
        trace=trace,
        mu_processing=best_mu[0],
        mu_bandwidth=best_mu[1],
        iterations=len(trace),
        runtime_seconds=time.perf_counter() - started,
        group_keys=arrays.group_keys,
    )


def refine_conditional_bound(
    arrays: _DualArrays,
    allowed: np.ndarray,
    mu_p: np.ndarray,
    mu_b: np.ndarray,
    iterations: int = 6,
    incumbent: float = -math.inf,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Tighten the conditional dual of a partial assignment.

    ``allowed`` restricts each client's group choice (see
    :func:`_evaluate`); ``(mu_p, mu_b)`` warm-start the multipliers —
    in branch-and-bound, the parent node's point, which is usually
    near-optimal for the child too.  Runs a handful of Polyak steps
    aimed at ``incumbent`` (a known feasible profit: the perfect target,
    since proving the conditional bound below it is all a pruner needs)
    and returns ``(bound, mu_p, mu_b)`` at the best point seen.  Exits
    early the moment the bound crosses the incumbent.

    Every returned bound is some ``D(mu)`` of the restricted instance,
    hence sound for every completion of the partial assignment.
    """
    cur_p, cur_b = mu_p.copy(), mu_b.copy()
    best = math.inf
    best_mu = (cur_p, cur_b)
    trust = 1.0
    previous = math.inf
    for step_index in range(max(1, iterations)):
        value, grad_p, grad_b = _evaluate(arrays, cur_p, cur_b, allowed=allowed)
        if value < best:
            best = value
            best_mu = (cur_p.copy(), cur_b.copy())
        if best <= incumbent or step_index == iterations - 1:
            break
        trust = trust * 0.5 if value > previous else min(trust * 1.2, 2.0)
        previous = value
        norm_sq = float(grad_p @ grad_p + grad_b @ grad_b)
        if norm_sq <= 1e-18:
            break
        overshoot = value - incumbent
        if not math.isfinite(overshoot) or overshoot <= 0.0:
            overshoot = 0.01 * abs(value) + 1e-9
        step = trust * overshoot / norm_sq
        cur_p = np.maximum(cur_p - step * grad_p, 0.0)
        cur_b = np.maximum(cur_b - step * grad_b, 0.0)
    return best, best_mu[0], best_mu[1]


@dataclass(frozen=True)
class AssignmentBoundModel:
    """Separable per-(client, cluster) caps for branch-and-bound pruning.

    For any feasible allocation whose client -> cluster map is ``A``:
    ``profit <= constant + sum_i contrib[i, A(i)]``, and unassigned
    clients may be scored with their row maximum.  ``contrib`` is
    elementwise ``>= 0`` because every client may stay unserved.
    """

    contrib: np.ndarray  # (num_clients, num_clusters)
    constant: float
    client_ids: Tuple[int, ...]
    cluster_ids: Tuple[int, ...]

    def root_bound(self) -> float:
        return self.constant + float(self.contrib.max(axis=1).sum())


def assignment_bound_model(
    system: CloudSystem,
    mu_p: Optional[Sequence[float]] = None,
    mu_b: Optional[Sequence[float]] = None,
) -> AssignmentBoundModel:
    """Admissible per-node bound ingredients for :mod:`repro.gap.exact`.

    Each cell is the *minimum* of two upper bounds on the client's
    ``revenue - priced cost`` inside one cluster, both written against
    the same per-client cost attribution
    ``sum_j ((P1_j + mu^p_j) phi^p_ij + mu^b_j phi^b_ij)`` (the fleet's
    activation and pinned-capacity terms live in ``constant``), so the
    minimum is valid:

    * the zero-queueing bound of ``baselines.bounds`` restricted to the
      cluster (true utility at the cluster's best-hardware service time,
      minus the committed-capacity floor: stability forces
      ``sum_j phi^p_ij C^p_j >= lambda_i t^p_i`` and likewise for
      bandwidth, priced at the cluster's cheapest ``(P1 + mu^p) / C^p``
      and ``mu^b / C^b`` rates), and
    * the closed-form relaxed value ``max_j g_ij`` from the Lagrangian
      decomposition at multiplier ``mu`` (capacity-priced queueing).

    With ``mu`` from a converged :func:`dual_bound`, ``root_bound()``
    matches ``D(mu)`` refined by the zero-queueing term.
    """
    arrays = build_dual_arrays(system)
    num_groups = arrays.cap_p.shape[0]
    mu_p_arr = (
        np.zeros(num_groups) if mu_p is None else np.asarray(mu_p, dtype=float)
    )
    mu_b_arr = (
        np.zeros(num_groups) if mu_b is None else np.asarray(mu_b, dtype=float)
    )
    if mu_p_arr.shape != (num_groups,) or mu_b_arr.shape != (num_groups,):
        raise SolverError(
            "multiplier shape mismatch: expected "
            f"({num_groups},), got {mu_p_arr.shape} / {mu_b_arr.shape}"
        )
    price_p = arrays.power_util + mu_p_arr
    price_q = mu_b_arr

    num_clients = arrays.lam_agreed.shape[0]
    num_clusters = len(arrays.cluster_ids)
    g = _branch_values(arrays, slice(0, num_clients), price_p, price_q)

    contrib = np.zeros((num_clients, num_clusters))
    for cluster_pos in range(num_clusters):
        members = np.flatnonzero(arrays.group_cluster == cluster_pos)
        best_cap_p = float(arrays.cap_p[members].max())
        best_cap_b = float(arrays.cap_b[members].max())
        cheapest_p = float(
            ((arrays.power_util[members] + mu_p_arr[members]) / arrays.cap_p[members]).min()
        )
        cheapest_b = float((mu_b_arr[members] / arrays.cap_b[members]).min())
        relaxed = arrays.lam_agreed * arrays.v_hat + g[:, members].max(axis=1)
        r_min = arrays.t_proc / best_cap_p + arrays.t_comm / best_cap_b
        for row, client in enumerate(system.clients):
            zero_queue = (
                client.rate_agreed
                * client.utility_class.function.value(float(r_min[row]))
                - client.rate_predicted
                * (
                    client.t_proc * cheapest_p
                    + client.t_comm * cheapest_b
                )
            )
            contrib[row, cluster_pos] = max(
                0.0, min(zero_queue, float(relaxed[row]))
            )

    constant, _ = _capacity_terms(arrays, mu_p_arr, mu_b_arr)
    return AssignmentBoundModel(
        contrib=contrib,
        constant=constant,
        client_ids=arrays.client_ids,
        cluster_ids=arrays.cluster_ids,
    )
