"""Exact branch-and-bound over client -> cluster assignments.

:mod:`repro.baselines.exhaustive` walks all ``K ** N`` assignments and is
dead at ``n`` around 12.  This solver searches the same space — same leaf
evaluator, same ground truth — but best-first with an admissible bound,
so it certifies optima at ``n`` around 20-40 instead.

**Search space and ground truth.**  A *leaf* is a full client -> cluster
map ``A``; its value ``F(A)`` is the profit of the allocation built by
:func:`repro.baselines.assignment.build_allocation_for_assignment` (the
heuristic's own cluster-level machinery: ``Assign_Distribute`` per
client, squeeze fallback, one polish round) — bit-identical to what
``exhaustive_search`` scores, which is what makes the two comparable
bitwise wherever both complete.

**Node bound.**  Each node's bound is its *conditional Lagrangian dual*
(:func:`repro.gap.dual.refine_conditional_bound`): clients committed by
the prefix may only buy capacity in their assigned cluster, open clients
keep free choice, and a few warm-started subgradient steps (from the
parent's multipliers) re-price the crowding the prefix creates.  A
fixed-multiplier separable bound cannot do this — at the root dual
optimum, prices equalize marginal values across clusters and every
client looks indifferent, so no decomposable bound discriminates
prefixes.  Restricting a client's choice only shrinks the relaxed
feasible set, so the conditional dual stays admissible for every
completion; and since a child's feasible set is contained in its
parent's, ``min(parent_bound, child_dual)`` is admissible and gives
monotone non-increasing bounds down every path.

**Certification semantics.**  ``certified=True`` means the frontier was
exhausted down to ``gap_tolerance``: no assignment's ``F`` value exceeds
``best_profit + gap_tolerance``.  The default tolerance is zero — exact
optimality.  A positive tolerance is the MIP-gap notion every
branch-and-bound solver ships: the Lagrangian bound has an intrinsic
duality gap (activation integrality plus the utility majorant), so on
larger instances the frontier can be emptied only down to that gap —
still a sound two-sided certificate, just with an explicit width.  With
an
``initial_incumbent`` seeded from the full heuristic (whose converged
local search may beat the one-shot leaf builder), ``best_profit`` is
``max(seed, best leaf)`` — still a feasible profit and still an upper
envelope of every ``F`` leaf, i.e. exactly the "certified optimum" the
gap harness reports.  Leave the seed out to recover pure ``F``-space
optimality (the property tests do).

A node budget and wall-clock budget bound the search; on exhaustion the
result carries the open frontier (resume with ``resume_from=``) and
``best_bound``, a sound upper bound on the true optimum, so even a
truncated run yields a certificate interval
``[best_profit, best_bound]``.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.assignment import build_allocation_for_assignment
from repro.config import SolverConfig
from repro.exceptions import SearchSpaceError, SolverError
from repro.gap.dual import (
    assignment_bound_model,
    build_dual_arrays,
    dual_bound,
    refine_conditional_bound,
)
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit

#: Default cap on expanded nodes (pops from the frontier).
DEFAULT_NODE_BUDGET = 200_000

#: Frontier entry:
#: (-bound, -depth, tiebreak, prefix clusters, mu_processing, mu_bandwidth).
_Node = Tuple[float, int, int, Tuple[int, ...], np.ndarray, np.ndarray]


@dataclass
class BranchAndBoundResult:
    """Outcome of one (possibly resumed) branch-and-bound run."""

    best_profit: float
    best_allocation: Optional[Allocation]
    best_assignment: Optional[Dict[int, int]]
    certified: bool
    best_bound: float  # sound upper bound on the true optimum
    nodes_expanded: int
    leaves_evaluated: int
    termination: str  # "optimal" | "node_budget" | "time_budget"
    runtime_seconds: float
    root_bound: float
    seeded: bool
    frontier: List[_Node] = field(default_factory=list, repr=False)

    @property
    def nodes_evaluated(self) -> int:
        """Search effort in the harness's uniform vocabulary (see
        :class:`repro.baselines.exhaustive.ExhaustiveResult`)."""
        return self.nodes_expanded

    def gap_interval(self) -> Tuple[float, float]:
        """``[best feasible profit, certified upper bound]``."""
        return self.best_profit, self.best_bound


def _client_order(system: CloudSystem) -> List[int]:
    """Branch on heavy clients first: committing a large load is what
    shifts the conditional dual's crowding prices, so spending shallow
    tree levels on high-load clients makes bounds diverge (and prune)
    earliest.  Deterministic: ties fall back to client position."""
    load = [
        client.rate_predicted * (client.t_proc + client.t_comm)
        for client in system.clients
    ]
    return sorted(range(len(load)), key=lambda row: (-load[row], row))


def _leaf_value(
    system: CloudSystem,
    assignment: Dict[int, int],
    config: SolverConfig,
    polish: bool,
) -> Tuple[float, Allocation]:
    state = build_allocation_for_assignment(system, assignment, config, polish=polish)
    profit = evaluate_profit(
        system, state.allocation, require_all_served=False
    ).total_profit
    return profit, state.allocation


def branch_and_bound(
    system: CloudSystem,
    config: Optional[SolverConfig] = None,
    *,
    node_budget: int = DEFAULT_NODE_BUDGET,
    time_budget: Optional[float] = None,
    polish: bool = True,
    dual_iterations: int = 48,
    dual_target: Optional[float] = None,
    refine_iterations: int = 6,
    gap_tolerance: float = 0.0,
    initial_incumbent: Optional[Tuple[float, Optional[Allocation], Dict[int, int]]] = None,
    resume_from: Optional[BranchAndBoundResult] = None,
) -> BranchAndBoundResult:
    """Best-first branch-and-bound; see the module docstring.

    ``dual_iterations`` controls the root multiplier optimization;
    ``refine_iterations`` the per-child conditional-dual steps (more
    steps = tighter child bounds = fewer nodes, at more time per node).
    ``gap_tolerance`` is the absolute MIP-gap: subtrees that cannot beat
    the incumbent by more than it are pruned, and ``certified=True``
    asserts optimality up to it (0.0 = exact).
    ``initial_incumbent`` is ``(profit, allocation, assignment)`` — pass
    the heuristic's solution for maximum pruning, or nothing for pure
    assignment-space optimality.  ``resume_from`` continues a
    budget-terminated run; it must be called with the same system and
    bound parameters (the frontier stores bound values computed under
    them).
    """
    config = config or SolverConfig()
    started = time.perf_counter()
    if node_budget < 1:
        raise SolverError(f"node_budget must be >= 1, got {node_budget}")
    if gap_tolerance < 0.0:
        raise SolverError(f"gap_tolerance must be >= 0, got {gap_tolerance}")

    arrays = build_dual_arrays(system)
    dual = dual_bound(
        system,
        iterations=max(1, dual_iterations),
        target=dual_target,
        arrays=arrays,
    )
    model = assignment_bound_model(system, dual.mu_processing, dual.mu_bandwidth)
    root_bound = min(dual.bound, model.root_bound())

    order = _client_order(system)
    ordered_ids = [arrays.client_ids[row] for row in order]
    contrib = model.contrib[order, :]  # (n, K) in branching order
    num_clients, num_clusters = contrib.shape
    cluster_ids = arrays.cluster_ids
    group_cluster = arrays.group_cluster
    num_groups = group_cluster.shape[0]

    best_profit = -math.inf
    best_allocation: Optional[Allocation] = None
    best_assignment: Optional[Dict[int, int]] = None
    seeded = False

    def consider(profit: float, allocation: Optional[Allocation], assignment: Dict[int, int]) -> None:
        nonlocal best_profit, best_allocation, best_assignment
        if profit > best_profit:
            best_profit = profit
            best_allocation = allocation
            best_assignment = dict(assignment)

    nodes_expanded = 0
    leaves_evaluated = 0

    if resume_from is not None:
        heap: List[_Node] = list(resume_from.frontier)
        heapq.heapify(heap)
        consider(
            resume_from.best_profit,
            resume_from.best_allocation,
            resume_from.best_assignment or {},
        )
        seeded = resume_from.seeded
        counter = itertools.count(
            max((entry[2] for entry in heap), default=0) + 1
        )
    else:
        # Greedy dive: the per-client argmax assignment is a real leaf and
        # a decent incumbent, so pruning is armed from the first pop.
        greedy = {
            cid: cluster_ids[int(np.argmax(contrib[row_pos])) ]
            for row_pos, cid in enumerate(ordered_ids)
        }
        profit, allocation = _leaf_value(system, greedy, config, polish)
        leaves_evaluated += 1
        consider(profit, allocation, greedy)
        heap = [
            (-root_bound, 0, 0, (), dual.mu_processing, dual.mu_bandwidth)
        ]
        counter = itertools.count(1)

    if initial_incumbent is not None:
        seed_profit, seed_allocation, seed_assignment = initial_incumbent
        if seed_profit > best_profit:
            seeded = True
            consider(seed_profit, seed_allocation, seed_assignment)

    termination = "optimal"
    while heap:
        top_bound = -heap[0][0]
        if top_bound <= best_profit + gap_tolerance:
            heap = []  # nothing left beats incumbent + tolerance: certified
            break
        if nodes_expanded >= node_budget:
            termination = "node_budget"
            break
        if time_budget is not None and time.perf_counter() - started > time_budget:
            termination = "time_budget"
            break
        neg_bound, _neg_depth, _tie, prefix, mu_p, mu_b = heapq.heappop(heap)
        nodes_expanded += 1
        depth = len(prefix)
        if -neg_bound <= best_profit + gap_tolerance:
            continue  # incumbent improved since this node was pushed
        if depth == num_clients:
            assignment = {
                ordered_ids[pos]: cluster_ids[cluster_pos]
                for pos, cluster_pos in enumerate(prefix)
            }
            profit, allocation = _leaf_value(system, assignment, config, polish)
            leaves_evaluated += 1
            consider(profit, allocation, assignment)
            continue
        # Group mask of this node's prefix; each child restricts one more
        # client (the one at `depth` in branching order) to one cluster.
        mask = np.ones((num_clients, num_groups), dtype=bool)
        for pos, cluster_pos in enumerate(prefix):
            mask[order[pos]] = group_cluster == cluster_pos
        child_row = order[depth]
        for cluster_pos in range(num_clusters):
            mask[child_row] = group_cluster == cluster_pos
            refined, child_mu_p, child_mu_b = refine_conditional_bound(
                arrays,
                mask,
                mu_p,
                mu_b,
                iterations=refine_iterations,
                incumbent=best_profit + gap_tolerance,
            )
            child_bound = min(-neg_bound, refined)
            if child_bound > best_profit + gap_tolerance:
                heapq.heappush(
                    heap,
                    (
                        -child_bound,
                        -(depth + 1),
                        next(counter),
                        prefix + (cluster_pos,),
                        child_mu_p,
                        child_mu_b,
                    ),
                )

    certified = not heap and termination == "optimal"
    open_bound = -heap[0][0] if heap else -math.inf
    return BranchAndBoundResult(
        best_profit=best_profit,
        best_allocation=best_allocation,
        best_assignment=best_assignment,
        certified=certified,
        best_bound=(
            best_profit + gap_tolerance
            if certified
            else max(best_profit, open_bound)
        ),
        nodes_expanded=nodes_expanded,
        leaves_evaluated=leaves_evaluated,
        termination=termination,
        runtime_seconds=time.perf_counter() - started,
        root_bound=root_bound,
        seeded=seeded,
        frontier=heap,
    )


#: Refuse to enumerate more than this many assignments through CP-SAT.
CPSAT_MAX_ASSIGNMENTS = 4096


def cpsat_cross_check(
    system: CloudSystem,
    config: Optional[SolverConfig] = None,
    *,
    max_assignments: int = CPSAT_MAX_ASSIGNMENTS,
    polish: bool = True,
):
    """Cross-check the search space through OR-tools CP-SAT (optional).

    Builds the one-hot client -> cluster model in CP-SAT and enumerates
    every feasible assignment through the solver's solution callback,
    scoring each with the same leaf evaluator as branch-and-bound — an
    independent enumeration engine agreeing with B&B/exhaustive on the
    smallest instances.  Returns an
    :class:`repro.baselines.exhaustive.ExhaustiveResult`.

    Raises :class:`SolverError` when ``ortools`` is not installed (it is
    an optional dependency; nothing else in the library needs it) and
    :class:`SearchSpaceError` beyond ``max_assignments``.
    """
    try:
        from ortools.sat.python import cp_model
    except ImportError as exc:  # pragma: no cover - exercised where installed
        raise SolverError(
            "ortools is not installed; the CP-SAT gap backend is optional — "
            "use branch_and_bound or exhaustive_search instead"
        ) from exc

    from repro.baselines.exhaustive import ExhaustiveResult

    config = config or SolverConfig()
    client_ids = system.client_ids()
    cluster_ids = system.cluster_ids()
    total = len(cluster_ids) ** len(client_ids)
    if total > max_assignments:
        raise SearchSpaceError(
            f"{total} assignments exceed the CP-SAT cross-check cap "
            f"({max_assignments}); it exists to verify the smallest instances",
            total_assignments=total,
            cap=max_assignments,
        )

    model = cp_model.CpModel()
    choice = {
        cid: [model.NewBoolVar(f"x_{cid}_{k}") for k in cluster_ids]
        for cid in client_ids
    }
    for cid in client_ids:
        model.AddExactlyOne(choice[cid])

    best = {"profit": -math.inf, "assignment": None, "allocation": None, "tried": 0}

    class _Collector(cp_model.CpSolverSolutionCallback):
        def on_solution_callback(self) -> None:
            assignment = {
                cid: cluster_ids[
                    next(
                        k
                        for k, var in enumerate(choice[cid])
                        if self.Value(var)
                    )
                ]
                for cid in client_ids
            }
            profit, allocation = _leaf_value(system, assignment, config, polish)
            best["tried"] += 1
            if profit > best["profit"]:
                best["profit"] = profit
                best["assignment"] = assignment
                best["allocation"] = allocation

    solver = cp_model.CpSolver()
    solver.parameters.enumerate_all_solutions = True
    solver.Solve(model, _Collector())
    return ExhaustiveResult(
        best_profit=best["profit"],
        best_allocation=best["allocation"],
        best_assignment=best["assignment"],
        assignments_tried=best["tried"],
    )
