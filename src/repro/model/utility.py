"""SLA utility functions.

The paper models each client's SLA as a *non-increasing* utility function of
the mean response time of its requests.  The revenue earned from a client is
``lambda_agreed * U(R)``: utility is a per-request price and the agreed
arrival rate converts it into a revenue rate (section III: "the agreed
request arrival rates are used to determine the profit").

Four concrete forms are provided:

* :class:`LinearUtility` — ``v - beta * R``, the linear form the paper uses
  inside its initial-solution optimization (section V.A).  May go negative.
* :class:`ClippedLinearUtility` — ``max(v - beta * R, 0)``; the price can
  never become a penalty.  This is the default used by the workload
  generator.
* :class:`PiecewiseLinearUtility` — a general non-increasing piecewise
  linear curve, covering soft-deadline SLAs.
* :class:`StepUtility` — discrete utility levels as in Zhang & Ardagna
  (reference [9] of the paper), covering gold/silver/bronze response-time
  tiers.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import ModelError


class UtilityFunction(ABC):
    """A non-increasing mapping from mean response time to per-request price."""

    @abstractmethod
    def value(self, response_time: float) -> float:
        """Per-request price when the mean response time is ``response_time``."""

    @abstractmethod
    def slope_magnitude(self) -> float:
        """A representative |dU/dR|, used by heuristics to rank SLA urgency.

        For the linear forms this is exact; for piecewise forms it is the
        steepest segment.  The modified Proportional-Share baseline sorts
        clients by this value (section VI).
        """

    def value_at_infinite_delay(self) -> float:
        """Utility when the client is effectively unserved."""
        return self.value(math.inf)

    def __call__(self, response_time: float) -> float:
        return self.value(response_time)


@dataclass(frozen=True)
class LinearUtility(UtilityFunction):
    """``U(R) = base_value - slope * R`` (unclipped, may be negative)."""

    base_value: float
    slope: float

    def __post_init__(self) -> None:
        if self.slope < 0:
            raise ModelError(f"utility slope must be >= 0, got {self.slope}")

    def value(self, response_time: float) -> float:
        if math.isinf(response_time):
            return -math.inf if self.slope > 0 else self.base_value
        return self.base_value - self.slope * response_time

    def slope_magnitude(self) -> float:
        return self.slope


@dataclass(frozen=True)
class ClippedLinearUtility(UtilityFunction):
    """``U(R) = max(base_value - slope * R, 0)``."""

    base_value: float
    slope: float

    def __post_init__(self) -> None:
        if self.slope < 0:
            raise ModelError(f"utility slope must be >= 0, got {self.slope}")
        if self.base_value < 0:
            raise ModelError(f"base_value must be >= 0, got {self.base_value}")

    def value(self, response_time: float) -> float:
        if math.isinf(response_time):
            return 0.0
        return max(self.base_value - self.slope * response_time, 0.0)

    def slope_magnitude(self) -> float:
        return self.slope

    def zero_crossing(self) -> float:
        """Response time beyond which the client pays nothing."""
        if self.slope == 0:
            return math.inf
        return self.base_value / self.slope


@dataclass(frozen=True)
class PiecewiseLinearUtility(UtilityFunction):
    """Non-increasing piecewise-linear utility through ``(time, value)`` points.

    The curve is flat at ``points[0].value`` before the first breakpoint and
    flat at ``points[-1].value`` after the last one.
    """

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ModelError("need at least two breakpoints")
        times = [t for t, _ in self.points]
        values = [v for _, v in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ModelError("breakpoint times must be strictly increasing")
        if any(b > a for a, b in zip(values, values[1:])):
            raise ModelError("utility values must be non-increasing")

    def value(self, response_time: float) -> float:
        if response_time <= self.points[0][0]:
            return self.points[0][1]
        if response_time >= self.points[-1][0]:
            return self.points[-1][1]
        for (t0, v0), (t1, v1) in zip(self.points, self.points[1:]):
            if t0 <= response_time <= t1:
                frac = (response_time - t0) / (t1 - t0)
                return v0 + frac * (v1 - v0)
        raise AssertionError("unreachable: breakpoints cover the range")

    def slope_magnitude(self) -> float:
        steepest = 0.0
        for (t0, v0), (t1, v1) in zip(self.points, self.points[1:]):
            steepest = max(steepest, (v0 - v1) / (t1 - t0))
        return steepest


@dataclass(frozen=True)
class StepUtility(UtilityFunction):
    """Discrete utility levels: ``levels[n] = (deadline, value)``.

    The price is the value of the first level whose deadline is met;
    responses slower than every deadline earn ``fallback`` (default 0).
    """

    levels: Tuple[Tuple[float, float], ...]
    fallback: float = 0.0

    def __post_init__(self) -> None:
        if not self.levels:
            raise ModelError("need at least one level")
        deadlines = [d for d, _ in self.levels]
        values = [v for _, v in self.levels]
        if any(b <= a for a, b in zip(deadlines, deadlines[1:])):
            raise ModelError("deadlines must be strictly increasing")
        if any(b > a for a, b in zip(values, values[1:])):
            raise ModelError("values must be non-increasing")
        if values and self.fallback > values[-1]:
            raise ModelError("fallback must not exceed the last level's value")

    def value(self, response_time: float) -> float:
        for deadline, val in self.levels:
            if response_time <= deadline:
                return val
        return self.fallback

    def slope_magnitude(self) -> float:
        # Steepest drop across adjacent levels, as a finite-difference slope.
        steepest = 0.0
        previous_deadline = 0.0
        previous_value = self.levels[0][1]
        for deadline, val in self.levels:
            width = deadline - previous_deadline
            if width > 0:
                steepest = max(steepest, (previous_value - val) / width)
            previous_deadline, previous_value = deadline, val
        return steepest


@dataclass(frozen=True)
class UtilityClass:
    """A class of clients sharing one SLA shape (section III).

    The paper's experiments use 5 utility classes; each client references a
    class by index.  ``linear_approximation`` is the ``v - beta * R`` form
    the heuristic optimizes internally (section V.A fixes the utility "by a
    linear form"); for :class:`LinearUtility`/:class:`ClippedLinearUtility`
    members it is exact.
    """

    index: int
    function: UtilityFunction
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ModelError(f"utility class index must be >= 0, got {self.index}")

    def linear_approximation(self) -> LinearUtility:
        """Linear ``v - beta * R`` surrogate used inside the optimizer.

        The surrogate is a pure function of this (frozen) class, yet the
        hot paths ask for it on every candidate evaluation — so the first
        result is cached on the instance.  ``object.__setattr__`` sidesteps
        the frozen-dataclass guard; ``__eq__``/``__hash__`` ignore
        ``__dict__`` extras, and pickling simply carries the memo along.
        """
        cached = self.__dict__.get("_linear_memo")
        if cached is not None:
            return cached
        if isinstance(self.function, LinearUtility):
            result = self.function
        else:
            base = self.function.value(0.0)
            result = LinearUtility(
                base_value=base, slope=self.function.slope_magnitude()
            )
        object.__setattr__(self, "_linear_memo", result)
        return result
