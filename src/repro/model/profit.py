"""Analytical response-time and profit evaluation (eq. (1)-(2) of the paper).

This module is the library's single source of truth for "how good is an
allocation".  Every solver — the paper's heuristic, the baselines, the
Monte Carlo reference — is scored by :func:`evaluate_profit` on the
allocation it returns; no solver grades itself.

Model recap (section III):

* each (client i, server j) pair with traffic portion ``alpha_ij`` runs two
  tandem M/M/1 queues (processing then communication) whose service rates
  are ``phi^p_ij * C^p_j / t^p_i`` and ``phi^b_ij * C^b_j / t^b_i``;
* the client's mean response time is the alpha-weighted sum of the two
  sojourn times over the servers it touches (eq. (1));
* revenue is ``lambda^a_i * U_i(R_i)`` — the *agreed* rate prices the SLA
  while the *predicted* rate drives the queues;
* cost is ``P0_j + P1_j * (processing utilization)`` for each ON server.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.model.allocation import Allocation, ServerAllocation
from repro.model.client import Client
from repro.model.datacenter import CloudSystem
from repro.model.validation import Violation, find_violations


def mm1_response_time(service_rate: float, arrival_rate: float) -> float:
    """Mean sojourn time of an M/M/1 queue; ``inf`` when unstable.

    ``W = 1 / (mu - lambda)`` for ``mu > lambda >= 0``.  Rather than raising
    on an unstable configuration, this returns ``inf`` so that search
    algorithms can score the state as arbitrarily bad and move on.
    """
    if arrival_rate < 0:
        raise ValueError(f"arrival_rate must be >= 0, got {arrival_rate}")
    if service_rate <= arrival_rate:
        return math.inf
    return 1.0 / (service_rate - arrival_rate)


def response_time_of_entries(
    system: CloudSystem,
    client: Client,
    entries: Dict[int, ServerAllocation],
    arrival_rate: float,
) -> float:
    """Eq. (1) on a pre-fetched ``server_id -> entry`` mapping.

    Shared kernel of :func:`client_response_time`, :func:`evaluate_profit`
    and the incremental :class:`~repro.core.delta.DeltaScorer`, so all
    three agree bit-for-bit.  The two M/M/1 sojourn times are inlined
    (rather than calling :func:`mm1_response_time` per queue) because this
    sits in the innermost loop of every accept-if-better gate.
    """
    if not entries:
        return math.inf
    total = 0.0
    total_alpha = 0.0
    for server_id, entry in entries.items():
        alpha = entry.alpha
        if alpha <= 0.0:
            continue
        server = system.server(server_id)
        branch_arrivals = alpha * arrival_rate
        mu_p = entry.phi_p * server.cap_processing / client.t_proc
        mu_b = entry.phi_b * server.cap_bandwidth / client.t_comm
        if mu_p <= branch_arrivals or mu_b <= branch_arrivals:
            return math.inf
        sojourn = 1.0 / (mu_p - branch_arrivals) + 1.0 / (mu_b - branch_arrivals)
        total += alpha * sojourn
        total_alpha += alpha
    if total_alpha <= 0.0:
        return math.inf
    return total


def client_response_time(
    system: CloudSystem,
    allocation: Allocation,
    client_id: int,
    rate: Optional[float] = None,
) -> float:
    """Mean response time of a client under the allocation (eq. (1)).

    ``rate`` overrides the arrival rate driving the queues; by default the
    client's *predicted* rate is used, matching how the paper provisions.
    Returns ``inf`` when the client serves no traffic or any touched queue
    is unstable; returns 0 for a client with all-zero traffic portions.
    """
    client = system.client(client_id)
    arrival_rate = client.rate_predicted if rate is None else rate
    if arrival_rate < 0:
        raise ValueError(f"arrival_rate must be >= 0, got {arrival_rate}")
    return response_time_of_entries(
        system, client, allocation.entries_of_client(client_id), arrival_rate
    )


@dataclass(frozen=True)
class ClientOutcome:
    """Evaluation of one client under an allocation."""

    client_id: int
    response_time: float
    utility_value: float
    revenue: float
    served: bool


@dataclass(frozen=True)
class ServerOutcome:
    """Evaluation of one server under an allocation."""

    server_id: int
    is_on: bool
    utilization_processing: float
    utilization_bandwidth: float
    storage_used: float
    cost: float


@dataclass
class ProfitBreakdown:
    """Full scoring of an allocation: totals, per-entity detail, violations."""

    total_profit: float
    total_revenue: float
    total_cost: float
    clients: Dict[int, ClientOutcome] = field(default_factory=dict)
    servers: Dict[int, ServerOutcome] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return not self.violations

    @property
    def num_servers_on(self) -> int:
        return sum(1 for outcome in self.servers.values() if outcome.is_on)

    def profit_or_neg_inf(self) -> float:
        """Profit for feasible allocations, ``-inf`` otherwise.

        This is the objective value search algorithms should compare: an
        infeasible state never beats a feasible one.
        """
        return self.total_profit if self.feasible else -math.inf

    def summary(self) -> str:
        status = "feasible" if self.feasible else f"{len(self.violations)} violations"
        return (
            f"profit={self.total_profit:.4f} (revenue={self.total_revenue:.4f}, "
            f"cost={self.total_cost:.4f}), servers ON={self.num_servers_on}, "
            f"{status}"
        )


def evaluate_profit(
    system: CloudSystem,
    allocation: Allocation,
    require_all_served: bool = True,
    check_feasibility: bool = True,
) -> ProfitBreakdown:
    """Score an allocation: total profit with a full per-entity breakdown.

    Unserved clients earn their utility at infinite delay (0 for the
    clipped forms) — they produce no revenue but the provider also pays no
    cost for them.  When ``require_all_served`` is True (the default, and
    the paper's setting), an unserved client additionally marks the
    allocation infeasible.
    """
    total_revenue = 0.0
    client_outcomes: Dict[int, ClientOutcome] = {}
    for client in system.clients:
        cid = client.client_id
        # One entries fetch per client; every term below reuses it.
        entries = allocation.entries_of_client(cid)
        total_alpha = sum(entry.alpha for entry in entries.values())
        served = bool(entries) and total_alpha > 0.0
        response = (
            response_time_of_entries(system, client, entries, client.rate_predicted)
            if served
            else math.inf
        )
        utility_value = client.utility_class.function.value(response)
        revenue = client.rate_agreed * utility_value
        if math.isinf(response) and math.isinf(utility_value):
            # Unclipped linear utility at infinite delay: treat as zero
            # revenue rather than poisoning the totals with -inf.
            revenue = 0.0
            utility_value = 0.0
        total_revenue += revenue
        client_outcomes[cid] = ClientOutcome(
            client_id=cid,
            response_time=response,
            utility_value=utility_value,
            revenue=revenue,
            served=served,
        )

    total_cost = 0.0
    server_outcomes: Dict[int, ServerOutcome] = {}
    for server in system.servers():
        sid = server.server_id
        used_p, used_b = allocation.server_share_totals(sid)
        util_p = used_p + server.background_processing
        util_b = used_b + server.background_bandwidth
        storage = server.background_storage
        for client_id in allocation.clients_on_server(sid):
            entry = allocation.entry(client_id, sid)
            if entry is not None and entry.alpha > 0.0:
                storage += system.client(client_id).storage_req
        is_on = allocation.server_is_used(sid) or server.has_background_load
        cost = 0.0
        if is_on:
            cost = server.server_class.power_fixed + server.server_class.power_per_util * min(
                util_p, 1.0
            )
        total_cost += cost
        server_outcomes[sid] = ServerOutcome(
            server_id=sid,
            is_on=is_on,
            utilization_processing=util_p,
            utilization_bandwidth=util_b,
            storage_used=storage,
            cost=cost,
        )

    violations: List[Violation] = []
    if check_feasibility:
        violations = find_violations(
            system, allocation, require_all_served=require_all_served
        )

    return ProfitBreakdown(
        total_profit=total_revenue - total_cost,
        total_revenue=total_revenue,
        total_cost=total_cost,
        clients=client_outcomes,
        servers=server_outcomes,
        violations=violations,
    )
