"""Feasibility checking for allocations (compatibility shim).

The constraint predicates moved to :mod:`repro.audit.invariants`, the
single source of truth for every paper constraint and every numerical
tolerance.  This module re-exports the public names so existing imports
(``from repro.model.validation import find_violations``) keep working;
new code should import from :mod:`repro.audit.invariants` directly.
"""

from __future__ import annotations

from repro.audit.invariants import (  # noqa: F401
    FEASIBILITY_TOLERANCE,
    Violation,
    find_violations,
    validate_allocation,
)

__all__ = [
    "FEASIBILITY_TOLERANCE",
    "Violation",
    "find_violations",
    "validate_allocation",
]
