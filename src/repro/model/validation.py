"""Feasibility checking for allocations.

The optimization problem's hard constraints (section IV, (3)-(12)) are
checked here, independently of any solver.  Two entry points:

* :func:`find_violations` returns a list of human-readable
  :class:`Violation` records (empty == feasible);
* :func:`validate_allocation` raises
  :class:`~repro.exceptions.InfeasibleAllocationError` on the first report.

Solvers never self-certify: the experiment harness always validates the
returned allocation with this module before reporting profit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.exceptions import InfeasibleAllocationError
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem

#: Numerical slack for share sums and alpha sums.  Shares are produced by
#: bisection so exact equality cannot be expected.
FEASIBILITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Violation:
    """One violated constraint, tagged with the paper's constraint label."""

    constraint: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.constraint}] {self.subject}: {self.detail}"


def find_violations(
    system: CloudSystem,
    allocation: Allocation,
    require_all_served: bool = True,
    tolerance: float = FEASIBILITY_TOLERANCE,
) -> List[Violation]:
    """Check every hard constraint; return all violations found.

    ``require_all_served=False`` relaxes constraint (6) to "alpha sums to 1
    *for clients that have any entries*", which is what partial states
    inside the greedy constructor need.
    """
    violations: List[Violation] = []

    # Constraint (6) + (10): every client assigned to exactly one cluster,
    # with its traffic fully dispatched inside that cluster.
    for client in system.clients:
        cid = client.client_id
        if not allocation.is_assigned(cid):
            if require_all_served:
                violations.append(
                    Violation("(6)", f"client {cid}", "not assigned to any cluster")
                )
            continue
        cluster_id = allocation.cluster_of[cid]
        if cluster_id not in system.cluster_ids():
            violations.append(
                Violation("(6)", f"client {cid}", f"unknown cluster {cluster_id}")
            )
            continue
        entries = allocation.entries_of_client(cid)
        if not entries:
            if require_all_served:
                violations.append(
                    Violation("(5)", f"client {cid}", "assigned but serves no traffic")
                )
            continue
        for server_id in entries:
            if system.cluster_of_server(server_id) != cluster_id:
                violations.append(
                    Violation(
                        "(6)",
                        f"client {cid}",
                        f"entry on server {server_id} outside assigned "
                        f"cluster {cluster_id}",
                    )
                )
        total_alpha = allocation.total_alpha(cid)
        if abs(total_alpha - 1.0) > tolerance:
            violations.append(
                Violation(
                    "(5)",
                    f"client {cid}",
                    f"traffic portions sum to {total_alpha:.9f}, expected 1",
                )
            )

    # Constraint (4): per-server share capacity, including background load.
    # Constraint (8): disk reservations fit.
    for server in system.servers():
        sid = server.server_id
        used_p, used_b = allocation.server_share_totals(sid)
        used_p += server.background_processing
        used_b += server.background_bandwidth
        if used_p > 1.0 + tolerance:
            violations.append(
                Violation(
                    "(4)",
                    f"server {sid}",
                    f"processing shares sum to {used_p:.9f} > 1",
                )
            )
        if used_b > 1.0 + tolerance:
            violations.append(
                Violation(
                    "(4)",
                    f"server {sid}",
                    f"bandwidth shares sum to {used_b:.9f} > 1",
                )
            )
        storage = server.background_storage
        for client_id in allocation.clients_on_server(sid):
            entry = allocation.entry(client_id, sid)
            if entry is not None and entry.alpha > 0.0:
                storage += system.client(client_id).storage_req
        if storage > server.cap_storage + tolerance:
            violations.append(
                Violation(
                    "(8)",
                    f"server {sid}",
                    f"storage demand {storage:.9f} exceeds capacity "
                    f"{server.cap_storage:.9f}",
                )
            )

    # Constraint (7)/queue stability: any served traffic needs shares large
    # enough to keep both M/M/1 queues stable (open inequality).
    for client_id, server_id, entry in allocation.iter_entries():
        if entry.alpha <= 0.0:
            continue
        client = system.client(client_id)
        server = system.server(server_id)
        arrival = entry.alpha * client.rate_predicted
        mu_p = entry.phi_p * server.cap_processing / client.t_proc
        mu_b = entry.phi_b * server.cap_bandwidth / client.t_comm
        if mu_p <= arrival:
            violations.append(
                Violation(
                    "(7)",
                    f"client {client_id} on server {server_id}",
                    f"processing queue unstable: mu={mu_p:.9f} <= "
                    f"lambda={arrival:.9f}",
                )
            )
        if mu_b <= arrival:
            violations.append(
                Violation(
                    "(7)",
                    f"client {client_id} on server {server_id}",
                    f"communication queue unstable: mu={mu_b:.9f} <= "
                    f"lambda={arrival:.9f}",
                )
            )

    return violations


def validate_allocation(
    system: CloudSystem,
    allocation: Allocation,
    require_all_served: bool = True,
    tolerance: float = FEASIBILITY_TOLERANCE,
) -> None:
    """Raise :class:`InfeasibleAllocationError` if any constraint is violated."""
    violations = find_violations(
        system, allocation, require_all_served=require_all_served, tolerance=tolerance
    )
    if violations:
        summary = "; ".join(str(v) for v in violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise InfeasibleAllocationError(f"{len(violations)} violations: {summary}{more}")
