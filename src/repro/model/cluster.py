"""Cluster: a named group of (possibly heterogeneous) servers.

Clusters matter for two reasons in the paper's formulation:

* constraint (6): all of a client's requests must be served inside a single
  cluster (so cluster-level managers can absorb small load changes locally);
* the distributed solver runs one agent per cluster in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.exceptions import ModelError
from repro.model.server import Server, ServerClass


@dataclass
class Cluster:
    """A cluster with a stable ordering of servers.

    Servers are indexed globally (``server_id``) and must all carry this
    cluster's id.  The helper views (grouping by server class, capacity
    totals) are what the heuristic's per-class memoization relies on.
    """

    cluster_id: int
    servers: List[Server] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if self.cluster_id < 0:
            raise ModelError(f"cluster_id must be >= 0, got {self.cluster_id}")
        seen_ids = set()
        for server in self.servers:
            if server.cluster_id != self.cluster_id:
                raise ModelError(
                    f"server {server.server_id} carries cluster_id "
                    f"{server.cluster_id}, expected {self.cluster_id}"
                )
            if server.server_id in seen_ids:
                raise ModelError(f"duplicate server_id {server.server_id}")
            seen_ids.add(server.server_id)

    def __len__(self) -> int:
        return len(self.servers)

    def __iter__(self) -> Iterator[Server]:
        return iter(self.servers)

    def server_ids(self) -> List[int]:
        return [server.server_id for server in self.servers]

    def servers_by_class(self) -> Dict[int, List[Server]]:
        """Servers grouped by server-class index (stable order within groups)."""
        groups: Dict[int, List[Server]] = {}
        for server in self.servers:
            groups.setdefault(server.server_class.index, []).append(server)
        return groups

    def server_classes(self) -> List[ServerClass]:
        """Distinct server classes present, ordered by class index."""
        by_index: Dict[int, ServerClass] = {}
        for server in self.servers:
            by_index.setdefault(server.server_class.index, server.server_class)
        return [by_index[idx] for idx in sorted(by_index)]

    def total_capacity(self) -> Tuple[float, float, float]:
        """Aggregate (processing, bandwidth, storage) capacity of the cluster."""
        total_p = sum(s.cap_processing for s in self.servers)
        total_b = sum(s.cap_bandwidth for s in self.servers)
        total_m = sum(s.cap_storage for s in self.servers)
        return (total_p, total_b, total_m)

    def free_capacity(self) -> Tuple[float, float, float]:
        """Aggregate capacity net of background load."""
        free_p = sum(s.free_processing_share * s.cap_processing for s in self.servers)
        free_b = sum(s.free_bandwidth_share * s.cap_bandwidth for s in self.servers)
        free_m = sum(s.free_storage for s in self.servers)
        return (free_p, free_b, free_m)
