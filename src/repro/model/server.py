"""Server classes and server instances.

A *server class* (section III) is a hardware SKU described by three
capacities and a two-term operating-cost model:

* ``cap_processing`` (``C^p``) — processing capacity, normalized units.
* ``cap_bandwidth``  (``C^b``) — communication capacity.
* ``cap_storage``    (``C^m``) — local disk capacity.
* ``power_fixed``    (``P0``)  — constant cost of keeping the server ON.
* ``power_per_util`` (``P1``)  — cost linear in processing utilization
  (``cost = P0 + P1 * sum_i phi^p_ij`` while ON, 0 while OFF).

A *server* is one physical instance of a class placed inside a cluster.  A
server may carry a *background load*: resources already committed to
previously placed clients or to applications outside the cloud system
(section V.A "this initial state can be a result of the resources allocated
to the previously assigned and running clients ... or other applications").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ModelError


@dataclass(frozen=True)
class ServerClass:
    """A hardware SKU; see module docstring for the field semantics."""

    index: int
    cap_processing: float
    cap_bandwidth: float
    cap_storage: float
    power_fixed: float
    power_per_util: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ModelError(f"server class index must be >= 0, got {self.index}")
        for label, cap in (
            ("cap_processing", self.cap_processing),
            ("cap_bandwidth", self.cap_bandwidth),
            ("cap_storage", self.cap_storage),
        ):
            if cap <= 0:
                raise ModelError(f"{label} must be > 0, got {cap}")
        if self.power_fixed < 0:
            raise ModelError(f"power_fixed must be >= 0, got {self.power_fixed}")
        if self.power_per_util < 0:
            raise ModelError(
                f"power_per_util must be >= 0, got {self.power_per_util}"
            )

    def cost_when_on(self, processing_utilization: float) -> float:
        """Operating cost of one ON server at the given processing utilization."""
        if not 0.0 <= processing_utilization <= 1.0 + 1e-9:
            raise ModelError(
                "processing utilization must lie in [0, 1], got "
                f"{processing_utilization}"
            )
        return self.power_fixed + self.power_per_util * processing_utilization


@dataclass(frozen=True)
class Server:
    """One physical server instance inside a cluster.

    ``background_*`` fields are shares/amounts already consumed before this
    decision epoch (the paper's cluster "initial state"); they reduce the
    capacity available to the allocator but still count toward utilization
    cost, and a server with any background processing share is considered
    ON regardless of new assignments.
    """

    server_id: int
    cluster_id: int
    server_class: ServerClass
    background_processing: float = 0.0
    background_bandwidth: float = 0.0
    background_storage: float = 0.0

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ModelError(f"server_id must be >= 0, got {self.server_id}")
        if self.cluster_id < 0:
            raise ModelError(f"cluster_id must be >= 0, got {self.cluster_id}")
        for label, share in (
            ("background_processing", self.background_processing),
            ("background_bandwidth", self.background_bandwidth),
        ):
            if not 0.0 <= share <= 1.0:
                raise ModelError(f"{label} must lie in [0, 1], got {share}")
        if not 0.0 <= self.background_storage <= self.server_class.cap_storage:
            raise ModelError(
                "background_storage must lie in [0, cap_storage], got "
                f"{self.background_storage}"
            )

    @property
    def cap_processing(self) -> float:
        return self.server_class.cap_processing

    @property
    def cap_bandwidth(self) -> float:
        return self.server_class.cap_bandwidth

    @property
    def cap_storage(self) -> float:
        return self.server_class.cap_storage

    @property
    def free_processing_share(self) -> float:
        """Processing share still assignable to cloud clients (0..1)."""
        return 1.0 - self.background_processing

    @property
    def free_bandwidth_share(self) -> float:
        return 1.0 - self.background_bandwidth

    @property
    def free_storage(self) -> float:
        """Absolute storage still assignable to cloud clients."""
        return self.server_class.cap_storage - self.background_storage

    @property
    def has_background_load(self) -> bool:
        return (
            self.background_processing > 0.0
            or self.background_bandwidth > 0.0
            or self.background_storage > 0.0
        )
