"""Allocation state: the optimization problem's decision variables.

An :class:`Allocation` holds, for one decision epoch:

* ``x_ik`` — which cluster each client is assigned to (``cluster_of``);
* ``alpha_ij`` — the portion of each client's requests sent to each server;
* ``phi^p_ij / phi^b_ij`` — the GPS shares of processing / bandwidth each
  server grants each client.

The disk share ``phi^m_ij`` is not stored: per constraint (8) it is fully
determined as ``m_i / C^m_j`` on every server with ``alpha_ij > 0``.

Server on/off state (``y_j``) is derived: a server is ON iff it carries any
positive share (constraint (3) with an infinitesimal epsilon) or any
background load.

The container keeps a reverse index (server -> clients) so the heuristic's
per-server moves are O(clients on that server), not O(all clients).

Every mutation — structural (entries, cluster bindings) or an in-place
edit of a stored entry's ``alpha``/``phi_p``/``phi_b`` — bumps a cheap
**mutation epoch** counter.  Incremental observers (the
:class:`~repro.core.delta.DeltaScorer`) record the epoch of the last
mutation they were notified about and refuse to answer queries once the
allocation has moved past it, turning the silent-staleness failure mode
into a loud :class:`~repro.exceptions.SolverError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ModelError


class _EpochBox:
    """Shared mutation counter: an Allocation and its stored entries all
    bump the same cell, so observers need one integer compare to detect
    *any* edit — including attribute writes that bypass the container."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


#: ServerAllocation fields whose in-place edits count as mutations.
_TRACKED_FIELDS = frozenset({"alpha", "phi_p", "phi_b"})


@dataclass
class ServerAllocation:
    """The (alpha, phi^p, phi^b) triple for one client on one server."""

    alpha: float
    phi_p: float
    phi_b: float

    def __post_init__(self) -> None:
        self.validate()

    def __setattr__(self, name: str, value: object) -> None:
        object.__setattr__(self, name, value)
        # Entries stored in an Allocation carry its epoch box; writing a
        # decision field in place is a mutation the owner must see.
        if name in _TRACKED_FIELDS:
            box = getattr(self, "_epoch_box", None)
            if box is not None:
                box.value += 1

    def validate(self) -> None:
        if not 0.0 <= self.alpha <= 1.0 + 1e-12:
            raise ModelError(f"alpha must lie in [0, 1], got {self.alpha}")
        if self.phi_p < 0.0 or self.phi_b < 0.0:
            raise ModelError(
                f"shares must be >= 0, got phi_p={self.phi_p}, phi_b={self.phi_b}"
            )

    def copy(self) -> "ServerAllocation":
        return ServerAllocation(self.alpha, self.phi_p, self.phi_b)


class AllocationRows(NamedTuple):
    """Struct-of-arrays snapshot of an :class:`Allocation`.

    Two parallel tables: the *assignment* table binds clients to clusters
    (``x_ik``) and the *entry* table holds one row per (client, server)
    decision triple, in the allocation's client-major iteration order.
    The arrays pickle as flat buffers, concatenate with
    :meth:`concatenate`, and rebuild into dict form with
    :meth:`Allocation.from_rows` — which is what makes shard shipping and
    shard merging O(rows) NumPy work instead of per-client dict traversal.
    """

    assign_clients: np.ndarray  # int64 (A,) client ids with a cluster binding
    assign_clusters: np.ndarray  # int64 (A,) their cluster ids
    entry_clients: np.ndarray  # int64 (E,) client id per entry row
    entry_servers: np.ndarray  # int64 (E,) server id per entry row
    alpha: np.ndarray  # float64 (E,)
    phi_p: np.ndarray  # float64 (E,)
    phi_b: np.ndarray  # float64 (E,)

    @property
    def num_assigned(self) -> int:
        return int(self.assign_clients.shape[0])

    @property
    def num_entries(self) -> int:
        return int(self.entry_clients.shape[0])

    @staticmethod
    def concatenate(parts: Sequence["AllocationRows"]) -> "AllocationRows":
        """Merge row tables whose client sets are disjoint (shard merge)."""
        if not parts:
            return _empty_rows()
        return AllocationRows(
            *(np.concatenate([getattr(p, f) for p in parts]) for f in AllocationRows._fields)
        )


def _empty_rows() -> AllocationRows:
    return AllocationRows(
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
        np.empty(0, dtype=np.float64),
        np.empty(0, dtype=np.float64),
    )


class Allocation:
    """Mutable allocation state for one decision epoch.

    The class enforces *structural* consistency (a client has entries only
    on servers, never dangling reverse-index rows); *numerical* feasibility
    (share sums, stability, alpha summing to 1) is checked separately by
    :mod:`repro.model.validation` so that solvers may pass through
    transient infeasible states while rearranging.
    """

    def __init__(self) -> None:
        self.cluster_of: Dict[int, int] = {}
        self._entries: Dict[int, Dict[int, ServerAllocation]] = {}
        self._clients_on_server: Dict[int, Set[int]] = {}
        self._epoch = _EpochBox()

    @property
    def mutation_epoch(self) -> int:
        """Monotone counter bumped by every mutation (see module docs)."""
        return self._epoch.value

    # -- client/cluster assignment ---------------------------------------

    def assign_client(self, client_id: int, cluster_id: int) -> None:
        """Bind a client to a cluster (its per-server entries start empty).

        Re-assigning to a different cluster drops all existing entries,
        because constraint (6) forbids serving from two clusters at once.
        """
        previous = self.cluster_of.get(client_id)
        if previous is not None and previous != cluster_id:
            self.clear_client(client_id)
        self.cluster_of[client_id] = cluster_id
        self._epoch.value += 1

    def unassign_client(self, client_id: int) -> None:
        """Remove a client from the allocation entirely."""
        self.clear_client(client_id)
        self.cluster_of.pop(client_id, None)
        self._epoch.value += 1

    def clear_client(self, client_id: int) -> None:
        """Drop all per-server entries of a client, keeping its cluster binding."""
        for server_id in list(self._entries.get(client_id, ())):
            self.remove_entry(client_id, server_id)

    def is_assigned(self, client_id: int) -> bool:
        return client_id in self.cluster_of

    # -- per-server entries ------------------------------------------------

    def set_entry(
        self,
        client_id: int,
        server_id: int,
        alpha: float,
        phi_p: float,
        phi_b: float,
    ) -> None:
        """Create or overwrite the (alpha, phi) entry of a client on a server."""
        if client_id not in self.cluster_of:
            raise ModelError(
                f"client {client_id} must be assigned to a cluster before "
                "receiving server entries"
            )
        entry = ServerAllocation(alpha=alpha, phi_p=phi_p, phi_b=phi_b)
        entry._epoch_box = self._epoch
        self._entries.setdefault(client_id, {})[server_id] = entry
        self._clients_on_server.setdefault(server_id, set()).add(client_id)
        self._epoch.value += 1

    def remove_entry(self, client_id: int, server_id: int) -> None:
        per_client = self._entries.get(client_id)
        if per_client is None or server_id not in per_client:
            return
        del per_client[server_id]
        if not per_client:
            del self._entries[client_id]
        clients = self._clients_on_server.get(server_id)
        if clients is not None:
            clients.discard(client_id)
            if not clients:
                del self._clients_on_server[server_id]
        self._epoch.value += 1

    def entry(self, client_id: int, server_id: int) -> Optional[ServerAllocation]:
        return self._entries.get(client_id, {}).get(server_id)

    def entries_of_client(self, client_id: int) -> Dict[int, ServerAllocation]:
        """server_id -> entry for one client (read-only view by convention)."""
        return self._entries.get(client_id, {})

    def clients_on_server(self, server_id: int) -> Set[int]:
        return self._clients_on_server.get(server_id, set())

    def iter_entries(self) -> Iterator[Tuple[int, int, ServerAllocation]]:
        """Yield (client_id, server_id, entry) across the whole allocation."""
        for client_id, per_client in self._entries.items():
            for server_id, entry in per_client.items():
                yield client_id, server_id, entry

    # -- aggregates ---------------------------------------------------------

    def server_share_totals(self, server_id: int) -> Tuple[float, float]:
        """(sum phi^p, sum phi^b) granted by a server to cloud clients."""
        total_p = 0.0
        total_b = 0.0
        for client_id in self._clients_on_server.get(server_id, ()):
            entry = self._entries[client_id][server_id]
            total_p += entry.phi_p
            total_b += entry.phi_b
        return total_p, total_b

    def total_alpha(self, client_id: int) -> float:
        """Sum of the client's traffic portions (1.0 when fully served)."""
        return sum(e.alpha for e in self._entries.get(client_id, {}).values())

    def server_is_used(self, server_id: int) -> bool:
        """True when any client entry with positive share/traffic sits here."""
        for client_id in self._clients_on_server.get(server_id, ()):
            entry = self._entries[client_id][server_id]
            if entry.alpha > 0.0 or entry.phi_p > 0.0 or entry.phi_b > 0.0:
                return True
        return False

    def used_server_ids(self) -> Set[int]:
        return {sid for sid in self._clients_on_server if self.server_is_used(sid)}

    def assigned_client_ids(self) -> List[int]:
        return list(self.cluster_of)

    def clients_in_cluster(self, cluster_id: int) -> List[int]:
        return [cid for cid, kid in self.cluster_of.items() if kid == cluster_id]

    def canonicalize(self) -> Set[int]:
        """Rebuild internal dict/set ordering into sorted (client, server) order.

        Two allocations that compare ``==`` can still *iterate* differently
        (dict insertion order, set hashing history), which makes any
        float-summing observer history-dependent at the ulp level.  The
        online service calls this at every event boundary so that a
        snapshot/restore cycle continues bit-identically.  Entry objects
        are preserved (their epoch boxes stay valid); the mutation epoch is
        bumped because observers' cached iteration assumptions died.

        Returns the ids of clients whose per-server entry order actually
        changed: any observer caching an order-dependent float over those
        entries (the delta scorer's per-client revenue term) must rederive
        it, or it keeps a value summed in the dead, pre-canonical order.
        """
        reordered: Set[int] = {
            cid
            for cid, per_client in self._entries.items()
            if list(per_client) != sorted(per_client)
        }
        self._entries = {
            cid: {sid: per_client[sid] for sid in sorted(per_client)}
            for cid, per_client in sorted(self._entries.items())
        }
        clients_on_server: Dict[int, Set[int]] = {}
        for sid in sorted(self._clients_on_server):
            members: Set[int] = set()
            for cid in sorted(self._clients_on_server[sid]):
                members.add(cid)
            clients_on_server[sid] = members
        self._clients_on_server = clients_on_server
        self.cluster_of = {cid: self.cluster_of[cid] for cid in sorted(self.cluster_of)}
        self._epoch.value += 1
        return reordered

    # -- struct-of-arrays interchange ---------------------------------------

    def to_rows(self) -> AllocationRows:
        """Export the allocation as flat row tables (see AllocationRows).

        Row order is the allocation's iteration order, so a canonicalized
        allocation exports sorted rows and ``from_rows`` rebuilds it with
        identical dict insertion order — the property the bit-determinism
        machinery (scorer resync, aggregate recounts) relies on.
        """
        num_assigned = len(self.cluster_of)
        num_entries = sum(len(per_client) for per_client in self._entries.values())
        rows = AllocationRows(
            np.fromiter(self.cluster_of.keys(), dtype=np.int64, count=num_assigned),
            np.fromiter(self.cluster_of.values(), dtype=np.int64, count=num_assigned),
            np.empty(num_entries, dtype=np.int64),
            np.empty(num_entries, dtype=np.int64),
            np.empty(num_entries, dtype=np.float64),
            np.empty(num_entries, dtype=np.float64),
            np.empty(num_entries, dtype=np.float64),
        )
        pos = 0
        for client_id, per_client in self._entries.items():
            for server_id, entry in per_client.items():
                rows.entry_clients[pos] = client_id
                rows.entry_servers[pos] = server_id
                rows.alpha[pos] = entry.alpha
                rows.phi_p[pos] = entry.phi_p
                rows.phi_b[pos] = entry.phi_b
                pos += 1
        return rows

    @classmethod
    def from_rows(cls, rows: AllocationRows) -> "Allocation":
        """Rebuild dict form from row tables produced by :meth:`to_rows`.

        Every entry row's client must appear in the assignment table (true
        for any exported allocation; enforced here so a corrupted merge
        fails loudly instead of producing dangling entries).
        """
        alloc = cls()
        alloc.cluster_of = dict(
            zip(rows.assign_clients.tolist(), rows.assign_clusters.tolist())
        )
        if len(alloc.cluster_of) != rows.num_assigned:
            raise ModelError("duplicate client ids in assignment rows")
        entries: Dict[int, Dict[int, ServerAllocation]] = {}
        on_server: Dict[int, Set[int]] = {}
        box = alloc._epoch
        for client_id, server_id, alpha, phi_p, phi_b in zip(
            rows.entry_clients.tolist(),
            rows.entry_servers.tolist(),
            rows.alpha.tolist(),
            rows.phi_p.tolist(),
            rows.phi_b.tolist(),
        ):
            if client_id not in alloc.cluster_of:
                raise ModelError(
                    f"entry row for client {client_id} lacks an assignment row"
                )
            entry = ServerAllocation(alpha=alpha, phi_p=phi_p, phi_b=phi_b)
            entry._epoch_box = box
            entries.setdefault(client_id, {})[server_id] = entry
            on_server.setdefault(server_id, set()).add(client_id)
        alloc._entries = entries
        alloc._clients_on_server = on_server
        box.value += 1
        return alloc

    # -- lifecycle -----------------------------------------------------------

    def copy(self) -> "Allocation":
        """Deep copy; used by search algorithms to snapshot / roll back."""
        clone = Allocation()
        clone.cluster_of = dict(self.cluster_of)
        clone._entries = {
            cid: {sid: entry.copy() for sid, entry in per_client.items()}
            for cid, per_client in self._entries.items()
        }
        clone._clients_on_server = {
            sid: set(cids) for sid, cids in self._clients_on_server.items()
        }
        for per_client in clone._entries.values():
            for entry in per_client.values():
                entry._epoch_box = clone._epoch
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        if self.cluster_of != other.cluster_of:
            return False
        if set(self._entries) != set(other._entries):
            return False
        for cid, per_client in self._entries.items():
            other_per_client = other._entries[cid]
            if set(per_client) != set(other_per_client):
                return False
            for sid, entry in per_client.items():
                o = other_per_client[sid]
                if (entry.alpha, entry.phi_p, entry.phi_b) != (o.alpha, o.phi_p, o.phi_b):
                    return False
        return True

    def __repr__(self) -> str:
        num_entries = sum(len(v) for v in self._entries.values())
        return (
            f"Allocation(clients={len(self.cluster_of)}, "
            f"entries={num_entries}, used_servers={len(self.used_server_ids())})"
        )
