"""The cloud system: clusters plus the client population.

:class:`CloudSystem` is the immutable problem instance handed to every
solver and evaluator in this library.  It provides id-based lookups that
the heuristic's inner loops depend on being O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.exceptions import ModelError
from repro.model.client import Client
from repro.model.cluster import Cluster
from repro.model.server import Server


@dataclass
class CloudSystem:
    """A problem instance: the datacenter topology and the client set."""

    clusters: List[Cluster]
    clients: List[Client]
    name: str = ""

    _servers_by_id: Dict[int, Server] = field(init=False, repr=False)
    _clients_by_id: Dict[int, Client] = field(init=False, repr=False)
    _clusters_by_id: Dict[int, Cluster] = field(init=False, repr=False)
    _cluster_of_server: Dict[int, int] = field(init=False, repr=False)
    _membership_epoch: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._membership_epoch = 0
        if not self.clusters:
            raise ModelError("a cloud system needs at least one cluster")
        self._clusters_by_id = {}
        self._servers_by_id = {}
        self._cluster_of_server = {}
        for cluster in self.clusters:
            if cluster.cluster_id in self._clusters_by_id:
                raise ModelError(f"duplicate cluster_id {cluster.cluster_id}")
            self._clusters_by_id[cluster.cluster_id] = cluster
            for server in cluster:
                if server.server_id in self._servers_by_id:
                    raise ModelError(f"duplicate server_id {server.server_id}")
                self._servers_by_id[server.server_id] = server
                self._cluster_of_server[server.server_id] = cluster.cluster_id
        self._clients_by_id = {}
        for client in self.clients:
            if client.client_id in self._clients_by_id:
                raise ModelError(f"duplicate client_id {client.client_id}")
            self._clients_by_id[client.client_id] = client

    # -- lookups ---------------------------------------------------------

    def cluster(self, cluster_id: int) -> Cluster:
        try:
            return self._clusters_by_id[cluster_id]
        except KeyError:
            raise ModelError(f"unknown cluster_id {cluster_id}") from None

    def server(self, server_id: int) -> Server:
        try:
            return self._servers_by_id[server_id]
        except KeyError:
            raise ModelError(f"unknown server_id {server_id}") from None

    def client(self, client_id: int) -> Client:
        try:
            return self._clients_by_id[client_id]
        except KeyError:
            raise ModelError(f"unknown client_id {client_id}") from None

    def cluster_of_server(self, server_id: int) -> int:
        try:
            return self._cluster_of_server[server_id]
        except KeyError:
            raise ModelError(f"unknown server_id {server_id}") from None

    # -- iteration -------------------------------------------------------

    def servers(self) -> Iterator[Server]:
        """All servers across all clusters, in cluster order."""
        for cluster in self.clusters:
            yield from cluster

    def cluster_ids(self) -> List[int]:
        return [cluster.cluster_id for cluster in self.clusters]

    def client_ids(self) -> List[int]:
        return [client.client_id for client in self.clients]

    def has_client(self, client_id: int) -> bool:
        return client_id in self._clients_by_id

    # -- client membership (online service hooks) ------------------------
    #
    # The batch solvers treat a CloudSystem as immutable, and nothing in
    # this library mutates one behind a solver's back.  The online
    # allocation service (:mod:`repro.service`) is the exception: clients
    # arrive and depart while a long-lived WorkingState is attached, so
    # membership edits must be O(1)-ish and keep every id index in sync.

    @property
    def membership_epoch(self) -> int:
        """Monotone counter bumped by every client membership edit.

        Identity-keyed derivations over the system (the distributed
        solvers' content fingerprint) use this to detect that a system
        object has changed since they last saw it.
        """
        return self._membership_epoch

    def add_client(self, client: Client) -> None:
        """Register a new client (online admission)."""
        if client.client_id in self._clients_by_id:
            raise ModelError(f"duplicate client_id {client.client_id}")
        self.clients.append(client)
        self._clients_by_id[client.client_id] = client
        self._membership_epoch += 1

    def remove_client(self, client_id: int) -> Client:
        """Drop a client (online departure); returns the removed spec."""
        try:
            client = self._clients_by_id.pop(client_id)
        except KeyError:
            raise ModelError(f"unknown client_id {client_id}") from None
        self.clients.remove(client)
        self._membership_epoch += 1
        return client

    def replace_client(self, client: Client) -> Client:
        """Swap a client's spec in place (online rate update).

        The client keeps its position in ``clients`` so that iteration
        order — and hence any seeded sweep over clients — is stable.
        Returns the previous spec.
        """
        try:
            previous = self._clients_by_id[client.client_id]
        except KeyError:
            raise ModelError(f"unknown client_id {client.client_id}") from None
        self.clients[self.clients.index(previous)] = client
        self._clients_by_id[client.client_id] = client
        self._membership_epoch += 1
        return previous

    @property
    def num_servers(self) -> int:
        return len(self._servers_by_id)

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def describe(self) -> str:
        """One-paragraph human-readable summary (used by the CLI)."""
        lines = [
            f"CloudSystem {self.name!r}: {self.num_clusters} clusters, "
            f"{self.num_servers} servers, {self.num_clients} clients"
        ]
        for cluster in self.clusters:
            by_class = cluster.servers_by_class()
            mix = ", ".join(
                f"class {idx}x{len(group)}" for idx, group in sorted(by_class.items())
            )
            lines.append(f"  cluster {cluster.cluster_id}: {len(cluster)} servers ({mix})")
        return "\n".join(lines)
