"""The cloud system: clusters plus the client population.

:class:`CloudSystem` is the immutable problem instance handed to every
solver and evaluator in this library.  It provides id-based lookups that
the heuristic's inner loops depend on being O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.model.arrays import SystemArrays
from repro.model.client import Client
from repro.model.cluster import Cluster
from repro.model.server import Server


@dataclass
class CloudSystem:
    """A problem instance: the datacenter topology and the client set."""

    clusters: List[Cluster]
    clients: List[Client]
    name: str = ""

    _servers_by_id: Dict[int, Server] = field(init=False, repr=False)
    _clients_by_id: Dict[int, Client] = field(init=False, repr=False)
    _clusters_by_id: Dict[int, Cluster] = field(init=False, repr=False)
    _cluster_of_server: Dict[int, int] = field(init=False, repr=False)
    _membership_epoch: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._membership_epoch = 0
        if not self.clusters:
            raise ModelError("a cloud system needs at least one cluster")
        self._clusters_by_id = {}
        self._servers_by_id = {}
        self._cluster_of_server = {}
        for cluster in self.clusters:
            if cluster.cluster_id in self._clusters_by_id:
                raise ModelError(f"duplicate cluster_id {cluster.cluster_id}")
            self._clusters_by_id[cluster.cluster_id] = cluster
            for server in cluster:
                if server.server_id in self._servers_by_id:
                    raise ModelError(f"duplicate server_id {server.server_id}")
                self._servers_by_id[server.server_id] = server
                self._cluster_of_server[server.server_id] = cluster.cluster_id
        self._clients_by_id = {}
        for client in self.clients:
            if client.client_id in self._clients_by_id:
                raise ModelError(f"duplicate client_id {client.client_id}")
            self._clients_by_id[client.client_id] = client

    # -- lookups ---------------------------------------------------------

    def cluster(self, cluster_id: int) -> Cluster:
        try:
            return self._clusters_by_id[cluster_id]
        except KeyError:
            raise ModelError(f"unknown cluster_id {cluster_id}") from None

    def server(self, server_id: int) -> Server:
        try:
            return self._servers_by_id[server_id]
        except KeyError:
            raise ModelError(f"unknown server_id {server_id}") from None

    def client(self, client_id: int) -> Client:
        try:
            return self._clients_by_id[client_id]
        except KeyError:
            raise ModelError(f"unknown client_id {client_id}") from None

    def cluster_of_server(self, server_id: int) -> int:
        try:
            return self._cluster_of_server[server_id]
        except KeyError:
            raise ModelError(f"unknown server_id {server_id}") from None

    # -- iteration -------------------------------------------------------

    def servers(self) -> Iterator[Server]:
        """All servers across all clusters, in cluster order."""
        for cluster in self.clusters:
            yield from cluster

    def cluster_ids(self) -> List[int]:
        return [cluster.cluster_id for cluster in self.clusters]

    def client_ids(self) -> List[int]:
        return [client.client_id for client in self.clients]

    def has_client(self, client_id: int) -> bool:
        return client_id in self._clients_by_id

    # -- client membership (online service hooks) ------------------------
    #
    # The batch solvers treat a CloudSystem as immutable, and nothing in
    # this library mutates one behind a solver's back.  The online
    # allocation service (:mod:`repro.service`) is the exception: clients
    # arrive and depart while a long-lived WorkingState is attached, so
    # membership edits must be O(1)-ish and keep every id index in sync.

    @property
    def membership_epoch(self) -> int:
        """Monotone counter bumped by every client membership edit.

        Identity-keyed derivations over the system (the distributed
        solvers' content fingerprint) use this to detect that a system
        object has changed since they last saw it.
        """
        return self._membership_epoch

    def add_client(self, client: Client) -> None:
        """Register a new client (online admission)."""
        if client.client_id in self._clients_by_id:
            raise ModelError(f"duplicate client_id {client.client_id}")
        self.clients.append(client)
        self._clients_by_id[client.client_id] = client
        self._membership_epoch += 1

    def remove_client(self, client_id: int) -> Client:
        """Drop a client (online departure); returns the removed spec."""
        try:
            client = self._clients_by_id.pop(client_id)
        except KeyError:
            raise ModelError(f"unknown client_id {client_id}") from None
        self.clients.remove(client)
        self._membership_epoch += 1
        return client

    def replace_client(self, client: Client) -> Client:
        """Swap a client's spec in place (online rate update).

        The client keeps its position in ``clients`` so that iteration
        order — and hence any seeded sweep over clients — is stable.
        Returns the previous spec.
        """
        try:
            previous = self._clients_by_id[client.client_id]
        except KeyError:
            raise ModelError(f"unknown client_id {client.client_id}") from None
        self.clients[self.clients.index(previous)] = client
        self._clients_by_id[client.client_id] = client
        self._membership_epoch += 1
        return previous

    @property
    def num_servers(self) -> int:
        return len(self._servers_by_id)

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def describe(self) -> str:
        """One-paragraph human-readable summary (used by the CLI)."""
        lines = [
            f"CloudSystem {self.name!r}: {self.num_clusters} clusters, "
            f"{self.num_servers} servers, {self.num_clients} clients"
        ]
        for cluster in self.clusters:
            by_class = cluster.servers_by_class()
            mix = ", ".join(
                f"class {idx}x{len(group)}" for idx, group in sorted(by_class.items())
            )
            lines.append(f"  cluster {cluster.cluster_id}: {len(cluster)} servers ({mix})")
        return "\n".join(lines)

    @staticmethod
    def from_arrays(arrays: SystemArrays, name: str = "") -> "ArrayBackedCloudSystem":
        """Wrap a column store as a system without materializing objects."""
        return ArrayBackedCloudSystem(arrays, name=name)


#: Largest server-column count whose materialized views are worth
#: memoizing.  Shard subproblems (hundreds of rows, iterated every
#: improvement round) sit far below it; a million-row parent system
#: (iterated a handful of times, by final scoring and audits) stays
#: lazy so view memoization can never recreate the per-object memory
#: footprint the column store exists to avoid.
_SERVER_VIEW_CACHE_LIMIT = 4096


class _LazyServerSeq(Sequence):
    """List-like view of one cluster's row span over the server columns.

    Each ``[i]`` materializes a :class:`Server` carrying exactly the
    column values.  Small spans memoize the frozen views in a cache
    shared with the owning system (solver loops re-iterate cluster
    servers every round); million-row spans store nothing, so they cost
    nothing at rest.  Equality compares element-wise against any
    sequence, which keeps ``Cluster.__eq__`` meaningful for lazy
    clusters.
    """

    __slots__ = ("_arrays", "_start", "_stop", "_cache")

    def __init__(
        self,
        arrays: SystemArrays,
        start: int,
        stop: int,
        cache: Optional[list] = None,
    ) -> None:
        self._arrays = arrays
        self._start = start
        self._stop = stop
        self._cache = cache

    def __len__(self) -> int:
        return self._stop - self._start

    def _view(self, pos: int) -> Server:
        cache = self._cache
        if cache is None:
            return self._arrays.server_view(pos)
        server = cache[pos]
        if server is None:
            server = self._arrays.server_view(pos)
            cache[pos] = server
        return server

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._view(self._start + index)

    def __iter__(self) -> Iterator[Server]:
        for pos in range(self._start, self._stop):
            yield self._view(pos)

    def __eq__(self, other) -> bool:
        if not isinstance(other, (list, tuple, _LazyServerSeq)):
            return NotImplemented
        return len(self) == len(other) and all(a == b for a, b in zip(self, other))

    def __repr__(self) -> str:
        return f"<lazy servers [{self._start}:{self._stop}]>"


class _LazyClientSeq(Sequence):
    """List-like view of the whole client column table (see _LazyServerSeq)."""

    __slots__ = ("_arrays",)

    def __init__(self, arrays: SystemArrays) -> None:
        self._arrays = arrays

    def __len__(self) -> int:
        return self._arrays.num_clients

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._arrays.client_view(index)

    def __iter__(self) -> Iterator[Client]:
        for pos in range(self._arrays.num_clients):
            yield self._arrays.client_view(pos)

    def __eq__(self, other) -> bool:
        if not isinstance(other, (list, tuple, _LazyClientSeq)):
            return NotImplemented
        return len(self) == len(other) and all(a == b for a, b in zip(self, other))

    def __repr__(self) -> str:
        return f"<lazy clients [{len(self)}]>"


def _lazy_cluster(
    arrays: SystemArrays,
    cluster_id: int,
    start: int,
    stop: int,
    cache: Optional[list] = None,
) -> Cluster:
    """A real Cluster whose server list is a lazy column view.

    Built with ``object.__new__`` so ``__post_init__``'s per-server
    validation pass is skipped — :meth:`SystemArrays.validate` already
    covered id uniqueness and cluster consistency at column level.
    """
    cluster = object.__new__(Cluster)
    cluster.cluster_id = cluster_id
    cluster.servers = _LazyServerSeq(arrays, start, stop, cache)
    cluster.name = ""
    return cluster


class ArrayBackedCloudSystem(CloudSystem):
    """A CloudSystem whose population lives in a :class:`SystemArrays`.

    Reads are served straight off the columns: ``clients`` / ``clusters``
    are lazy sequence views, id lookups are binary searches memoized per
    touched id, and pickling ships the raw column buffers (a 1M-client
    system is ~a hundred MB of arrays instead of millions of objects).
    Every materialized :class:`Client`/:class:`Server` carries exactly
    the float64 the columns store, so any computation over an
    array-backed system is bit-identical to the object-backed path.

    Client membership edits (the online service tier's surface) *thaw*
    the system: the object graph is materialized once, the parent class's
    dict indexes take over, and the instance behaves exactly like an
    ordinary ``CloudSystem`` from then on.  Batch solvers never edit
    membership, so frozen systems stay frozen for their whole life.
    """

    def __init__(self, arrays: SystemArrays, name: str = "") -> None:
        self.arrays = arrays
        self.name = name
        self._membership_epoch = 0
        self._array_mode = True
        self._spans = arrays.cluster_spans()
        # Position-indexed memo for materialized server views, shared with
        # the lazy cluster sequences; None above the cache limit so huge
        # systems never hold one object per row.
        self._server_views: Optional[list] = (
            [None] * arrays.num_servers
            if arrays.num_servers <= _SERVER_VIEW_CACHE_LIMIT
            else None
        )
        # Per-touched-id memos (frozen mode); become the full indexes on thaw.
        self._clients_by_id = {}
        self._servers_by_id = {}
        self._clusters_by_id = {}
        self._cluster_of_server = {}
        self._clusters_list: List[Cluster] = []
        self._clients_list = _LazyClientSeq(arrays)

    # -- lazy field views -------------------------------------------------

    @property
    def clusters(self):
        if not self._clusters_list:
            self._clusters_list = [
                _lazy_cluster(self.arrays, cid, start, stop, self._server_views)
                for cid, start, stop in self._spans
            ]
        return self._clusters_list

    @clusters.setter
    def clusters(self, value) -> None:
        self._clusters_list = value

    @property
    def clients(self):
        return self._clients_list

    @clients.setter
    def clients(self, value) -> None:
        self._clients_list = value

    # -- lookups ----------------------------------------------------------

    def cluster(self, cluster_id: int) -> Cluster:
        if not self._array_mode:
            return super().cluster(cluster_id)
        cached = self._clusters_by_id.get(cluster_id)
        if cached is None:
            for position, (cid, _, _) in enumerate(self._spans):
                if cid == cluster_id:
                    cached = self.clusters[position]
                    break
            else:
                raise ModelError(f"unknown cluster_id {cluster_id}")
            self._clusters_by_id[cluster_id] = cached
        return cached

    def server(self, server_id: int) -> Server:
        if not self._array_mode:
            return super().server(server_id)
        cached = self._servers_by_id.get(server_id)
        if cached is None:
            cached = self.arrays.server_view(self.arrays.server_position(server_id))
            self._servers_by_id[server_id] = cached
        return cached

    def client(self, client_id: int) -> Client:
        if not self._array_mode:
            return super().client(client_id)
        cached = self._clients_by_id.get(client_id)
        if cached is None:
            cached = self.arrays.client_view(self.arrays.client_position(client_id))
            self._clients_by_id[client_id] = cached
        return cached

    def cluster_of_server(self, server_id: int) -> int:
        if not self._array_mode:
            return super().cluster_of_server(server_id)
        return int(
            self.arrays.server_cluster[self.arrays.server_position(server_id)]
        )

    def has_client(self, client_id: int) -> bool:
        if not self._array_mode:
            return super().has_client(client_id)
        ids = self.arrays.client_ids
        pos = int(np.searchsorted(ids, client_id))
        return pos < ids.shape[0] and int(ids[pos]) == client_id

    # -- iteration --------------------------------------------------------

    def servers(self) -> Iterator[Server]:
        if not self._array_mode:
            yield from super().servers()
            return
        cache = self._server_views
        if cache is None:
            for pos in range(self.arrays.num_servers):
                yield self.arrays.server_view(pos)
            return
        for pos in range(self.arrays.num_servers):
            server = cache[pos]
            if server is None:
                server = self.arrays.server_view(pos)
                cache[pos] = server
            yield server

    def cluster_ids(self) -> List[int]:
        if not self._array_mode:
            return super().cluster_ids()
        return [cid for cid, _, _ in self._spans]

    def client_ids(self) -> List[int]:
        if not self._array_mode:
            return super().client_ids()
        return self.arrays.client_ids.tolist()

    @property
    def num_servers(self) -> int:
        if not self._array_mode:
            return super().num_servers
        return self.arrays.num_servers

    @property
    def num_clients(self) -> int:
        if not self._array_mode:
            return super().num_clients
        return self.arrays.num_clients

    @property
    def num_clusters(self) -> int:
        if not self._array_mode:
            return super().num_clusters
        return len(self._spans)

    # -- thaw + membership edits ------------------------------------------

    @property
    def is_array_backed(self) -> bool:
        """True while reads are still served off the column store."""
        return self._array_mode

    def materialize(self) -> CloudSystem:
        """A plain object-backed copy with identical field values."""
        clusters = [
            Cluster(
                cluster_id=cid,
                servers=[self.arrays.server_view(p) for p in range(start, stop)],
            )
            for cid, start, stop in self._spans
        ]
        clients = [
            self.arrays.client_view(p) for p in range(self.arrays.num_clients)
        ]
        return CloudSystem(clusters=clusters, clients=clients, name=self.name)

    def _thaw(self) -> None:
        """Switch to object backing in place (first membership edit)."""
        if not self._array_mode:
            return
        concrete = self.materialize()
        self._clusters_list = concrete.clusters
        self._clients_list = concrete.clients
        self._clusters_by_id = concrete._clusters_by_id
        self._servers_by_id = concrete._servers_by_id
        self._cluster_of_server = concrete._cluster_of_server
        self._clients_by_id = concrete._clients_by_id
        self._server_views = None
        self._array_mode = False

    def add_client(self, client: Client) -> None:
        self._thaw()
        super().add_client(client)

    def remove_client(self, client_id: int) -> Client:
        self._thaw()
        return super().remove_client(client_id)

    def replace_client(self, client: Client) -> Client:
        self._thaw()
        return super().replace_client(client)

    # -- pickling ----------------------------------------------------------

    def __reduce__(self):
        if self._array_mode:
            return (ArrayBackedCloudSystem, (self.arrays, self.name))
        # Thawed instances round-trip through the ordinary constructor so
        # the unpickled object is a plain, fully-indexed CloudSystem.
        return (
            CloudSystem,
            (list(self._clusters_list), list(self._clients_list), self.name),
        )
