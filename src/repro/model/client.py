"""Client (application) model.

Each client (section III) is an application that generates a Poisson stream
of requests.  Two rates matter:

* ``rate_agreed`` (``lambda^a``) — the contractual rate; it converts the
  per-request utility into the revenue rate that enters the profit.
* ``rate_predicted`` (``lambda``) — the forecast rate used to *provision*
  resources ("predicted average request arrival rates are used to allocate
  resources").  It is usually ``<= rate_agreed``, letting the provider
  pack more clients when it knows actual traffic runs below contract.

Service demands: a request needs mean time ``t_proc`` on one full unit of
processing capacity and ``t_comm`` on one unit of communication capacity,
so with GPS share ``phi`` on a server with capacity ``C`` the service rate
is ``phi * C / t``.  ``storage_req`` (``m_i``) is a static disk footprint
that must be reserved on every server serving any of the client's traffic
(constraint (8) of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ModelError
from repro.model.utility import UtilityClass


@dataclass(frozen=True)
class Client:
    """One client application; see module docstring for field semantics."""

    client_id: int
    utility_class: UtilityClass
    rate_agreed: float
    t_proc: float
    t_comm: float
    storage_req: float
    rate_predicted: float = -1.0  # sentinel: default to rate_agreed

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ModelError(f"client_id must be >= 0, got {self.client_id}")
        if self.rate_agreed <= 0:
            raise ModelError(f"rate_agreed must be > 0, got {self.rate_agreed}")
        if self.t_proc <= 0:
            raise ModelError(f"t_proc must be > 0, got {self.t_proc}")
        if self.t_comm <= 0:
            raise ModelError(f"t_comm must be > 0, got {self.t_comm}")
        if self.storage_req < 0:
            raise ModelError(f"storage_req must be >= 0, got {self.storage_req}")
        if self.rate_predicted == -1.0:
            object.__setattr__(self, "rate_predicted", self.rate_agreed)
        if self.rate_predicted <= 0:
            raise ModelError(
                f"rate_predicted must be > 0, got {self.rate_predicted}"
            )

    @property
    def utility_slope(self) -> float:
        """|dU/dR| of the client's SLA; heuristics use it to rank urgency."""
        return self.utility_class.function.slope_magnitude()

    def revenue(self, response_time: float) -> float:
        """Revenue rate earned when the client sees this mean response time."""
        return self.rate_agreed * self.utility_class.function.value(response_time)

    def min_processing_share(self, cap_processing: float, traffic_fraction: float) -> float:
        """Smallest stable processing share for ``traffic_fraction`` of requests.

        Stability of the per-client M/M/1 queue requires
        ``phi * C / t > alpha * lambda``; this returns the open lower bound
        ``alpha * lambda * t / C`` (callers must allocate strictly more).
        """
        return traffic_fraction * self.rate_predicted * self.t_proc / cap_processing

    def min_bandwidth_share(self, cap_bandwidth: float, traffic_fraction: float) -> float:
        """Analogue of :meth:`min_processing_share` for the communication queue."""
        return traffic_fraction * self.rate_predicted * self.t_comm / cap_bandwidth
