"""System model for the SLA-based cloud profit-maximization problem.

This subpackage implements section III of the paper: utility functions,
server classes and servers, clusters, clients, the datacenter container,
the allocation state (the decision variables ``x``, ``alpha``, ``phi``),
the analytical response-time/profit evaluator, and feasibility validation.
"""

from repro.model.utility import (
    UtilityFunction,
    LinearUtility,
    ClippedLinearUtility,
    PiecewiseLinearUtility,
    StepUtility,
    UtilityClass,
)
from repro.model.server import ServerClass, Server
from repro.model.cluster import Cluster
from repro.model.client import Client
from repro.model.arrays import SystemArrays
from repro.model.datacenter import ArrayBackedCloudSystem, CloudSystem
from repro.model.allocation import Allocation, ServerAllocation
from repro.model.profit import (
    ProfitBreakdown,
    ClientOutcome,
    ServerOutcome,
    evaluate_profit,
    client_response_time,
    mm1_response_time,
)
from repro.model.validation import (
    Violation,
    find_violations,
    validate_allocation,
)

__all__ = [
    "UtilityFunction",
    "LinearUtility",
    "ClippedLinearUtility",
    "PiecewiseLinearUtility",
    "StepUtility",
    "UtilityClass",
    "ServerClass",
    "Server",
    "Cluster",
    "Client",
    "CloudSystem",
    "ArrayBackedCloudSystem",
    "SystemArrays",
    "Allocation",
    "ServerAllocation",
    "ProfitBreakdown",
    "ClientOutcome",
    "ServerOutcome",
    "evaluate_profit",
    "client_response_time",
    "mm1_response_time",
    "Violation",
    "find_violations",
    "validate_allocation",
]
