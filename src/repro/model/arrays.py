"""Struct-of-arrays backing store for the system model.

A :class:`SystemArrays` holds every per-client and per-server field of a
:class:`~repro.model.datacenter.CloudSystem` as dense NumPy columns,
plus the two small object tables those columns index into (utility
classes and server classes — a handful of objects regardless of scale).
At one million clients the columns cost ~tens of megabytes where the
object graph (frozen dataclasses plus id-keyed dicts) costs gigabytes;
they pickle as flat buffers, fingerprint as raw bytes, and slice into
shard sub-systems with one fancy-index per field instead of per-object
copies.

:class:`~repro.model.client.Client` and :class:`~repro.model.server.Server`
stay the per-item value types the solvers see — an array-backed system
materializes them *on demand* as thin views over the columns (same field
values bit-for-bit, since the columns store exactly the float64 the
object builder would), so every existing kernel keeps reading the same
IEEE-754 operands in the same order.

Ordering invariants (enforced in :meth:`SystemArrays.validate`):

* client columns are sorted by ``client_ids`` ascending;
* server columns are cluster-contiguous — ``server_cluster`` is
  non-decreasing — and sorted by ``server_ids`` within the whole table.

Both hold for generated systems (ids are handed out sequentially) and
are preserved by :meth:`slice_clients` / :meth:`slice_servers` on sorted
index sets, which is what keeps shard sub-system construction O(fields)
and id lookup a binary search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.model.client import Client
from repro.model.cluster import Cluster
from repro.model.server import Server, ServerClass
from repro.model.utility import UtilityClass


@dataclass
class SystemArrays:
    """Dense column store of one system's client and server populations.

    Client columns (all length ``num_clients``, position-aligned):
    ``client_ids`` (int64, sorted), ``client_uclass`` (int64 index into
    ``utility_classes``), ``rate_agreed``, ``rate_predicted``,
    ``t_proc``, ``t_comm``, ``storage_req`` (float64).

    Server columns (all length ``num_servers``, cluster-contiguous):
    ``server_ids`` (int64, sorted), ``server_cluster`` (int64),
    ``server_class_idx`` (int64 index into ``server_classes``),
    ``background_processing``, ``background_bandwidth``,
    ``background_storage`` (float64).
    """

    utility_classes: Tuple[UtilityClass, ...]
    server_classes: Tuple[ServerClass, ...]
    client_ids: np.ndarray
    client_uclass: np.ndarray
    rate_agreed: np.ndarray
    rate_predicted: np.ndarray
    t_proc: np.ndarray
    t_comm: np.ndarray
    storage_req: np.ndarray
    server_ids: np.ndarray
    server_cluster: np.ndarray
    server_class_idx: np.ndarray
    background_processing: np.ndarray
    background_bandwidth: np.ndarray
    background_storage: np.ndarray

    _CLIENT_COLUMNS = (
        "client_ids",
        "client_uclass",
        "rate_agreed",
        "rate_predicted",
        "t_proc",
        "t_comm",
        "storage_req",
    )
    _SERVER_COLUMNS = (
        "server_ids",
        "server_cluster",
        "server_class_idx",
        "background_processing",
        "background_bandwidth",
        "background_storage",
    )

    @property
    def num_clients(self) -> int:
        return int(self.client_ids.shape[0])

    @property
    def num_servers(self) -> int:
        return int(self.server_ids.shape[0])

    def validate(self) -> None:
        """Check the ordering invariants and index ranges (build time)."""
        for name in self._CLIENT_COLUMNS:
            if getattr(self, name).shape[0] != self.num_clients:
                raise ModelError(f"client column {name} has the wrong length")
        for name in self._SERVER_COLUMNS:
            if getattr(self, name).shape[0] != self.num_servers:
                raise ModelError(f"server column {name} has the wrong length")
        if self.num_clients and np.any(np.diff(self.client_ids) <= 0):
            raise ModelError("client_ids must be strictly increasing")
        if self.num_servers and np.any(np.diff(self.server_ids) <= 0):
            raise ModelError("server_ids must be strictly increasing")
        if self.num_servers and np.any(np.diff(self.server_cluster) < 0):
            raise ModelError("server columns must be cluster-contiguous")
        if self.num_clients and (
            self.client_uclass.min() < 0
            or self.client_uclass.max() >= len(self.utility_classes)
        ):
            raise ModelError("client_uclass index out of range")
        if self.num_servers and (
            self.server_class_idx.min() < 0
            or self.server_class_idx.max() >= len(self.server_classes)
        ):
            raise ModelError("server_class_idx index out of range")

    # -- id -> position -----------------------------------------------------

    def client_position(self, client_id: int) -> int:
        pos = int(np.searchsorted(self.client_ids, client_id))
        if pos >= self.num_clients or int(self.client_ids[pos]) != client_id:
            raise ModelError(f"unknown client_id {client_id}")
        return pos

    def server_position(self, server_id: int) -> int:
        pos = int(np.searchsorted(self.server_ids, server_id))
        if pos >= self.num_servers or int(self.server_ids[pos]) != server_id:
            raise ModelError(f"unknown server_id {server_id}")
        return pos

    # -- on-demand views ----------------------------------------------------

    def client_view(self, pos: int) -> Client:
        """Materialize one client as the ordinary value type.

        The view carries exactly the float64 the columns store, so any
        computation over it is bit-identical to the object-backed path.
        """
        return Client(
            client_id=int(self.client_ids[pos]),
            utility_class=self.utility_classes[int(self.client_uclass[pos])],
            rate_agreed=float(self.rate_agreed[pos]),
            rate_predicted=float(self.rate_predicted[pos]),
            t_proc=float(self.t_proc[pos]),
            t_comm=float(self.t_comm[pos]),
            storage_req=float(self.storage_req[pos]),
        )

    def server_view(self, pos: int) -> Server:
        return Server(
            server_id=int(self.server_ids[pos]),
            cluster_id=int(self.server_cluster[pos]),
            server_class=self.server_classes[int(self.server_class_idx[pos])],
            background_processing=float(self.background_processing[pos]),
            background_bandwidth=float(self.background_bandwidth[pos]),
            background_storage=float(self.background_storage[pos]),
        )

    # -- slicing (shard sub-systems) ----------------------------------------

    def slice_clients(self, positions: np.ndarray) -> "SystemArrays":
        """New arrays keeping only these client positions (sorted order)."""
        return self._replace_columns(self._CLIENT_COLUMNS, positions)

    def slice_servers(self, positions: np.ndarray) -> "SystemArrays":
        """New arrays keeping only these server positions (sorted order)."""
        return self._replace_columns(self._SERVER_COLUMNS, positions)

    def _replace_columns(
        self, names: Sequence[str], positions: np.ndarray
    ) -> "SystemArrays":
        fields = {
            name: getattr(self, name)
            for name in self._CLIENT_COLUMNS + self._SERVER_COLUMNS
        }
        for name in names:
            fields[name] = fields[name][positions]
        return SystemArrays(
            utility_classes=self.utility_classes,
            server_classes=self.server_classes,
            **fields,
        )

    # -- cluster layout -----------------------------------------------------

    def cluster_spans(self) -> List[Tuple[int, int, int]]:
        """``(cluster_id, start, stop)`` spans over the server columns.

        The server columns are cluster-contiguous, so each cluster is one
        half-open row range — the O(num_clusters) layout the lazy cluster
        views are built from.
        """
        spans: List[Tuple[int, int, int]] = []
        if not self.num_servers:
            return spans
        ids = self.server_cluster
        boundaries = np.flatnonzero(np.diff(ids)) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [ids.shape[0]]))
        for start, stop in zip(starts.tolist(), stops.tolist()):
            spans.append((int(ids[start]), start, stop))
        return spans

    # -- bookkeeping --------------------------------------------------------

    def nbytes(self) -> int:
        """Total bytes held by the columns (memory accounting)."""
        return int(
            sum(
                getattr(self, name).nbytes
                for name in self._CLIENT_COLUMNS + self._SERVER_COLUMNS
            )
        )

    def content_token(self) -> bytes:
        """Raw bytes capturing the column contents (fast fingerprinting).

        Concatenates every column's buffer plus a canonical rendering of
        the two class tables.  Two array-backed systems with equal
        columns and class tables produce equal tokens; the token is *not*
        comparable with the object-path canonical dump (callers hash one
        or the other consistently).
        """
        parts = [
            repr(
                [
                    (u.index, u.name, repr(u.function))
                    for u in self.utility_classes
                ]
            ).encode(),
            repr(
                [
                    (
                        s.index,
                        s.cap_processing,
                        s.cap_bandwidth,
                        s.cap_storage,
                        s.power_fixed,
                        s.power_per_util,
                        s.name,
                    )
                    for s in self.server_classes
                ]
            ).encode(),
        ]
        for name in self._CLIENT_COLUMNS + self._SERVER_COLUMNS:
            column = np.ascontiguousarray(getattr(self, name))
            parts.append(name.encode())
            parts.append(column.tobytes())
        return b"\x00".join(parts)

    # -- construction from the object graph ---------------------------------

    @classmethod
    def from_objects(
        cls, clusters: Sequence[Cluster], clients: Sequence[Client]
    ) -> "SystemArrays":
        """Column-ize an existing object graph (legacy construction path).

        Requires the ordering invariants (sorted ids, cluster-contiguous
        servers) to hold of the input; hand-built systems that violate
        them simply stay object-backed.
        """
        uclasses: List[UtilityClass] = []
        uclass_pos = {}
        client_rows = sorted(clients, key=lambda c: c.client_id)
        for client in client_rows:
            key = id(client.utility_class)
            if key not in uclass_pos:
                uclass_pos[key] = len(uclasses)
                uclasses.append(client.utility_class)
        sclasses: List[ServerClass] = []
        sclass_pos = {}
        server_rows: List[Server] = []
        for cluster in clusters:
            for server in cluster:
                server_rows.append(server)
                key = id(server.server_class)
                if key not in sclass_pos:
                    sclass_pos[key] = len(sclasses)
                    sclasses.append(server.server_class)
        arrays = cls(
            utility_classes=tuple(uclasses),
            server_classes=tuple(sclasses),
            client_ids=np.array([c.client_id for c in client_rows], dtype=np.int64),
            client_uclass=np.array(
                [uclass_pos[id(c.utility_class)] for c in client_rows],
                dtype=np.int64,
            ),
            rate_agreed=np.array([c.rate_agreed for c in client_rows]),
            rate_predicted=np.array([c.rate_predicted for c in client_rows]),
            t_proc=np.array([c.t_proc for c in client_rows]),
            t_comm=np.array([c.t_comm for c in client_rows]),
            storage_req=np.array([c.storage_req for c in client_rows]),
            server_ids=np.array([s.server_id for s in server_rows], dtype=np.int64),
            server_cluster=np.array(
                [s.cluster_id for s in server_rows], dtype=np.int64
            ),
            server_class_idx=np.array(
                [sclass_pos[id(s.server_class)] for s in server_rows],
                dtype=np.int64,
            ),
            background_processing=np.array(
                [s.background_processing for s in server_rows]
            ),
            background_bandwidth=np.array(
                [s.background_bandwidth for s in server_rows]
            ),
            background_storage=np.array(
                [s.background_storage for s in server_rows]
            ),
        )
        arrays.validate()
        return arrays
