"""``repro-cloud`` — command-line interface.

Subcommands::

    describe    generate an instance and print its topology
    solve       run the profit-maximizing heuristic on one instance
    compare     heuristic vs modified PS vs Monte Carlo on one instance
    experiment  regenerate a paper artifact: fig4 | fig5 | scalability
    simulate    validate the analytical response times with the DES
    epochs      epoch-driven re-allocation vs a static allocation
    serve       replay a workload trace through the online service
    audit       differential verification + feasibility audit
    gap         optimality-gap certification (exact + dual bounds)

Library errors (:class:`repro.exceptions.ReproError`) are reported as a
one-line message on stderr with exit status 2; tracebacks are reserved
for genuine bugs.  ``audit`` exits 1 when it finds violations or
cross-path disagreement; ``gap`` exits 1 when any cell breaches the
``dual >= certified optimum >= heuristic`` sandwich, fails to certify
within its node budget, or exceeds its gap threshold.

``solve``, ``epochs``, ``serve``, and ``simulate`` accept ``--audit``
(equivalent to ``REPRO_AUDIT=1``): every solver pass, repair op, and
service event then re-runs the full invariant pack and aborts loudly on
the first infeasible intermediate state.

Every subcommand accepts ``--clients`` and ``--seed``; ``experiment``
honours ``--full`` (equivalent to ``REPRO_FULL=1``) for paper-sized runs
and drives the fault-tolerant parallel engine: ``--workers`` shards
scenario cells across processes, ``--run-dir`` checkpoints each finished
cell (JSONL) plus a deterministic manifest, ``--resume`` continues an
interrupted sweep, and ``--cell-timeout`` bounds one cell's wall clock.
A partial sweep prints a coverage report and exits with status 3.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.analysis.experiments import (
    ExperimentConfig,
    run_figure4,
    run_figure5,
    run_scalability_report,
)
from repro.analysis.reporting import format_coverage, format_fleet, format_table
from repro.baselines.bounds import profit_upper_bound
from repro.baselines.monte_carlo import MonteCarloSearch
from repro.baselines.proportional_share import modified_proportional_share
from repro.config import SolverConfig
from repro.core.allocator import ResourceAllocator
from repro.exceptions import ReproError
from repro.model.profit import evaluate_profit
from repro.sim.epoch import EpochConfig, run_epoch_simulation
from repro.sim.gps import SharingMode
from repro.sim.simulator import DatacenterSimulator
from repro.workload.generator import generate_system


def _add_instance_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clients", type=int, default=20, help="number of clients")
    parser.add_argument("--seed", type=int, default=0, help="instance seed")


def _add_audit_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--audit",
        action="store_true",
        help="re-run the invariant pack after every solver pass / repair "
        "op / service event (same as REPRO_AUDIT=1)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cloud",
        description=(
            "Reproduction of 'Maximizing Profit in Cloud Computing System "
            "via Resource Allocation' (Goudarzi & Pedram, 2011)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe", help="print the generated topology")
    _add_instance_args(p)

    p = sub.add_parser("solve", help="run the heuristic on one instance")
    _add_instance_args(p)
    _add_audit_flag(p)
    p.add_argument("--rounds", type=int, default=25, help="max improvement rounds")
    p.add_argument(
        "--fleet", action="store_true", help="print per-server utilization bars"
    )
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the instance into this many shards and solve them "
        "on a worker pool with price coordination (1 = unsharded)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sharded solver "
        "(default: min(shards, cpu count))",
    )
    p.add_argument(
        "--shard-levels",
        type=int,
        default=1,
        choices=(1, 2),
        help="coordinator-tree depth for the sharded solver: 1 = flat, "
        "2 = super-shard groups with pairwise upward row merges "
        "(memory-bounded at very large n)",
    )
    p.add_argument(
        "--adaptive-shards",
        action="store_true",
        help="re-plan the shard size from two timed probe solves instead "
        "of using --shards verbatim",
    )

    p = sub.add_parser("compare", help="heuristic vs baselines on one instance")
    _add_instance_args(p)
    p.add_argument("--mc-trials", type=int, default=50)

    p = sub.add_parser("experiment", help="regenerate a paper artifact")
    p.add_argument("name", choices=["fig4", "fig5", "scalability"])
    p.add_argument("--full", action="store_true", help="paper-sized run")
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for scenario cells (1 = serial oracle)",
    )
    p.add_argument(
        "--run-dir",
        default=None,
        help="checkpoint directory (cells.jsonl / manifest.json / telemetry.json)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep from --run-dir checkpoints",
    )
    p.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="wall-clock budget per scenario cell, in seconds",
    )
    p.add_argument(
        "--sweep-clients",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="override the sweep's client counts",
    )
    p.add_argument(
        "--scenarios",
        type=int,
        default=None,
        help="override scenarios per sweep point",
    )
    p.add_argument(
        "--mc-trials",
        type=int,
        default=None,
        help="override Monte Carlo trials per scenario",
    )

    p = sub.add_parser("simulate", help="DES validation of the queueing model")
    _add_instance_args(p)
    _add_audit_flag(p)
    p.add_argument("--duration", type=float, default=2000.0)
    p.add_argument(
        "--mode",
        choices=[m.value for m in SharingMode],
        default=SharingMode.PARTITIONED.value,
    )

    p = sub.add_parser("epochs", help="dynamic re-allocation across epochs")
    _add_instance_args(p)
    _add_audit_flag(p)
    p.add_argument("--epochs", type=int, default=8)
    p.add_argument("--drift", type=float, default=0.25)
    p.add_argument(
        "--pattern",
        choices=["random_walk", "diurnal", "bursty"],
        default="random_walk",
    )
    p.add_argument(
        "--warm",
        action="store_true",
        help="also run the online service as a warm-start policy",
    )

    p = sub.add_parser(
        "serve", help="replay a workload trace through the online service"
    )
    _add_instance_args(p)
    _add_audit_flag(p)
    p.add_argument("--epochs", type=int, default=8)
    p.add_argument(
        "--pattern",
        choices=["random_walk", "diurnal", "bursty"],
        default="random_walk",
    )
    p.add_argument(
        "--churn", type=float, default=0.0, help="per-epoch client churn probability"
    )
    p.add_argument(
        "--failures",
        type=float,
        default=0.0,
        help="per-epoch server fail/recover probability",
    )
    p.add_argument(
        "--drift-threshold",
        type=float,
        default=0.25,
        help="relative rate drift that triggers full re-optimization",
    )
    p.add_argument(
        "--journal", default=None, help="append accepted events to this file"
    )
    p.add_argument(
        "--snapshot", default=None, help="write the final snapshot to this file"
    )
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="engine shards; >1 runs the sharded async tier under an "
        "open-loop Poisson load (50 events/epoch) with load shedding",
    )
    p.add_argument(
        "--queue-budget",
        type=int,
        default=64,
        help="per-shard ingestion queue bound before the router sheds "
        "the lowest-marginal-profit queued admit (sharded mode only)",
    )
    p.add_argument(
        "--admission",
        choices=["always", "revenue", "opportunity"],
        default="always",
        help="admission policy: always (feasibility only, the default), "
        "revenue (best-case revenue-rate floor), opportunity (live "
        "eq.-(16) marginal-profit gate)",
    )
    p.add_argument(
        "--revenue-floor",
        type=float,
        default=0.0,
        help="minimum best-case revenue rate for --admission revenue",
    )
    p.add_argument(
        "--min-margin",
        type=float,
        default=0.0,
        help="minimum estimated marginal profit for --admission opportunity",
    )
    p.add_argument(
        "--surge-pricing",
        action="store_true",
        help="apply the stock load-indexed surge schedule to v/beta at "
        "admit and re-admit time",
    )

    p = sub.add_parser(
        "audit", help="differential verification + feasibility audit"
    )
    p.add_argument(
        "--seeds", type=int, default=20, help="seeded instances to verify"
    )
    p.add_argument("--clients", type=int, default=10, help="clients per instance")
    p.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="arm the memo cache on the vectorized/delta/service paths "
        "(--no-cache audits the uncached kernels only); with the cache "
        "on, every instance additionally cross-checks cached vs uncached "
        "vectorized solves bitwise",
    )
    p.add_argument(
        "--dual-bound",
        action="store_true",
        help="additionally check every path's reported profit against "
        "the Lagrangian upper bound (an independent judge: no feasible "
        "allocation can exceed it)",
    )
    p.add_argument(
        "--snapshot", default=None, help="audit a saved service snapshot"
    )
    p.add_argument(
        "--journal",
        default=None,
        help="replay this journal on top of --snapshot with auditing armed",
    )

    p = sub.add_parser(
        "gap", help="certify the heuristic's optimality gap (exact + dual)"
    )
    p.add_argument(
        "--clients",
        type=int,
        nargs="+",
        default=[20, 24],
        metavar="N",
        help="exact-tier instance sizes (branch-and-bound certificates)",
    )
    p.add_argument(
        "--seeds", type=int, default=2, help="seeded instances per size"
    )
    p.add_argument(
        "--budget",
        type=int,
        default=40_000,
        help="branch-and-bound node budget per exact cell",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.18,
        help="relative MIP-gap tolerance for the exact certificates",
    )
    p.add_argument(
        "--dual-clients",
        type=int,
        default=1000,
        help="dual-tier instance size (0 skips the dual-only cell)",
    )
    p.add_argument(
        "--scenario",
        choices=["certification", "paper"],
        default="certification",
        help="instance family the matrix draws from",
    )
    p.add_argument(
        "--backend",
        choices=["bnb", "cpsat"],
        default="bnb",
        help="exact engine: the built-in branch-and-bound, or OR-tools "
        "CP-SAT as an independent cross-check (optional dependency; "
        "tiny instances only)",
    )

    p = sub.add_parser("multitier", help="solve a multi-tier application instance")
    p.add_argument("--apps", type=int, default=8, help="number of applications")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "admission", help="admission-controlled solve (may reject clients)"
    )
    _add_instance_args(p)

    p = sub.add_parser(
        "predict", help="prediction-error study (predicted vs agreed rates)"
    )
    _add_instance_args(p)
    p.add_argument(
        "--factors",
        type=float,
        nargs="+",
        default=[0.5, 0.7, 0.9, 1.0],
        help="predicted/agreed rate ratios to sweep",
    )
    return parser


def _maybe_enable_audit(args: argparse.Namespace) -> None:
    if getattr(args, "audit", False):
        from repro.audit.hooks import enable_audit

        enable_audit()


def _cmd_describe(args: argparse.Namespace) -> int:
    system = generate_system(num_clients=args.clients, seed=args.seed)
    print(system.describe())
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    _maybe_enable_audit(args)
    system = generate_system(num_clients=args.clients, seed=args.seed)
    config = SolverConfig(
        seed=args.seed,
        max_improvement_rounds=args.rounds,
        num_shards=args.shards,
        num_workers=args.workers,
        shard_levels=args.shard_levels,
        adaptive_shard_sizing=args.adaptive_shards,
    )
    if args.shards > 1:
        from repro.core.sharded import ShardedAllocator

        with ShardedAllocator(config) as allocator:
            result = allocator.solve(system)
    else:
        result = ResourceAllocator(config).solve(system)
    print(result.breakdown.summary())
    print(
        f"initial profit {result.initial_profit:.4f} -> final "
        f"{result.profit:.4f} in {result.rounds} rounds "
        f"({result.runtime_seconds:.2f}s)"
    )
    if args.fleet:
        print()
        print(format_fleet(result.breakdown, system))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    system = generate_system(num_clients=args.clients, seed=args.seed)
    config = SolverConfig(seed=args.seed)
    proposed = ResourceAllocator(config).solve(system)
    ps = evaluate_profit(
        system,
        modified_proportional_share(system, config),
        require_all_served=False,
    )
    mc = MonteCarloSearch(num_trials=args.mc_trials, config=config).run(
        system, seed=args.seed + 1
    )
    bound = profit_upper_bound(system)
    best = max(proposed.profit, mc.best_profit)
    rows = [
        ("analytical upper bound", bound.profit_bound, bound.profit_bound / best),
        ("proposed heuristic", proposed.profit, proposed.profit / best),
        (f"Monte Carlo best ({args.mc_trials} trials)", mc.best_profit, mc.best_profit / best),
        ("modified PS", ps.total_profit, ps.total_profit / best),
    ]
    print(format_table(["method", "profit", "normalized"], rows))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    config = (
        ExperimentConfig.paper_scale()
        if args.full
        else ExperimentConfig.from_environment()
    )
    overrides = {
        "n_workers": args.workers,
        "run_dir": args.run_dir,
        "resume": args.resume,
        "cell_timeout": args.cell_timeout,
    }
    if args.sweep_clients is not None:
        overrides["client_counts"] = tuple(args.sweep_clients)
    if args.scenarios is not None:
        overrides["scenarios_per_point"] = args.scenarios
        overrides["scenarios_at_largest"] = args.scenarios
    if args.mc_trials is not None:
        overrides["mc_trials"] = args.mc_trials
    config = replace(config, **overrides)
    if args.name == "fig4":
        result = run_figure4(config)
        print("Figure 4 — normalized total profit vs number of clients")
        print(result.to_table())
        print()
        print(result.to_chart())
        coverage = result.coverage
        print(f"\n({result.runtime_seconds:.1f}s)")
    elif args.name == "fig5":
        result = run_figure5(config)
        print("Figure 5 — random initial solutions vs final results")
        print(result.to_table())
        print()
        print(result.to_chart())
        coverage = result.coverage
        print(f"\n({result.runtime_seconds:.1f}s)")
    else:
        report = run_scalability_report(
            client_counts=config.client_counts
            if args.sweep_clients is not None
            else (10, 20, 40, 80),
            engine=config.engine(),
        )
        print("Runtime scaling of the full heuristic")
        print(
            format_table(
                ["clients", "servers", "solve seconds", "profit"],
                [
                    (r.num_clients, r.num_servers, r.solve_seconds, r.profit)
                    for r in report.rows
                ],
            )
        )
        coverage = report.coverage
    if coverage is not None:
        print(format_coverage(coverage))
    if args.run_dir:
        print(f"run dir: {args.run_dir}")
    return 0 if coverage is None or coverage.complete else 3


def _cmd_simulate(args: argparse.Namespace) -> int:
    _maybe_enable_audit(args)
    system = generate_system(num_clients=args.clients, seed=args.seed)
    config = SolverConfig(seed=args.seed)
    result = ResourceAllocator(config).solve(system)
    simulator = DatacenterSimulator(
        system,
        result.allocation,
        mode=SharingMode(args.mode),
        seed=args.seed + 1,
    )
    report = simulator.run(duration=args.duration)
    rows = [
        (
            stats.client_id,
            stats.completed,
            stats.measured_mean,
            stats.analytical_mean,
            (stats.relative_error() * 100 if stats.completed else float("nan")),
        )
        for stats in sorted(report.clients.values(), key=lambda s: s.client_id)
    ]
    print(
        format_table(
            ["client", "completed", "measured mean", "analytical mean", "error %"],
            rows,
        )
    )
    print(
        f"\nmode={args.mode}, duration={report.duration}, "
        f"arrivals={report.total_arrivals}, "
        f"worst |error| {report.worst_relative_error() * 100:.1f}%"
    )
    return 0


def _cmd_epochs(args: argparse.Namespace) -> int:
    _maybe_enable_audit(args)
    system = generate_system(num_clients=args.clients, seed=args.seed)
    report = run_epoch_simulation(
        system,
        EpochConfig(
            num_epochs=args.epochs,
            drift=args.drift,
            seed=args.seed + 1,
            pattern=args.pattern,
            warm_start=args.warm,
        ),
        SolverConfig(seed=args.seed),
    )
    if report.warm_profits:
        rows = [
            (idx, realloc, warm, static)
            for idx, (realloc, warm, static) in enumerate(
                zip(
                    report.reallocate_profits,
                    report.warm_profits,
                    report.static_profits,
                )
            )
        ]
        print(format_table(["epoch", "re-allocate", "warm service", "static"], rows))
    else:
        rows = [
            (idx, realloc, static)
            for idx, (realloc, static) in enumerate(
                zip(report.reallocate_profits, report.static_profits)
            )
        ]
        print(format_table(["epoch", "re-allocate", "static"], rows))
    print(f"\ntotal gain from per-epoch decisions: {report.reallocation_gain:.3f}")
    print(f"cold solves: {report.cold_solves} for {args.epochs} epochs")
    return 0


def _serve_admission(args: argparse.Namespace):
    from repro.service import make_admission_policy

    return make_admission_policy(
        args.admission,
        min_revenue_rate=args.revenue_floor,
        min_margin=args.min_margin,
    )


def _serve_pricing(args: argparse.Namespace):
    from repro.service import PricingSchedule

    return PricingSchedule.surge() if args.surge_pricing else None


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    _maybe_enable_audit(args)

    from repro.service import EventJournal, ServicePolicy, TraceDriverConfig
    from repro.service.driver import run_service_trace

    system = generate_system(num_clients=args.clients, seed=args.seed)
    if args.shards > 1:
        return _serve_sharded(args, system)
    journal = EventJournal(args.journal) if args.journal else None
    report = run_service_trace(
        system,
        TraceDriverConfig(
            pattern=args.pattern,
            num_epochs=args.epochs,
            seed=args.seed + 1,
            churn_probability=args.churn,
            failure_probability=args.failures,
        ),
        solver_config=SolverConfig(seed=args.seed),
        policy=ServicePolicy(drift_threshold=args.drift_threshold),
        journal=journal,
        admission=_serve_admission(args),
        pricing=_serve_pricing(args),
    )
    service = report["service"]
    if journal is not None:
        journal.close()
    if args.snapshot:
        with open(args.snapshot, "w") as handle:
            json.dump(service.snapshot(), handle, indent=2, sort_keys=True)
    rows = [
        (epoch, profit) for epoch, profit in enumerate(report["epoch_profits"])
    ]
    print(format_table(["epoch", "profit"], rows))
    latency = service.metrics.repair_latency
    print(
        f"\n{report['events_applied']} events "
        f"({report['events_queued']} queued, {report['reopt_swaps']} re-opt swaps, "
        f"{report['pending_clients']} clients pending), "
        f"repair p50 {latency.quantile(0.5) * 1000:.2f} ms, "
        f"p99 {latency.quantile(0.99) * 1000:.2f} ms"
    )
    rejected = service.metrics.counters.get("admits_rejected", 0)
    if args.admission != "always" or rejected:
        print(
            f"admission policy {service.admission.name}: "
            f"{rejected} admits refused"
        )
    print(f"final profit {report['final_profit']:.4f}")
    print(f"snapshot hash {report['snapshot_hash']}")
    if args.journal:
        print(f"journal: {args.journal}")
    if args.snapshot:
        print(f"snapshot: {args.snapshot}")
    return 0


def _serve_sharded(args: argparse.Namespace, system) -> int:
    """``serve --shards N``: the open-loop sharded tier with shedding.

    Clients arrive as generated admit/depart/rate-drift events rather
    than from the trace driver (the sharded tier is an ingestion layer:
    overload behaviour is the point), so ``--epochs`` scales the load
    (50 events per epoch) instead of counting re-optimization rounds.
    ``--journal`` names a directory; each shard journals its accepted
    substream to ``shard-<i>.jsonl`` there and the run finishes by
    hash-asserting every shard's journal replay against its live engine.
    """
    import os
    import tempfile

    from repro.service import (
        LoadGenConfig,
        RouterPolicy,
        ServicePolicy,
        ServiceRouter,
        generate_load,
    )

    load = LoadGenConfig(
        num_events=50 * args.epochs, arrival_rate=200.0, seed=args.seed + 1
    )
    bursts = generate_load(system, load)
    router_policy = RouterPolicy(
        num_shards=args.shards,
        queue_budget=args.queue_budget,
        pending_budget=args.queue_budget,
    )
    journal_dir = args.journal
    cleanup = None
    if journal_dir is None:
        cleanup = tempfile.TemporaryDirectory()
        journal_dir = cleanup.name
    else:
        os.makedirs(journal_dir, exist_ok=True)
    try:
        with ServiceRouter(
            system,
            router=router_policy,
            config=SolverConfig(seed=args.seed),
            policy=ServicePolicy(drift_threshold=args.drift_threshold),
            journal_dir=journal_dir,
            admission=_serve_admission(args),
            pricing=_serve_pricing(args),
        ) as router:
            report = router.run_open_loop(bursts)
            verified = 0
            for shard_id in range(router.num_shards):
                live, replayed = router.verify_shard_replay(shard_id)
                if live != replayed:
                    print(
                        f"error: shard {shard_id} journal replay diverged "
                        f"({live[:12]}... != {replayed[:12]}...)",
                        file=sys.stderr,
                    )
                    return 1
                verified += 1
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    rows = [
        (
            cell["shard_id"],
            cell["offered"],
            cell["applied"],
            cell["shed"],
            cell["rejected"],
            cell["pending_clients"],
            cell["profit"],
        )
        for cell in report["shards"]
    ]
    print(
        format_table(
            ["shard", "offered", "applied", "shed", "rejected", "pending", "profit"],
            rows,
        )
    )
    latency = report["repair_latency"]
    print(
        f"\n{report['offered_total']} events offered at queue budget "
        f"{router_policy.queue_budget}: {report['applied_total']} applied, "
        f"{report['shed_total']} shed, {report['rejected_total']} rejected "
        f"in {report['elapsed_seconds']:.3f}s "
        f"({report['offered_total'] / report['elapsed_seconds']:.0f} ev/s "
        "ingested)"
    )
    print(
        f"repair p50 {latency['p50_seconds'] * 1000:.2f} ms, "
        f"p99 {latency['p99_seconds'] * 1000:.2f} ms"
    )
    print(f"aggregate profit {report['aggregate_profit']:.4f}")
    if args.admission != "always" or args.surge_pricing:
        surge = " + surge pricing" if args.surge_pricing else ""
        print(f"admission policy {report['admission_policy']}{surge}")
    print(f"replay verified on {verified}/{router.num_shards} shards")
    if args.journal:
        print(f"journals: {journal_dir}/shard-*.jsonl")
    if args.snapshot:
        print(
            "note: --snapshot applies to the single-engine path; "
            "sharded runs persist per-shard journals instead",
            file=sys.stderr,
        )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    import json

    from repro.audit import differential

    problems_found = 0
    if args.snapshot:
        with open(args.snapshot) as handle:
            doc = json.load(handle)
        problems = differential.audit_snapshot(doc)
        for problem in problems:
            print(f"snapshot: {problem}")
        problems_found += len(problems)
        if args.journal:
            problems = differential.audit_journal(doc, args.journal)
            for problem in problems:
                print(f"journal: {problem}")
            problems_found += len(problems)
        if problems_found == 0:
            target = args.snapshot + (f" + {args.journal}" if args.journal else "")
            print(f"audit clean: {target}")
        return 1 if problems_found else 0
    if args.journal:
        print("error: --journal requires --snapshot", file=sys.stderr)
        return 2

    reports = differential.run_matrix(
        seeds=range(args.seeds),
        num_clients=args.clients,
        use_cache=args.cache,
        check_dual_bound=args.dual_bound,
    )
    failures = [r for r in reports if not r.ok]
    for report in failures:
        print(f"seed {report.seed}:")
        print(report.summary())
    cache_mode = "memo cache on" if args.cache else "memo cache off"
    print(
        f"differential audit: {len(reports) - len(failures)}/{len(reports)} "
        f"instances clean across {', '.join(differential.PATH_NAMES)} "
        f"({cache_mode})"
    )
    return 1 if failures else 0


def _cmd_gap(args: argparse.Namespace) -> int:
    from repro.gap import GapCellSpec, cpsat_cross_check, run_gap_cell

    if args.backend == "cpsat":
        # Independent enumeration engine; tiny sizes only, so it reuses
        # the smallest requested size and certifies by exhaustion.
        num_clients = min(args.clients)
        spec = GapCellSpec(
            tier="exact",
            num_clients=num_clients,
            scenario=args.scenario,
            seed_index=0,
        )
        result = cpsat_cross_check(spec.build_system(), SolverConfig(seed=0))
        print(
            f"cp-sat n={num_clients}: optimum {result.best_profit:.6f} over "
            f"{result.assignments_tried} assignments"
        )
        return 0

    breaches = 0
    specs: List[GapCellSpec] = []
    for point, num_clients in enumerate(args.clients):
        for seed_index in range(args.seeds):
            specs.append(
                GapCellSpec(
                    tier="exact",
                    num_clients=num_clients,
                    scenario=args.scenario,
                    point_index=point,
                    seed_index=seed_index,
                    node_budget=args.budget,
                    relative_gap_tolerance=args.tolerance,
                )
            )
    if args.dual_clients > 0:
        specs.append(
            GapCellSpec(
                tier="dual",
                num_clients=args.dual_clients,
                scenario=args.scenario,
                point_index=len(args.clients),
                seed_index=0,
            )
        )
    for spec in specs:
        result = run_gap_cell(spec)
        print(result.summary())
        breaches += len(result.failures)
    if breaches:
        print(f"gap harness: {breaches} breached check(s)")
        return 1
    print(
        f"gap harness: {len(specs)} cells clean "
        "(dual >= certified optimum >= heuristic)"
    )
    return 0


def _cmd_multitier(args: argparse.Namespace) -> int:
    from repro.multitier import MultiTierAllocator, generate_multitier_system

    system = generate_multitier_system(num_applications=args.apps, seed=args.seed)
    result = MultiTierAllocator(SolverConfig(seed=args.seed)).solve(system)
    print(result.breakdown.summary())
    rows = [
        (
            outcome.app_id,
            len(outcome.tier_response_times),
            outcome.cluster_id,
            outcome.response_time,
            outcome.revenue,
        )
        for outcome in result.breakdown.applications.values()
    ]
    print(
        format_table(["app", "tiers", "cluster", "end-to-end R", "revenue"], rows)
    )
    return 0


def _cmd_admission(args: argparse.Namespace) -> int:
    from repro.core.admission import admission_controlled_solve

    system = generate_system(num_clients=args.clients, seed=args.seed)
    result = admission_controlled_solve(system, SolverConfig(seed=args.seed))
    print(
        format_table(
            ["policy", "profit", "served"],
            [
                ("serve everyone", result.baseline_profit, system.num_clients),
                ("admission control", result.profit, len(result.accepted)),
            ],
        )
    )
    if result.rejected:
        print(f"\nrejected clients: {result.rejected}")
    else:
        print("\nno client was worth rejecting")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.analysis.prediction import run_prediction_study

    study = run_prediction_study(
        factors=tuple(args.factors),
        num_clients=args.clients,
        seed=args.seed,
        solver=SolverConfig(seed=args.seed),
    )
    print(study.to_table())
    return 0


_COMMANDS = {
    "describe": _cmd_describe,
    "solve": _cmd_solve,
    "compare": _cmd_compare,
    "experiment": _cmd_experiment,
    "simulate": _cmd_simulate,
    "epochs": _cmd_epochs,
    "serve": _cmd_serve,
    "audit": _cmd_audit,
    "gap": _cmd_gap,
    "multitier": _cmd_multitier,
    "admission": _cmd_admission,
    "predict": _cmd_predict,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        # Library errors are user-facing conditions (bad arguments, an
        # infeasible instance, a corrupt artifact), not bugs: one line on
        # stderr, exit status 2.  Tracebacks stay for real defects.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
