"""Simulated annealing over cluster assignments.

The paper names stochastic optimization ("Simulated Annealing or Genetic
Search") as the generic way to attack the MINLP; this implementation
exists so the benchmarks can quantify the quality/time trade-off against
the purpose-built heuristic.

State: a client -> cluster map, expanded into a full allocation by the
shared sub-solver.  Move: re-home one random client.  Acceptance:
Metropolis on the exactly evaluated profit with geometric cooling.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.config import SolverConfig
from repro.baselines.assignment import (
    build_allocation_for_assignment,
    random_assignment,
)
from repro.exceptions import ConfigurationError
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit


@dataclass(frozen=True)
class SimulatedAnnealingConfig:
    """Annealing schedule.

    ``initial_temperature`` is in profit units; with the paper's
    normalized parameters a profit swing of ~1 is a meaningful move, so
    the default starts warm enough to accept most early moves.
    """

    iterations: int = 300
    initial_temperature: float = 2.0
    cooling: float = 0.985
    min_temperature: float = 1e-4

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if self.initial_temperature <= 0:
            raise ConfigurationError("initial_temperature must be > 0")
        if not 0 < self.cooling < 1:
            raise ConfigurationError("cooling must lie in (0, 1)")
        if self.min_temperature <= 0:
            raise ConfigurationError("min_temperature must be > 0")


@dataclass
class AnnealingResult:
    best_profit: float
    best_allocation: Optional[Allocation]
    best_assignment: Dict[int, int]
    iterations: int
    accepted_moves: int
    runtime_seconds: float


def simulated_annealing(
    system: CloudSystem,
    sa_config: Optional[SimulatedAnnealingConfig] = None,
    solver_config: Optional[SolverConfig] = None,
    seed: Optional[int] = None,
) -> AnnealingResult:
    """Anneal the assignment; returns the best allocation encountered."""
    sa_config = sa_config or SimulatedAnnealingConfig()
    solver_config = solver_config or SolverConfig()
    rng = np.random.default_rng(seed)
    started = time.perf_counter()

    def profit_of(assignment: Dict[int, int]) -> tuple:
        state = build_allocation_for_assignment(
            system, assignment, solver_config, polish=False
        )
        profit = evaluate_profit(
            system, state.allocation, require_all_served=False
        ).total_profit
        return profit, state.allocation

    current = random_assignment(system, rng)
    current_profit, current_allocation = profit_of(current)
    best_profit, best_allocation = current_profit, current_allocation
    best_assignment = dict(current)

    cluster_ids = system.cluster_ids()
    client_ids = system.client_ids()
    temperature = sa_config.initial_temperature
    accepted = 0
    for _ in range(sa_config.iterations):
        candidate = dict(current)
        mover = client_ids[int(rng.integers(0, len(client_ids)))]
        candidate[mover] = cluster_ids[int(rng.integers(0, len(cluster_ids)))]
        candidate_profit, candidate_allocation = profit_of(candidate)
        delta = candidate_profit - current_profit
        if delta >= 0 or rng.random() < math.exp(delta / temperature):
            current = candidate
            current_profit = candidate_profit
            current_allocation = candidate_allocation
            accepted += 1
            if current_profit > best_profit:
                best_profit = current_profit
                best_allocation = current_allocation
                best_assignment = dict(current)
        temperature = max(
            temperature * sa_config.cooling, sa_config.min_temperature
        )
    return AnnealingResult(
        best_profit=best_profit,
        best_allocation=best_allocation,
        best_assignment=best_assignment,
        iterations=sa_config.iterations,
        accepted_moves=accepted,
        runtime_seconds=time.perf_counter() - started,
    )
