"""Proportional Share (PS) scheduling baselines (section VI).

The paper compares against a *modified* PS because the original (Liu,
Squillante & Wolf [8]) spreads every client across all active servers and
ignores utility classes.  The modification, as described in the paper:

* pool the active servers' processing capacities into one virtual server;
* weight each client's share by its average service rate on the active
  servers times the *slope of its utility function* (SLA awareness);
* serve clients in descending slope order and place the computed capacity
  on physical servers with a First-Fit-inspired rule, splitting a client
  onto the next server only when the best one runs out of room;
* iterate over the number of active servers and keep the best set;
* repeat the same procedure for the communication resource.

Because the paper's clients must live inside a single cluster, the
baseline first spreads clients over clusters by descending slope onto the
cluster with the most remaining pooled capacity (a detail the paper does
not specify; documented in DESIGN.md).

Both entry points return plain :class:`~repro.model.Allocation` objects
scored by the standard evaluator — no self-grading.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SolverConfig
from repro.model.allocation import Allocation
from repro.model.client import Client
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit
from repro.model.server import Server


@dataclass
class _Chunk:
    """Capacity amounts one client obtained on one server."""

    server_id: int
    processing: float  # absolute processing capacity units
    bandwidth: float  # absolute bandwidth capacity units


def _assign_clients_to_clusters(
    system: CloudSystem, clients: Sequence[Client]
) -> Dict[int, List[Client]]:
    """Slope-ordered balancing over pooled free capacity (both resources)."""
    remaining_p: Dict[int, float] = {}
    remaining_b: Dict[int, float] = {}
    for cluster in system.clusters:
        free_p, free_b, _ = cluster.free_capacity()
        remaining_p[cluster.cluster_id] = free_p
        remaining_b[cluster.cluster_id] = free_b
    members: Dict[int, List[Client]] = {k: [] for k in remaining_p}
    for client in sorted(
        clients, key=lambda c: c.utility_slope * c.rate_predicted, reverse=True
    ):
        target = max(
            remaining_p, key=lambda k: min(remaining_p[k], remaining_b[k])
        )
        members[target].append(client)
        remaining_p[target] -= client.rate_predicted * client.t_proc
        remaining_b[target] -= client.rate_predicted * client.t_comm
    return members


def _minimum_required(
    clients: Sequence[Client], resource: str, margin: float, sla_aware: bool
) -> Dict[int, float]:
    """The "minimum required capacity" of each client (paper, section VI).

    ``sla_aware=True`` sizes the minimum so the two-queue response time
    lands at 2/3 of the utility's zero crossing (positive revenue at the
    floor); ``False`` falls back to the bare stability bound with margin.
    """
    minima: Dict[int, float] = {}
    for c in clients:
        exec_time = c.t_proc if resource == "processing" else c.t_comm
        floor = c.rate_predicted * exec_time * margin
        if sla_aware:
            linear = c.utility_class.linear_approximation()
            if linear.slope > 0 and linear.base_value > 0:
                max_response = linear.base_value / linear.slope
                # Each of the two tandem queues gets W = R_max / 3.
                floor = max(
                    floor,
                    c.rate_predicted * exec_time + 3.0 * exec_time / max_response,
                )
        minima[c.client_id] = floor
    return minima


def _aggregate_demands(
    clients: Sequence[Client],
    mean_cap_processing: float,
    pooled: float,
    resource: str,
    minima: Dict[int, float],
) -> Optional[Dict[int, float]]:
    """Split pooled capacity among clients with SLA-weighted PS.

    Returns absolute capacity amounts per client, or ``None`` when even
    the required minima exceed the pool.
    """
    exec_time = {
        c.client_id: (c.t_proc if resource == "processing" else c.t_comm)
        for c in clients
    }
    total_min = sum(minima.values())
    if total_min > pooled:
        return None
    weights = {
        c.client_id: (mean_cap_processing / exec_time[c.client_id])
        * c.utility_class.function.slope_magnitude()
        for c in clients
    }
    total_weight = sum(weights.values())
    # Hold back a sliver of the pool: distributing 100% makes the later
    # First-Fit an exact-fill bin packing that almost always strands the
    # last client below its stability minimum.
    spare = (pooled - total_min) * 0.9
    shares = {}
    for c in clients:
        bonus = (
            spare * weights[c.client_id] / total_weight if total_weight > 0 else 0.0
        )
        shares[c.client_id] = minima[c.client_id] + bonus
    return shares


def _first_fit_placement(
    clients: Sequence[Client],
    servers: Sequence[Server],
    demand_p: Dict[int, float],
    demand_b: Dict[int, float],
    min_p: Dict[int, float],
    min_b: Dict[int, float],
) -> Optional[Dict[int, List[_Chunk]]]:
    """Place per-client capacity demands on physical servers, First-Fit style.

    Servers are visited in descending processing capacity ("the best
    server"), clients in descending utility slope; a client spills onto
    the next server only when the current one is exhausted.  Processing
    and bandwidth are carved *jointly* at the client's demand ratio so
    every branch stays stable regardless of how the split lands.  Because
    the pooled demand fills the pool exactly while per-server p:b mixes
    differ, a client may come up short; that is accepted as long as the
    placed amounts still clear the stability minima (the client just runs
    slower, which the evaluator prices).  Returns ``None`` when some
    client cannot reach its minima — the active set is then infeasible.
    """
    ordered_servers = sorted(
        servers, key=lambda s: s.cap_processing, reverse=True
    )
    free_p = {s.server_id: s.free_processing_share * s.cap_processing for s in servers}
    free_b = {s.server_id: s.free_bandwidth_share * s.cap_bandwidth for s in servers}
    free_m = {s.server_id: s.free_storage for s in servers}
    # chunks[cid][sid] -> _Chunk; storage is charged once per touched server.
    chunks: Dict[int, Dict[int, _Chunk]] = {c.client_id: {} for c in clients}

    def carve(client: Client, want_p: float, want_b: float) -> float:
        """Carve (p, b) jointly at the requested ratio; returns placed p."""
        cid = client.client_id
        ratio = want_b / want_p if want_p > 0 else 0.0
        need_p = want_p
        for server in ordered_servers:
            if need_p <= 1e-12:
                break
            sid = server.server_id
            if sid not in chunks[cid] and free_m[sid] < client.storage_req:
                continue
            take_p = min(free_p[sid], need_p)
            if ratio > 0:
                take_p = min(take_p, free_b[sid] / ratio)
            if take_p <= 1e-9:
                continue
            take_b = take_p * ratio
            if sid in chunks[cid]:
                chunks[cid][sid].processing += take_p
                chunks[cid][sid].bandwidth += take_b
            else:
                chunks[cid][sid] = _Chunk(
                    server_id=sid, processing=take_p, bandwidth=take_b
                )
                free_m[sid] -= client.storage_req
            free_p[sid] -= take_p
            free_b[sid] -= take_b
            need_p -= take_p
        return want_p - need_p

    by_slope = sorted(clients, key=lambda c: c.utility_slope, reverse=True)

    # Phase 1: everyone's required minimum.  A shortfall is tolerated as
    # long as the placed amount still clears the bare stability floor
    # (the client is just slower than its SLA target); below the floor
    # the active set genuinely cannot serve the population.
    for client in by_slope:
        cid = client.client_id
        placed = carve(client, min_p[cid], min_b[cid])
        stability_floor = client.rate_predicted * client.t_proc * 1.01
        if placed < min(min_p[cid] * (1.0 - 1e-9), stability_floor):
            return None

    # Phase 2: the PS bonus above the minimum; shortfalls just mean the
    # client runs slower, which the evaluator prices.  Bonus chunks keep
    # the minima's p:b ratio so that every branch's bandwidth scales with
    # its traffic share and stays stable.
    for client in by_slope:
        cid = client.client_id
        safe_ratio = min_b[cid] / min_p[cid]
        bonus_p = max(demand_p[cid] - min_p[cid], 0.0)
        bonus_b = max(demand_b[cid] - min_b[cid], 0.0)
        want_p = min(bonus_p, bonus_b / safe_ratio if safe_ratio > 0 else bonus_p)
        if want_p > 1e-12:
            carve(client, want_p, want_p * safe_ratio)

    return {cid: list(per_server.values()) for cid, per_server in chunks.items()}


def _placement_to_entries(
    system: CloudSystem,
    cluster_id: int,
    placements: Dict[int, List[_Chunk]],
    allocation: Allocation,
) -> None:
    """Convert capacity chunks into (alpha, phi) allocation entries."""
    for client_id, chunks in placements.items():
        total_p = sum(chunk.processing for chunk in chunks)
        if total_p <= 0:
            continue
        allocation.assign_client(client_id, cluster_id)
        for chunk in chunks:
            server = system.server(chunk.server_id)
            alpha = chunk.processing / total_p
            phi_p = chunk.processing / server.cap_processing
            phi_b = chunk.bandwidth / server.cap_bandwidth
            if alpha <= 0:
                continue
            allocation.set_entry(client_id, chunk.server_id, alpha, phi_p, phi_b)


def _cluster_score(
    system: CloudSystem, allocation: Allocation
) -> Tuple[int, float]:
    """(clients served, profit): serving everyone dominates (constraint (5))."""
    breakdown = evaluate_profit(system, allocation, require_all_served=False)
    served = sum(1 for outcome in breakdown.clients.values() if outcome.served)
    return served, breakdown.total_profit


def modified_proportional_share(
    system: CloudSystem,
    config: Optional[SolverConfig] = None,
) -> Allocation:
    """The paper's modified PS baseline; returns a full allocation.

    Per cluster, the number of active servers is swept from 1 to the
    cluster size and the most profitable active set is kept ("to find the
    best possible set of active servers, an iterative approach is used").
    """
    config = config or SolverConfig()
    members = _assign_clients_to_clusters(system, system.clients)
    final = Allocation()
    for cluster in system.clusters:
        clients = members.get(cluster.cluster_id, [])
        if not clients:
            continue
        by_capacity = sorted(
            cluster.servers, key=lambda s: s.cap_processing, reverse=True
        )
        best_score: Tuple[int, float] = (-1, -math.inf)
        best_placements: Optional[Dict[int, List[_Chunk]]] = None
        for active_count in range(1, len(by_capacity) + 1):
            active = by_capacity[:active_count]
            pooled_p = sum(s.free_processing_share * s.cap_processing for s in active)
            pooled_b = sum(s.free_bandwidth_share * s.cap_bandwidth for s in active)
            mean_cap = pooled_p / active_count
            # Prefer SLA-aware minimum required capacities; fall back to
            # bare stability minima when the active set is too small.
            placements = None
            for sla_aware in (True, False):
                min_p = _minimum_required(
                    clients, "processing", config.stability_margin, sla_aware
                )
                min_b = _minimum_required(
                    clients, "bandwidth", config.stability_margin, sla_aware
                )
                demand_p = _aggregate_demands(
                    clients, mean_cap, pooled_p, "processing", min_p
                )
                demand_b = _aggregate_demands(
                    clients, mean_cap, pooled_b, "bandwidth", min_b
                )
                if demand_p is None or demand_b is None:
                    continue
                placements = _first_fit_placement(
                    clients, active, demand_p, demand_b, min_p, min_b
                )
                if placements is not None:
                    break
            if placements is None:
                continue
            trial = Allocation()
            _placement_to_entries(system, cluster.cluster_id, placements, trial)
            trial_score = _cluster_score(system, trial)
            if trial_score > best_score:
                best_score = trial_score
                best_placements = placements
        if best_placements is not None:
            _placement_to_entries(
                system, cluster.cluster_id, best_placements, final
            )
        else:
            # No feasible PS configuration: bind the clients anyway so the
            # evaluator reports them as unserved rather than unknown.
            for client in clients:
                final.assign_client(client.client_id, cluster.cluster_id)
    return final


def original_proportional_share(
    system: CloudSystem,
    config: Optional[SolverConfig] = None,
) -> Allocation:
    """The unmodified PS of reference [8]: all servers on, no SLA weighting.

    Every client is spread over *all* storage-feasible servers of its
    cluster in proportion to raw processing capacity, with total capacity
    shares proportional to demand (``lambda * t``) only — no utility
    slopes, no active-set search.  Per-server budgets are tracked so the
    result is feasible (just poor); a client whose carved total cannot
    clear its stability minimum is left unserved, one of the failure
    modes that motivated the paper's modification.
    """
    config = config or SolverConfig()
    members = _assign_clients_to_clusters(system, system.clients)
    final = Allocation()
    for cluster in system.clusters:
        clients = members.get(cluster.cluster_id, [])
        if not clients:
            continue
        pooled_p = sum(s.free_processing_share * s.cap_processing for s in cluster)
        pooled_b = sum(s.free_bandwidth_share * s.cap_bandwidth for s in cluster)
        demand_weight = {c.client_id: c.rate_predicted * c.t_proc for c in clients}
        total_weight = sum(demand_weight.values())
        if total_weight <= 0 or pooled_p <= 0:
            continue
        rem_p = {s.server_id: s.free_processing_share * s.cap_processing for s in cluster}
        rem_b = {s.server_id: s.free_bandwidth_share * s.cap_bandwidth for s in cluster}
        rem_m = {s.server_id: s.free_storage for s in cluster}
        for client in sorted(clients, key=lambda c: c.client_id):
            cid = client.client_id
            final.assign_client(cid, cluster.cluster_id)
            share_p = pooled_p * demand_weight[cid] / total_weight
            share_b = pooled_b * demand_weight[cid] / total_weight
            min_p = client.rate_predicted * client.t_proc * config.stability_margin
            min_b = client.rate_predicted * client.t_comm * config.stability_margin
            if share_p < min_p or share_b < min_b:
                continue  # unserved under original PS
            ratio = share_b / share_p
            hosts = [
                s
                for s in cluster
                if rem_m[s.server_id] >= client.storage_req
                and rem_p[s.server_id] > 0
                and rem_b[s.server_id] > 0
            ]
            weight_sum = sum(s.cap_processing for s in hosts)
            if weight_sum <= 0:
                continue
            takes = []
            for server in hosts:
                sid = server.server_id
                want_p = share_p * server.cap_processing / weight_sum
                take_p = min(want_p, rem_p[sid], rem_b[sid] / ratio)
                if take_p <= 1e-12:
                    continue
                takes.append((server, take_p, take_p * ratio))
            placed_p = sum(t[1] for t in takes)
            if placed_p < min_p or placed_p * ratio < min_b:
                continue  # budgets too fragmented: unserved
            for server, take_p, take_b in takes:
                sid = server.server_id
                rem_p[sid] -= take_p
                rem_b[sid] -= take_b
                rem_m[sid] -= client.storage_req
                final.set_entry(
                    cid,
                    sid,
                    take_p / placed_p,
                    take_p / server.cap_processing,
                    take_b / server.cap_bandwidth,
                )
    return final
