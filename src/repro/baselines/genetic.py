"""Genetic search over cluster assignments.

The second generic stochastic optimizer the paper names.  Chromosome: the
client -> cluster vector.  Fitness: exactly evaluated profit of the
allocation the shared sub-solver builds for it.  Uniform crossover,
per-gene mutation, tournament selection, elitism.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import SolverConfig
from repro.baselines.assignment import (
    build_allocation_for_assignment,
    random_assignment,
)
from repro.exceptions import ConfigurationError
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit


@dataclass(frozen=True)
class GeneticConfig:
    population_size: int = 20
    generations: int = 15
    mutation_rate: float = 0.05
    tournament_size: int = 3
    elite_count: int = 2

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ConfigurationError("population_size must be >= 2")
        if self.generations < 1:
            raise ConfigurationError("generations must be >= 1")
        if not 0 <= self.mutation_rate <= 1:
            raise ConfigurationError("mutation_rate must lie in [0, 1]")
        if self.tournament_size < 1:
            raise ConfigurationError("tournament_size must be >= 1")
        if not 0 <= self.elite_count < self.population_size:
            raise ConfigurationError(
                "elite_count must lie in [0, population_size)"
            )


@dataclass
class GeneticResult:
    best_profit: float
    best_allocation: Optional[Allocation]
    best_assignment: Dict[int, int]
    generations: int
    evaluations: int
    runtime_seconds: float


def genetic_search(
    system: CloudSystem,
    ga_config: Optional[GeneticConfig] = None,
    solver_config: Optional[SolverConfig] = None,
    seed: Optional[int] = None,
) -> GeneticResult:
    """Evolve assignments; returns the best allocation encountered."""
    ga_config = ga_config or GeneticConfig()
    solver_config = solver_config or SolverConfig()
    rng = np.random.default_rng(seed)
    started = time.perf_counter()
    client_ids = system.client_ids()
    cluster_ids = system.cluster_ids()
    evaluations = 0

    def fitness(assignment: Dict[int, int]) -> Tuple[float, Allocation]:
        nonlocal evaluations
        evaluations += 1
        state = build_allocation_for_assignment(
            system, assignment, solver_config, polish=False
        )
        profit = evaluate_profit(
            system, state.allocation, require_all_served=False
        ).total_profit
        return profit, state.allocation

    population = [
        random_assignment(system, rng) for _ in range(ga_config.population_size)
    ]
    scored: List[Tuple[float, Dict[int, int], Allocation]] = []
    for genome in population:
        profit, allocation = fitness(genome)
        scored.append((profit, genome, allocation))
    scored.sort(key=lambda item: item[0], reverse=True)

    def tournament() -> Dict[int, int]:
        picks = rng.integers(0, len(scored), size=ga_config.tournament_size)
        winner = min(int(p) for p in picks)  # scored is sorted descending
        return scored[winner][1]

    for _ in range(ga_config.generations):
        next_generation: List[Dict[int, int]] = [
            dict(scored[i][1]) for i in range(ga_config.elite_count)
        ]
        while len(next_generation) < ga_config.population_size:
            mother, father = tournament(), tournament()
            child = {
                cid: (mother[cid] if rng.random() < 0.5 else father[cid])
                for cid in client_ids
            }
            for cid in client_ids:
                if rng.random() < ga_config.mutation_rate:
                    child[cid] = cluster_ids[int(rng.integers(0, len(cluster_ids)))]
            next_generation.append(child)
        scored = []
        for genome in next_generation:
            profit, allocation = fitness(genome)
            scored.append((profit, genome, allocation))
        scored.sort(key=lambda item: item[0], reverse=True)

    best_profit, best_assignment, best_allocation = scored[0]
    return GeneticResult(
        best_profit=best_profit,
        best_allocation=best_allocation,
        best_assignment=best_assignment,
        generations=ga_config.generations,
        evaluations=evaluations,
        runtime_seconds=time.perf_counter() - started,
    )
