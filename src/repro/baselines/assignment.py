"""Build full allocations from fixed client -> cluster assignments.

Several baselines (Monte Carlo, exhaustive, SA, GA) explore the space of
*assignments* and rely on a common sub-solver to turn an assignment into
actual traffic splits and GPS shares.  Following the paper ("allocate the
resources in the clusters based on the proposed solution"), that
sub-solver is the heuristic's own cluster-level machinery:
``Assign_Distribute`` per client, followed by optional share/dispersion
polish.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.config import SolverConfig
from repro.core.assign import apply_placement, assign_distribute
from repro.core.dispersion import adjust_dispersion_rates
from repro.core.power import force_client_into_cluster
from repro.core.shares import adjust_resource_shares
from repro.core.state import WorkingState
from repro.exceptions import SolverError
from repro.model.datacenter import CloudSystem


def build_allocation_for_assignment(
    system: CloudSystem,
    assignment: Dict[int, int],
    config: Optional[SolverConfig] = None,
    order: Optional[Sequence[int]] = None,
    polish: bool = True,
) -> WorkingState:
    """Turn a client -> cluster map into a concrete allocation.

    Clients are processed in ``order`` (default: ascending id); each gets
    its in-cluster ``Assign_Distribute`` placement.  Clients whose cluster
    cannot host them remain unserved (the evaluator prices that at zero
    revenue and, under the strict regime, as infeasible).  ``polish`` runs
    one round of share + dispersion adjustment afterwards.
    """
    config = config or SolverConfig()
    unknown = set(assignment) - set(system.client_ids())
    if unknown:
        raise SolverError(f"assignment references unknown clients {sorted(unknown)}")
    state = WorkingState(system)
    for client_id in order if order is not None else sorted(assignment):
        cluster_id = assignment[client_id]
        client = system.client(client_id)
        state.assign_client(client_id, cluster_id)
        placement = assign_distribute(state, client, cluster_id, config)
        if placement is not None:
            apply_placement(state, placement)
    # Serving every client is a hard constraint (6): clients whose cluster
    # had no *free* room get the same squeeze-and-resplit fallback the
    # main heuristic uses (restricted to their assigned cluster, since the
    # assignment is the caller's decision variable).
    for client_id in sorted(assignment):
        if state.allocation.entries_of_client(client_id):
            continue
        snapshot = state.snapshot()
        if not force_client_into_cluster(
            state, client_id, assignment[client_id], config
        ):
            state.restore(snapshot)
    if polish:
        for server in system.servers():
            if state.allocation.clients_on_server(server.server_id):
                adjust_resource_shares(state, server.server_id, config)
        for client_id in sorted(assignment):
            adjust_dispersion_rates(state, client_id, config)
    return state


def random_assignment(
    system: CloudSystem, rng: np.random.Generator
) -> Dict[int, int]:
    """Uniformly random client -> cluster map (the Monte Carlo move)."""
    cluster_ids = system.cluster_ids()
    return {
        client_id: cluster_ids[int(rng.integers(0, len(cluster_ids)))]
        for client_id in system.client_ids()
    }
