"""Rigorous analytical upper bound on achievable profit.

The Monte Carlo "best found" is only an empirical yardstick; this module
provides a *certificate*: no feasible allocation of the instance can earn
more than :func:`profit_upper_bound`.  Two relaxations, both sound:

* **Revenue bound** — constraint (6) pins every client inside a single
  cluster, so its mean response time can never fall below its
  zero-queueing service time on the best hardware *of its best cluster*:
  splitting traffic over ``k`` fully-dedicated servers drives the
  queueing delay toward zero but each branch still needs its processing
  time on that cluster's best ``C^p`` **and** its communication time on
  that cluster's best ``C^b``, so
  ``R_i >= min_k (t^p_i / C^p_best(k) + t^b_i / C^b_best(k))``.
  Utilities are non-increasing, hence
  ``revenue_i <= lambda^a_i * U_i(R_min_i)``.  (The old bound paired the
  fleet-wide best processing capacity with the fleet-wide best bandwidth
  even when no cluster offers both; the per-cluster pairing is never
  looser and strictly tighter whenever the two maxima live in different
  clusters.)
* **Cost bound** — stability forces every feasible allocation to commit
  processing capacity of at least ``lambda_i * t^p_i`` per client.  For
  any server, ``P0 + P1 * u >= (P0 + P1) * u`` for ``u in [0, 1]``, so the
  total cost is at least the committed capacity times the cheapest
  per-capacity coefficient ``(P0_j + P1_j) / C^p_j`` over the fleet.

When the problem requires serving everyone (the paper's constraint (6)),
``profit <= sum_i revenue_bound_i - cost_bound``.  Without that
constraint, clients whose revenue bound cannot cover their own cost
floor are excluded from both sums (they would simply not be served),
which keeps the bound valid for the admission-controlled variant too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.model.datacenter import CloudSystem


@dataclass(frozen=True)
class UpperBound:
    """The certificate and its ingredients."""

    profit_bound: float
    revenue_bound: float
    cost_bound: float
    per_client_revenue: Dict[int, float]
    min_response_times: Dict[int, float]


def profit_upper_bound(
    system: CloudSystem, require_all_served: bool = True
) -> UpperBound:
    """Sound upper bound on the profit of any feasible allocation."""
    cluster_best_caps = [
        (
            max(s.cap_processing for s in cluster),
            max(s.cap_bandwidth for s in cluster),
        )
        for cluster in system.clusters
    ]
    cheapest_capacity_cost = min(
        (s.server_class.power_fixed + s.server_class.power_per_util)
        / s.cap_processing
        for s in system.servers()
    )

    per_client_revenue: Dict[int, float] = {}
    min_response: Dict[int, float] = {}
    revenue_total = 0.0
    cost_total = 0.0
    for client in system.clients:
        r_min = min(
            client.t_proc / cap_p + client.t_comm / cap_b
            for cap_p, cap_b in cluster_best_caps
        )
        revenue_cap = client.rate_agreed * client.utility_class.function.value(r_min)
        cost_floor = (
            client.rate_predicted * client.t_proc * cheapest_capacity_cost
        )
        min_response[client.client_id] = r_min
        per_client_revenue[client.client_id] = revenue_cap
        if require_all_served or revenue_cap - cost_floor > 0:
            revenue_total += revenue_cap
            cost_total += cost_floor

    return UpperBound(
        profit_bound=revenue_total - cost_total,
        revenue_bound=revenue_total,
        cost_bound=cost_total,
        per_client_revenue=per_client_revenue,
        min_response_times=min_response,
    )
