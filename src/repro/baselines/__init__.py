"""Baselines and reference solvers the paper evaluates against.

* :mod:`repro.baselines.assignment` — shared machinery: build a full
  resource allocation from a fixed client -> cluster map;
* :mod:`repro.baselines.monte_carlo` — random assignments + local search;
  its best-of-N result is the paper's "best solution found" reference and
  its worst cases feed Figure 5;
* :mod:`repro.baselines.proportional_share` — the modified Proportional
  Share scheduler of section VI (and the original flavor it improves on);
* :mod:`repro.baselines.exhaustive` — enumeration over cluster
  assignments for instances small enough to afford it;
* :mod:`repro.baselines.annealing` / :mod:`repro.baselines.genetic` —
  the stochastic optimizers the paper names as the generic alternative
  ("Simulated Annealing or Genetic Search").
"""

from repro.baselines.assignment import (
    build_allocation_for_assignment,
    random_assignment,
)
from repro.baselines.monte_carlo import MonteCarloResult, MonteCarloSearch
from repro.baselines.proportional_share import (
    modified_proportional_share,
    original_proportional_share,
)
from repro.baselines.exhaustive import exhaustive_search
from repro.baselines.bounds import UpperBound, profit_upper_bound
from repro.baselines.annealing import SimulatedAnnealingConfig, simulated_annealing
from repro.baselines.genetic import GeneticConfig, genetic_search

__all__ = [
    "build_allocation_for_assignment",
    "random_assignment",
    "MonteCarloResult",
    "MonteCarloSearch",
    "modified_proportional_share",
    "original_proportional_share",
    "exhaustive_search",
    "UpperBound",
    "profit_upper_bound",
    "SimulatedAnnealingConfig",
    "simulated_annealing",
    "GeneticConfig",
    "genetic_search",
]
