"""Monte Carlo reference search (section VI).

The paper's near-optimal yardstick: generate many random client -> cluster
assignments, build each into a full allocation with the cluster-level
sub-solver, improve it with the cluster-reassignment local search, and
keep the best.  With enough samples this tracks the optimum closely on
the studied instance sizes ("at least 10,000 random solutions ... in order
to find the best possible solution from this Monte Carlo like simulation").

The per-trial records also provide Figure 5's series: the worst random
initial solution, the same solution after optimization, and the worst
optimized trial.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import SolverConfig
from repro.baselines.assignment import (
    build_allocation_for_assignment,
    random_assignment,
)
from repro.core.local_search import cluster_reassignment_search
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit


@dataclass
class MonteCarloResult:
    """Outcome of a Monte Carlo run.

    ``initial_profits[t]`` / ``optimized_profits[t]`` are the t-th trial's
    profit before / after local search.  Convenience accessors pull out
    the statistics Figures 4 and 5 need.
    """

    best_profit: float
    best_allocation: Optional[Allocation]
    initial_profits: List[float] = field(default_factory=list)
    optimized_profits: List[float] = field(default_factory=list)
    runtime_seconds: float = 0.0

    @property
    def trials(self) -> int:
        return len(self.optimized_profits)

    @property
    def worst_initial_profit(self) -> float:
        return min(self.initial_profits) if self.initial_profits else math.nan

    @property
    def worst_initial_after_search(self) -> float:
        """Optimized profit of the trial whose *initial* solution was worst."""
        if not self.initial_profits:
            return math.nan
        worst_idx = int(np.argmin(self.initial_profits))
        return self.optimized_profits[worst_idx]

    @property
    def worst_optimized_profit(self) -> float:
        return min(self.optimized_profits) if self.optimized_profits else math.nan


class MonteCarloSearch:
    """Random assignments + local search, best of ``num_trials``."""

    def __init__(
        self,
        num_trials: int = 100,
        config: Optional[SolverConfig] = None,
        local_search: bool = True,
        max_search_passes: int = 5,
    ) -> None:
        if num_trials < 1:
            raise ValueError(f"num_trials must be >= 1, got {num_trials}")
        self.num_trials = num_trials
        self.config = config or SolverConfig()
        self.local_search = local_search
        self.max_search_passes = max_search_passes

    def run(
        self, system: CloudSystem, seed: Optional[int] = None
    ) -> MonteCarloResult:
        rng = np.random.default_rng(
            seed if seed is not None else self.config.seed
        )
        started = time.perf_counter()
        best_key = (-1, -math.inf)
        best_profit = -math.inf
        best_allocation: Optional[Allocation] = None
        initial_profits: List[float] = []
        optimized_profits: List[float] = []
        num_clients = system.num_clients
        for _ in range(self.num_trials):
            assignment = random_assignment(system, rng)
            state = build_allocation_for_assignment(
                system, assignment, self.config
            )
            initial = evaluate_profit(
                system, state.allocation, require_all_served=False
            ).total_profit
            initial_profits.append(initial)
            allocation = state.allocation
            if self.local_search:
                allocation = cluster_reassignment_search(
                    system,
                    allocation,
                    self.config,
                    rng=rng,
                    max_passes=self.max_search_passes,
                )
            breakdown = evaluate_profit(
                system, allocation, require_all_served=False
            )
            optimized = breakdown.total_profit
            optimized_profits.append(optimized)
            # Serving all clients is constraint (6): a trial that drops a
            # client never counts as "best found" over one serving all.
            served = sum(1 for c in breakdown.clients.values() if c.served)
            key = (int(served == num_clients), optimized)
            if key > best_key:
                best_key = key
                best_profit = optimized
                best_allocation = allocation
        return MonteCarloResult(
            best_profit=best_profit,
            best_allocation=best_allocation,
            initial_profits=initial_profits,
            optimized_profits=optimized_profits,
            runtime_seconds=time.perf_counter() - started,
        )
