"""Exhaustive enumeration over client -> cluster assignments.

For tiny instances (``K ** N`` assignments) this enumerates every
assignment, builds each one with the shared cluster-level sub-solver and
returns the best.  It is the closest thing to ground truth available for
testing the heuristic's solution quality; the continuous inner problem is
still solved by the (convex, hence exact-per-subproblem) KKT machinery.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import SolverConfig
from repro.baselines.assignment import build_allocation_for_assignment
from repro.exceptions import SearchSpaceError
from repro.model.allocation import Allocation
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit

#: Refuse to enumerate more than this many assignments.
MAX_ASSIGNMENTS = 2_000_000


@dataclass
class ExhaustiveResult:
    best_profit: float
    best_allocation: Optional[Allocation]
    best_assignment: Optional[Dict[int, int]]
    assignments_tried: int

    @property
    def nodes_evaluated(self) -> int:
        """Search effort in the gap harness's uniform vocabulary.

        Flat enumeration has no interior nodes: every node it touches is a
        fully built leaf, so effort equals ``assignments_tried``.
        """
        return self.assignments_tried


def exhaustive_search(
    system: CloudSystem,
    config: Optional[SolverConfig] = None,
    polish: bool = True,
) -> ExhaustiveResult:
    """Try every client -> cluster assignment; keep the most profitable.

    Raises :class:`SearchSpaceError` carrying the computed ``K ** N`` when
    the space exceeds ``MAX_ASSIGNMENTS`` — this reference is for tests
    and tiny demos only.
    """
    config = config or SolverConfig()
    client_ids = system.client_ids()
    cluster_ids = system.cluster_ids()
    total = len(cluster_ids) ** len(client_ids)
    if total > MAX_ASSIGNMENTS:
        raise SearchSpaceError(
            f"{total} assignments exceed the exhaustive-search cap "
            f"({MAX_ASSIGNMENTS}); use branch_and_bound or MonteCarloSearch "
            "instead",
            total_assignments=total,
            cap=MAX_ASSIGNMENTS,
        )
    best_profit = -math.inf
    best_allocation: Optional[Allocation] = None
    best_assignment: Optional[Dict[int, int]] = None
    tried = 0
    for combo in itertools.product(cluster_ids, repeat=len(client_ids)):
        assignment = dict(zip(client_ids, combo))
        state = build_allocation_for_assignment(
            system, assignment, config, polish=polish
        )
        profit = evaluate_profit(
            system, state.allocation, require_all_served=False
        ).total_profit
        tried += 1
        if profit > best_profit:
            best_profit = profit
            best_allocation = state.allocation
            best_assignment = assignment
    return ExhaustiveResult(
        best_profit=best_profit,
        best_allocation=best_allocation,
        best_assignment=best_assignment,
        assignments_tried=tried,
    )
