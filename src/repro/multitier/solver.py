"""Multi-tier profit-maximizing allocator.

Reuses the whole flat toolbox on the expanded problem while preserving
the two application-level constraints:

* **co-location** — all tiers of an application live in one cluster.
  Every intra-cluster move (share adjustment, dispersion, power on/off)
  preserves it by construction; the only cross-cluster move is the
  *application-level* reassignment pass, which relocates whole apps;
* **all-or-nothing service** — an application earns revenue only when
  every tier is served.

Move gates: the intra-cluster flat moves are gated by the flat
(linear-surrogate) score — exact for linear SLAs thanks to the additive
decomposition — while the application-level moves are gated by the true
multi-tier evaluator, so clipped/stepped SLAs are honored where it
matters most.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.config import SolverConfig
from repro.core.assign import apply_placement, assign_distribute
from repro.core.dispersion import adjust_dispersion_rates
from repro.core.power import (
    force_client_into_cluster,
    turn_off_servers,
    turn_on_servers,
)
from repro.core.shares import adjust_resource_shares
from repro.core.state import WorkingState
from repro.model.allocation import Allocation
from repro.multitier.model import (
    FlatExpansion,
    MultiTierSystem,
    expand_to_flat,
)
from repro.multitier.profit import MultiTierBreakdown, evaluate_multitier_profit


@dataclass
class MultiTierResult:
    allocation: Allocation
    breakdown: MultiTierBreakdown
    expansion: FlatExpansion
    profit_history: List[float] = field(default_factory=list)
    rounds: int = 0
    runtime_seconds: float = 0.0

    @property
    def profit(self) -> float:
        return self.breakdown.total_profit


class MultiTierAllocator:
    """Profit maximization for pipelines of tiers under end-to-end SLAs."""

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        self.config = config or SolverConfig()

    # -- scoring ------------------------------------------------------------

    def _score(
        self,
        system: MultiTierSystem,
        expansion: FlatExpansion,
        allocation: Allocation,
    ) -> float:
        """True multi-tier profit; -inf on any hard resource violation."""
        breakdown = evaluate_multitier_profit(
            system,
            expansion,
            allocation,
            require_all_served=False,
            require_colocation=False,
        )
        if breakdown.violations:
            return -math.inf
        return breakdown.total_profit

    # -- construction --------------------------------------------------------

    def _place_app(
        self,
        state: WorkingState,
        expansion: FlatExpansion,
        app_id: int,
    ) -> bool:
        """Place all tiers of one app in its estimated-best cluster."""
        flat = expansion.flat_system
        tier_ids = expansion.tier_clients[app_id]
        best_estimate = -math.inf
        best_snapshot: Optional[Allocation] = None
        origin = state.snapshot()
        for cluster_id in flat.cluster_ids():
            estimate = 0.0
            feasible = True
            for client_id in tier_ids:
                client = flat.client(client_id)
                state.assign_client(client_id, cluster_id)
                placement = assign_distribute(state, client, cluster_id, self.config)
                if placement is None:
                    feasible = False
                    break
                apply_placement(state, placement)
                estimate += placement.estimated_profit
            if feasible and estimate > best_estimate:
                best_estimate = estimate
                best_snapshot = state.snapshot()
            state.restore(origin)
        if best_snapshot is not None:
            state.restore(best_snapshot)
            return True
        # Nowhere has free room for the whole pipeline: force it into the
        # slackest cluster, tier by tier.
        clusters = sorted(
            flat.cluster_ids(),
            key=lambda kid: sum(
                state.free_processing(sid) + state.free_bandwidth(sid)
                for sid in flat.cluster(kid).server_ids()
            ),
            reverse=True,
        )
        for cluster_id in clusters:
            checkpoint = state.snapshot()
            if all(
                force_client_into_cluster(state, client_id, cluster_id, self.config)
                for client_id in tier_ids
            ):
                return True
            state.restore(checkpoint)
        return False

    def _greedy_pass(
        self,
        system: MultiTierSystem,
        expansion: FlatExpansion,
        rng: np.random.Generator,
    ) -> WorkingState:
        state = WorkingState(expansion.flat_system)
        order = [app.app_id for app in system.applications]
        rng.shuffle(order)
        for app_id in order:
            self._place_app(state, expansion, app_id)
        return state

    # -- improvement -----------------------------------------------------------

    def _app_reassignment_pass(
        self,
        system: MultiTierSystem,
        expansion: FlatExpansion,
        state: WorkingState,
        rng: np.random.Generator,
    ) -> float:
        """Move whole applications between clusters, gated by true profit."""
        order = [app.app_id for app in system.applications]
        rng.shuffle(order)
        total_delta = 0.0
        for app_id in order:
            before = self._score(system, expansion, state.allocation)
            snapshot = state.snapshot()
            for client_id in expansion.tier_clients[app_id]:
                state.unassign_client(client_id)
            if not self._place_app(state, expansion, app_id):
                state.restore(snapshot)
                continue
            after = self._score(system, expansion, state.allocation)
            if after > before + 1e-12:
                total_delta += after - before
            else:
                state.restore(snapshot)
        return total_delta

    def _improvement_round(
        self,
        system: MultiTierSystem,
        expansion: FlatExpansion,
        state: WorkingState,
        rng: np.random.Generator,
        blocked: Set[int],
    ) -> None:
        flat = expansion.flat_system
        for server in flat.servers():
            if state.allocation.clients_on_server(server.server_id):
                adjust_resource_shares(state, server.server_id, self.config)
        for client_id in flat.client_ids():
            adjust_dispersion_rates(state, client_id, self.config)
        for cluster_id in flat.cluster_ids():
            turn_on_servers(state, cluster_id, self.config)
            turn_off_servers(state, cluster_id, self.config, blocked)
        if self.config.include_cluster_reassignment:
            self._app_reassignment_pass(system, expansion, state, rng)

    # -- driver ------------------------------------------------------------------

    def solve(self, system: MultiTierSystem) -> MultiTierResult:
        started = time.perf_counter()
        expansion = expand_to_flat(system)
        rng = np.random.default_rng(self.config.seed)

        best_state: Optional[WorkingState] = None
        best_profit = -math.inf
        for _ in range(self.config.num_initial_solutions):
            state = self._greedy_pass(system, expansion, rng)
            profit = self._score(system, expansion, state.allocation)
            if profit > best_profit:
                best_profit = profit
                best_state = state
        assert best_state is not None
        state = best_state

        blocked: Set[int] = set()
        history = [self._score(system, expansion, state.allocation)]
        rounds = 0
        for _ in range(self.config.max_improvement_rounds):
            self._improvement_round(system, expansion, state, rng, blocked)
            rounds += 1
            profit = self._score(system, expansion, state.allocation)
            history.append(profit)
            if profit <= history[-2] + self.config.improvement_tolerance:
                break

        breakdown = evaluate_multitier_profit(
            system, expansion, state.allocation
        )
        return MultiTierResult(
            allocation=state.allocation,
            breakdown=breakdown,
            expansion=expansion,
            profit_history=history,
            rounds=rounds,
            runtime_seconds=time.perf_counter() - started,
        )
