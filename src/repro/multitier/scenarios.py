"""Generators for multi-tier problem instances.

Hardware and SLA classes come from the flat section-VI generator; the
application pipelines follow the classic three-tier pattern: a light
web tier, a compute-heavy application tier, and a storage-heavy database
tier, with the per-tier parameters drawn from the same published ranges.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.model.utility import ClippedLinearUtility, UtilityClass
from repro.multitier.model import MultiTierApplication, MultiTierSystem, TierSpec
from repro.workload.generator import WorkloadConfig, generate_system


def generate_multitier_system(
    num_applications: int,
    seed: Optional[int] = None,
    min_tiers: int = 2,
    max_tiers: int = 3,
    config: Optional[WorkloadConfig] = None,
    name: str = "",
) -> MultiTierSystem:
    """Draw a random multi-tier instance.

    The flat generator supplies clusters (auto-sized for the total tier
    count) and utility classes; each application gets ``min_tiers`` to
    ``max_tiers`` tiers whose execution times and storage needs are drawn
    from the flat config's published ranges.
    """
    if num_applications < 1:
        raise ValueError(f"num_applications must be >= 1, got {num_applications}")
    if not 1 <= min_tiers <= max_tiers:
        raise ValueError("need 1 <= min_tiers <= max_tiers")
    rng = np.random.default_rng(seed)
    expected_tiers = num_applications * (min_tiers + max_tiers) // 2
    base = generate_system(
        num_clients=max(expected_tiers, 1),
        seed=seed,
        config=config,
        name=name or f"multitier(n={num_applications}, seed={seed})",
    )
    flat_config = config or WorkloadConfig()
    utility_classes = sorted(
        {c.utility_class.index: c.utility_class for c in base.clients}.values(),
        key=lambda u: u.index,
    )

    tier_names = ("web", "app", "db", "cache", "batch")
    applications = []
    for app_id in range(num_applications):
        num_tiers = int(rng.integers(min_tiers, max_tiers + 1))
        tiers = []
        for level in range(num_tiers):
            lo, hi = flat_config.exec_time_range
            m_lo, m_hi = flat_config.storage_req_range
            tiers.append(
                TierSpec(
                    name=tier_names[level % len(tier_names)],
                    t_proc=float(rng.uniform(lo, hi)),
                    t_comm=float(rng.uniform(lo, hi)),
                    # Deeper tiers are more storage-heavy (db >> web).
                    storage_req=float(rng.uniform(m_lo, m_hi))
                    * (0.5 + 0.5 * level),
                )
            )
        r_lo, r_hi = flat_config.rate_range
        rate = float(rng.uniform(r_lo, r_hi))
        # A K-tier contract consumes ~K servers' worth of capacity and
        # accumulates K queueing delays, so its price scales with K to
        # keep the per-tier economics aligned with the flat instances.
        base_class = utility_classes[int(rng.integers(0, len(utility_classes)))]
        linear = base_class.linear_approximation()
        app_utility = UtilityClass(
            index=base_class.index,
            name=f"{base_class.name}-x{num_tiers}",
            function=ClippedLinearUtility(
                base_value=linear.base_value * num_tiers,
                slope=linear.slope,
            ),
        )
        applications.append(
            MultiTierApplication(
                app_id=app_id,
                utility_class=app_utility,
                rate_agreed=rate,
                rate_predicted=rate * flat_config.predicted_rate_factor,
                tiers=tuple(tiers),
            )
        )
    return MultiTierSystem(
        clusters=base.clusters,
        applications=applications,
        name=base.name,
    )
