"""Multi-tier applications — the paper's stated future work.

Section VII: "In future works, the model will be expanded to deployment
of complex multi-tier applications in a cloud computing infrastructure."
(The authors did exactly that in their 2011 follow-up on multi-tier
SLA-based allocation.)  This subpackage implements that extension on top
of the flat machinery:

* an *application* is a pipeline of *tiers* (web -> app -> db, ...); every
  request visits every tier, so all tiers see the application's arrival
  rate and the end-to-end response time is the **sum of tier response
  times**;
* the SLA prices the end-to-end response time;
* all tiers of an application are co-located in one cluster (the paper's
  single-cluster constraint (6), lifted to applications).

The additive response time makes the linear-utility surrogate decompose
*exactly*: ``U(sum_k R_k) = sum_k (v / K - beta R_k)``, so each tier can
be treated as a flat pseudo-client with utility ``v/K - beta R`` and the
whole flat toolbox (Assign_Distribute, share/dispersion adjusters, power
moves) applies unchanged.  True (clipped) profit is scored by the
dedicated evaluator in :mod:`repro.multitier.profit`.
"""

from repro.multitier.model import (
    TierSpec,
    MultiTierApplication,
    MultiTierSystem,
    FlatExpansion,
    expand_to_flat,
)
from repro.multitier.profit import (
    ApplicationOutcome,
    MultiTierBreakdown,
    evaluate_multitier_profit,
)
from repro.multitier.solver import MultiTierAllocator, MultiTierResult
from repro.multitier.scenarios import generate_multitier_system

__all__ = [
    "generate_multitier_system",
    "TierSpec",
    "MultiTierApplication",
    "MultiTierSystem",
    "FlatExpansion",
    "expand_to_flat",
    "ApplicationOutcome",
    "MultiTierBreakdown",
    "evaluate_multitier_profit",
    "MultiTierAllocator",
    "MultiTierResult",
]
