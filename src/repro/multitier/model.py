"""Multi-tier system model and its expansion to the flat problem."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import ModelError
from repro.model.client import Client
from repro.model.cluster import Cluster
from repro.model.datacenter import CloudSystem
from repro.model.utility import LinearUtility, UtilityClass


@dataclass(frozen=True)
class TierSpec:
    """One tier of an application pipeline.

    ``t_proc`` / ``t_comm`` are the tier's mean execution times on a unit
    resource (the same semantics as a flat client's); ``storage_req`` is
    the disk footprint each server hosting this tier must reserve.
    """

    name: str
    t_proc: float
    t_comm: float
    storage_req: float

    def __post_init__(self) -> None:
        if self.t_proc <= 0 or self.t_comm <= 0:
            raise ModelError(f"tier {self.name!r}: execution times must be > 0")
        if self.storage_req < 0:
            raise ModelError(f"tier {self.name!r}: storage_req must be >= 0")


@dataclass(frozen=True)
class MultiTierApplication:
    """A pipeline of tiers sold under one end-to-end SLA.

    Every request traverses every tier, so each tier's queues see the
    application's full arrival rate and the SLA's response time is the
    sum over tiers.
    """

    app_id: int
    utility_class: UtilityClass
    rate_agreed: float
    tiers: Tuple[TierSpec, ...]
    rate_predicted: float = -1.0

    def __post_init__(self) -> None:
        if self.app_id < 0:
            raise ModelError(f"app_id must be >= 0, got {self.app_id}")
        if self.rate_agreed <= 0:
            raise ModelError(f"rate_agreed must be > 0, got {self.rate_agreed}")
        if not self.tiers:
            raise ModelError("an application needs at least one tier")
        if self.rate_predicted == -1.0:
            object.__setattr__(self, "rate_predicted", self.rate_agreed)
        if self.rate_predicted <= 0:
            raise ModelError(
                f"rate_predicted must be > 0, got {self.rate_predicted}"
            )

    @property
    def num_tiers(self) -> int:
        return len(self.tiers)


@dataclass
class MultiTierSystem:
    """Hardware (the flat clusters) plus the multi-tier application set."""

    clusters: List[Cluster]
    applications: List[MultiTierApplication]
    name: str = ""

    def __post_init__(self) -> None:
        seen = set()
        for app in self.applications:
            if app.app_id in seen:
                raise ModelError(f"duplicate app_id {app.app_id}")
            seen.add(app.app_id)

    @property
    def num_applications(self) -> int:
        return len(self.applications)

    def application(self, app_id: int) -> MultiTierApplication:
        for app in self.applications:
            if app.app_id == app_id:
                return app
        raise ModelError(f"unknown app_id {app_id}")


@dataclass
class FlatExpansion:
    """The flat problem equivalent to a multi-tier system.

    ``flat_system`` contains one pseudo-client per (application, tier);
    ``tier_clients[app_id]`` lists the pseudo-client ids tier by tier,
    and ``app_of_client`` inverts the mapping.
    """

    flat_system: CloudSystem
    tier_clients: Dict[int, List[int]] = field(default_factory=dict)
    app_of_client: Dict[int, int] = field(default_factory=dict)


def expand_to_flat(system: MultiTierSystem) -> FlatExpansion:
    """One pseudo-client per tier, with the exact linear decomposition.

    The per-tier utility is ``v / K - beta * R`` where ``v`` and ``beta``
    come from the application's linear surrogate and ``K`` is its tier
    count: summed over tiers this reproduces ``v - beta * sum_k R_k``
    exactly, so optimizing the flat problem optimizes the (unclipped)
    multi-tier profit.  Utility-class indices are synthesized per
    application (they only need to be internally consistent).
    """
    clients: List[Client] = []
    tier_clients: Dict[int, List[int]] = {}
    app_of_client: Dict[int, int] = {}
    next_client_id = 0
    for app_index, app in enumerate(system.applications):
        linear = app.utility_class.linear_approximation()
        per_tier_utility = UtilityClass(
            index=app_index,
            name=f"app-{app.app_id}-tier-share",
            function=LinearUtility(
                base_value=linear.base_value / app.num_tiers,
                slope=linear.slope,
            ),
        )
        ids: List[int] = []
        for tier in app.tiers:
            clients.append(
                Client(
                    client_id=next_client_id,
                    utility_class=per_tier_utility,
                    rate_agreed=app.rate_agreed,
                    rate_predicted=app.rate_predicted,
                    t_proc=tier.t_proc,
                    t_comm=tier.t_comm,
                    storage_req=tier.storage_req,
                )
            )
            ids.append(next_client_id)
            app_of_client[next_client_id] = app.app_id
            next_client_id += 1
        tier_clients[app.app_id] = ids
    flat = CloudSystem(
        clusters=system.clusters,
        clients=clients,
        name=f"{system.name}/flat" if system.name else "multitier/flat",
    )
    return FlatExpansion(
        flat_system=flat,
        tier_clients=tier_clients,
        app_of_client=app_of_client,
    )
