"""True multi-tier profit: end-to-end response priced by the real SLA.

The flat expansion optimizes the *linear* surrogate; this evaluator
re-scores an allocation with the application's actual (possibly clipped
or stepped) utility applied to the *sum* of tier response times, plus the
standard server costs and a co-location check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.model.allocation import Allocation
from repro.model.profit import client_response_time, evaluate_profit
from repro.model.validation import Violation
from repro.multitier.model import FlatExpansion, MultiTierSystem


@dataclass(frozen=True)
class ApplicationOutcome:
    """Evaluation of one application under an allocation."""

    app_id: int
    response_time: float  # end-to-end (sum over tiers); inf if any tier unserved
    tier_response_times: List[float]
    utility_value: float
    revenue: float
    served: bool
    colocated: bool
    cluster_id: Optional[int]


@dataclass
class MultiTierBreakdown:
    """Totals plus per-application detail."""

    total_profit: float
    total_revenue: float
    total_cost: float
    applications: Dict[int, ApplicationOutcome] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        served = sum(1 for o in self.applications.values() if o.served)
        status = "feasible" if self.feasible else f"{len(self.violations)} violations"
        return (
            f"profit={self.total_profit:.4f} (revenue={self.total_revenue:.4f}, "
            f"cost={self.total_cost:.4f}), apps served={served}/"
            f"{len(self.applications)}, {status}"
        )


def evaluate_multitier_profit(
    system: MultiTierSystem,
    expansion: FlatExpansion,
    allocation: Allocation,
    require_all_served: bool = True,
    require_colocation: bool = True,
) -> MultiTierBreakdown:
    """Score an allocation of the flat expansion against the true SLAs."""
    flat = expansion.flat_system
    # Hard resource constraints come from the flat validator; the
    # "every client served" flat constraint is replaced by the per-app
    # checks below, so it is disabled here.
    flat_breakdown = evaluate_profit(flat, allocation, require_all_served=False)
    violations = list(flat_breakdown.violations)

    total_revenue = 0.0
    outcomes: Dict[int, ApplicationOutcome] = {}
    for app in system.applications:
        tier_ids = expansion.tier_clients[app.app_id]
        tier_responses: List[float] = []
        clusters = set()
        served = True
        for client_id in tier_ids:
            if not allocation.entries_of_client(client_id):
                served = False
                tier_responses.append(math.inf)
                continue
            clusters.add(allocation.cluster_of.get(client_id))
            tier_responses.append(client_response_time(flat, allocation, client_id))
        response = sum(tier_responses)
        if math.isinf(response):
            served = False
        colocated = len(clusters) <= 1
        utility_value = app.utility_class.function.value(response)
        if math.isinf(utility_value):
            utility_value = 0.0
        revenue = app.rate_agreed * utility_value if served else 0.0
        total_revenue += revenue
        outcomes[app.app_id] = ApplicationOutcome(
            app_id=app.app_id,
            response_time=response,
            tier_response_times=tier_responses,
            utility_value=utility_value if served else 0.0,
            revenue=revenue,
            served=served,
            colocated=colocated,
            cluster_id=next(iter(clusters)) if len(clusters) == 1 else None,
        )
        if require_all_served and not served:
            violations.append(
                Violation(
                    "(6)",
                    f"application {app.app_id}",
                    "not all tiers are served",
                )
            )
        if require_colocation and not colocated:
            violations.append(
                Violation(
                    "(6)",
                    f"application {app.app_id}",
                    f"tiers span clusters {sorted(c for c in clusters if c is not None)}",
                )
            )

    total_cost = flat_breakdown.total_cost
    return MultiTierBreakdown(
        total_profit=total_revenue - total_cost,
        total_revenue=total_revenue,
        total_cost=total_cost,
        applications=outcomes,
        violations=violations,
    )
