"""Fault-tolerant parallel experiment engine.

The paper's figures need dozens of independent solver runs (one per
``(num_clients, scenario)`` **cell**), each internally deterministic.
This module turns such a sweep into something that can run unattended on
many cores and survive the failures a paper-sized run meets in practice:

* **sharding** — cells are executed by a ``ProcessPoolExecutor``
  (``n_workers > 1``) or inline (``n_workers == 1``, the default and the
  differential oracle: both paths must produce bit-identical results);
* **determinism** — every cell derives its random streams from a single
  :class:`numpy.random.SeedSequence` tree keyed by *named* spawn keys
  ``(experiment, point, scenario)``, so results do not depend on worker
  count or completion order, and adjacent user seeds cannot alias
  (see ALGORITHMS.md §11 for the tree);
* **fault tolerance** — a cell that raises is retried up to
  ``max_retries`` times and then recorded as a structured failure; a cell
  that exceeds ``cell_timeout`` seconds is interrupted (SIGALRM) and
  recorded likewise; a worker process that dies outright (segfault, OOM
  kill) breaks only its pool — the engine restarts the pool and re-runs
  the unfinished cells while it keeps making progress.  Figures are then
  synthesized from the surviving cells together with an explicit
  :class:`CoverageReport` instead of dying;
* **checkpointing** — with a ``run_dir``, every finished cell is appended
  to ``cells.jsonl`` as it completes, so an interrupted sweep resumes
  from the completed cells (``resume=True``); previously *failed* cells
  are re-run on resume.  A ``run.json`` fingerprint guards against
  resuming a checkpoint that belongs to a different sweep;
* **telemetry** — per-cell wall time, attempt count and peak RSS are
  collected into ``telemetry.json``, while the deterministic results go
  into ``manifest.json`` (sorted keys, stable float repr): two runs of
  the same sweep produce byte-identical manifests regardless of worker
  count, which is what the determinism tests assert.

Run-directory layout::

    run_dir/
      run.json        sweep fingerprint (guards --resume)
      cells.jsonl     one JSON record per finished cell, append-only
      manifest.json   deterministic results + coverage (byte-stable)
      telemetry.json  wall times, attempts, peak RSS (machine-dependent)
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.monte_carlo import MonteCarloSearch
from repro.baselines.proportional_share import modified_proportional_share
from repro.config import SolverConfig
from repro.core.allocator import ResourceAllocator
from repro.exceptions import CellTimeoutError, ExperimentError, SolverError
from repro.model.profit import evaluate_profit
from repro.workload.generator import generate_system

#: Top-level branch of the seeding tree, one per experiment family.  New
#: experiments must claim a fresh index — never reuse or renumber.
EXPERIMENT_KEYS: Dict[str, int] = {
    "fig4": 0,
    "fig5": 1,
    "scalability": 2,
    "admission": 3,
}

_CHECKPOINT_FILE = "cells.jsonl"
_MANIFEST_FILE = "manifest.json"
_TELEMETRY_FILE = "telemetry.json"
_RUN_FILE = "run.json"


# -- cell identity and seeding ------------------------------------------------

@dataclass(frozen=True)
class CellSpec:
    """One independent unit of sweep work: a single scenario of a figure.

    The spec is picklable and carries everything a worker needs; the cell
    body must be a pure function of the spec (no ambient state), which is
    what makes the engine's results independent of scheduling.
    """

    experiment: str
    point_index: int
    num_clients: int
    scenario_index: int
    root_seed: int
    mc_trials: int = 0
    solver: SolverConfig = field(default_factory=lambda: SolverConfig(seed=0))

    def __post_init__(self) -> None:
        if self.experiment not in EXPERIMENT_KEYS:
            raise ExperimentError(
                f"unknown experiment {self.experiment!r}; "
                f"known: {sorted(EXPERIMENT_KEYS)}"
            )

    @property
    def key(self) -> str:
        """Stable identifier used for checkpointing and manifests."""
        return (
            f"{self.experiment}/n{self.num_clients:04d}/"
            f"s{self.scenario_index:03d}"
        )


def cell_seed_sequence(spec: CellSpec) -> np.random.SeedSequence:
    """The cell's node in the seeding tree.

    ``SeedSequence(root, spawn_key=(experiment, point, scenario))`` is the
    named-child construction: two cells (or two experiments, or two
    adjacent root seeds) can never share a stream, unlike the old
    ``seed + k`` arithmetic this replaces.
    """
    return np.random.SeedSequence(
        spec.root_seed,
        spawn_key=(
            EXPERIMENT_KEYS[spec.experiment],
            spec.point_index,
            spec.scenario_index,
        ),
    )


def cell_stream_seeds(spec: CellSpec) -> Tuple[int, int]:
    """(scenario_seed, monte_carlo_seed) for one cell, as plain ints.

    The two children of the cell node seed instance generation and the
    Monte Carlo reference search; they are materialized as uint64 words so
    checkpoints and manifests can record them as JSON numbers.
    """
    scenario_child, mc_child = cell_seed_sequence(spec).spawn(2)
    scenario_seed = int(scenario_child.generate_state(1, dtype=np.uint64)[0])
    mc_seed = int(mc_child.generate_state(1, dtype=np.uint64)[0])
    return scenario_seed, mc_seed


# -- cell bodies --------------------------------------------------------------

def _run_fig4_cell(spec: CellSpec) -> Tuple[dict, dict]:
    """One Figure-4 scenario: proposed vs modified PS vs Monte Carlo."""
    scenario_seed, mc_seed = cell_stream_seeds(spec)
    system = generate_system(num_clients=spec.num_clients, seed=scenario_seed)
    solved = ResourceAllocator(spec.solver).solve(system)
    ps_profit = evaluate_profit(
        system,
        modified_proportional_share(system, spec.solver),
        require_all_served=False,
    ).total_profit
    mc = MonteCarloSearch(num_trials=spec.mc_trials, config=spec.solver).run(
        system, seed=mc_seed
    )
    payload = {
        "scenario_seed": scenario_seed,
        "mc_seed": mc_seed,
        "proposed": solved.profit,
        "modified_ps": ps_profit,
        "mc_best": mc.best_profit,
        "rounds": solved.rounds,
        "profit_history": list(solved.profit_history),
    }
    return payload, {"solve_s": solved.runtime_seconds}


def _run_fig5_cell(spec: CellSpec) -> Tuple[dict, dict]:
    """One Figure-5 scenario: robustness of the search to bad starts."""
    scenario_seed, mc_seed = cell_stream_seeds(spec)
    system = generate_system(num_clients=spec.num_clients, seed=scenario_seed)
    solved = ResourceAllocator(spec.solver).solve(system)
    mc = MonteCarloSearch(num_trials=spec.mc_trials, config=spec.solver).run(
        system, seed=mc_seed
    )
    payload = {
        "scenario_seed": scenario_seed,
        "mc_seed": mc_seed,
        "proposed": solved.profit,
        "mc_best": mc.best_profit,
        "worst_initial": mc.worst_initial_profit,
        "worst_initial_after": mc.worst_initial_after_search,
        "rounds": solved.rounds,
        "profit_history": list(solved.profit_history),
    }
    return payload, {"solve_s": solved.runtime_seconds}


def _run_scalability_cell(spec: CellSpec) -> Tuple[dict, dict]:
    """One scalability point: solve once, record size and (telemetry) time."""
    scenario_seed, _ = cell_stream_seeds(spec)
    system = generate_system(num_clients=spec.num_clients, seed=scenario_seed)
    started = time.perf_counter()
    solved = ResourceAllocator(spec.solver).solve(system)
    solve_seconds = time.perf_counter() - started
    payload = {
        "scenario_seed": scenario_seed,
        "num_servers": system.num_servers,
        "profit": solved.profit,
        "rounds": solved.rounds,
        "profit_history": list(solved.profit_history),
    }
    return payload, {"solve_s": solve_seconds}


#: Policies compared by the admission study, in fixed reporting order.
ADMISSION_STUDY_POLICIES: Tuple[str, ...] = (
    "always_admit_if_feasible",
    "revenue_threshold",
    "opportunity_cost",
    "opportunity_cost_surge",
)


def _run_admission_cell(spec: CellSpec) -> Tuple[dict, dict]:
    """One admission scenario: policy head-to-head on an overload trace.

    Every policy replays the *identical* deterministic event stream over
    the identical overloaded instance; the payload carries per-policy
    profit, refusal counts and the final snapshot hash (the replay
    fingerprint the benchmark asserts against).  Imports are local so the
    batch-solver experiments never pay for the service tier.
    """
    from repro.exceptions import ServiceError
    from repro.service import (
        AllocationService,
        AlwaysAdmitIfFeasible,
        LoadGenConfig,
        OpportunityCost,
        PricingSchedule,
        RevenueThreshold,
        flatten_bursts,
        generate_load,
    )
    from repro.service.driver import empty_copy
    from repro.workload.overload import overload_system

    scenario_seed, load_seed = cell_stream_seeds(spec)
    system = overload_system(num_clients=spec.num_clients, seed=scenario_seed)
    events = flatten_bursts(
        generate_load(
            system,
            LoadGenConfig(
                num_events=max(60, 10 * spec.num_clients),
                arrival_rate=200.0,
                admit_weight=0.8,
                depart_weight=0.2,
                rate_update_weight=0.0,
                seed=load_seed,
            ),
        )
    )
    contenders = {
        "always_admit_if_feasible": (AlwaysAdmitIfFeasible(), None),
        "revenue_threshold": (RevenueThreshold(min_revenue_rate=1.0), None),
        "opportunity_cost": (OpportunityCost(), None),
        "opportunity_cost_surge": (OpportunityCost(), PricingSchedule.surge()),
    }
    per_policy: Dict[str, dict] = {}
    started = time.perf_counter()
    for name in ADMISSION_STUDY_POLICIES:
        admission, pricing = contenders[name]
        service = AllocationService(
            empty_copy(system),
            config=spec.solver,
            admission=admission,
            pricing=pricing,
        )
        invalid = 0
        for event in events:
            try:
                service.apply(event)
            except ServiceError:
                # Orphaned depart/update of a refused admit; skipping it
                # is exactly what the sharded router does on overload.
                invalid += 1
        counters = service.metrics.counters
        per_policy[name] = {
            "profit": service.profit(),
            "admits_accepted": counters.get("admits_accepted", 0),
            "admits_rejected": counters.get("admits_rejected", 0),
            "pending_clients": len(service.pending),
            "invalid_events": invalid,
            "snapshot_hash": service.snapshot_hash(),
        }
    payload = {
        "scenario_seed": scenario_seed,
        "load_seed": load_seed,
        "num_events": len(events),
        "policies": per_policy,
    }
    return payload, {"trace_s": time.perf_counter() - started}


_CELL_BODIES: Dict[str, Callable[[CellSpec], Tuple[dict, dict]]] = {
    "fig4": _run_fig4_cell,
    "fig5": _run_fig5_cell,
    "scalability": _run_scalability_cell,
    "admission": _run_admission_cell,
}


# -- worker-side execution ----------------------------------------------------

def _peak_rss_kb() -> int:
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - non-unix fallback
        return 0


class _CellAlarm:
    """SIGALRM-based per-cell wall-clock budget (unix main thread only)."""

    def __init__(self, timeout_s: Optional[float]) -> None:
        self.timeout_s = timeout_s
        self._armed = False

    def __enter__(self) -> "_CellAlarm":
        if (
            self.timeout_s is not None
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        ):
            def _on_alarm(signum, frame):
                raise CellTimeoutError(
                    f"cell exceeded its {self.timeout_s}s wall-clock budget"
                )

            self._previous = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, self.timeout_s)
            self._armed = True
        return self

    def __exit__(self, *exc_info) -> None:
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)


def _execute_cell(
    spec: CellSpec,
    fault_plan: Optional[Dict[str, int]],
    cell_timeout: Optional[float],
    max_retries: int,
) -> dict:
    """Run one cell with bounded retry; always returns a record dict.

    Runs in the worker process (or inline for the serial executor).  Every
    outcome — success, exhausted retries, timeout — is reported as data;
    the only exceptions that escape are interpreter-level crashes, which
    the engine observes as a broken pool.
    """
    body = _CELL_BODIES[spec.experiment]
    planned_faults = (fault_plan or {}).get(spec.key, 0)
    attempts = 0
    started = time.perf_counter()
    error: Optional[dict] = None
    payload: Optional[dict] = None
    extra_telemetry: dict = {}
    while attempts <= max_retries:
        attempts += 1
        try:
            if planned_faults < 0 or attempts <= planned_faults:
                raise SolverError(
                    f"injected fault in {spec.key} (attempt {attempts})"
                )
            with _CellAlarm(cell_timeout):
                payload, extra_telemetry = body(spec)
            error = None
            break
        except Exception as exc:
            error = {
                "type": type(exc).__name__,
                "message": str(exc),
                "attempts": attempts,
            }
    telemetry = {
        "wall_s": time.perf_counter() - started,
        "attempts": attempts,
        "peak_rss_kb": _peak_rss_kb(),
        "pid": os.getpid(),
    }
    telemetry.update(extra_telemetry)
    return {
        "key": spec.key,
        "experiment": spec.experiment,
        "num_clients": spec.num_clients,
        "scenario_index": spec.scenario_index,
        "status": "ok" if error is None else "failed",
        "payload": payload,
        "error": error,
        "telemetry": telemetry,
    }


def _crash_record(spec: CellSpec, restarts: int) -> dict:
    """Failure record for a cell whose worker process died outright."""
    return {
        "key": spec.key,
        "experiment": spec.experiment,
        "num_clients": spec.num_clients,
        "scenario_index": spec.scenario_index,
        "status": "failed",
        "payload": None,
        "error": {
            "type": "WorkerCrash",
            "message": (
                "worker process died before returning a result "
                f"(pool restarted {restarts}x)"
            ),
            "attempts": restarts,
        },
        "telemetry": {"wall_s": 0.0, "attempts": restarts, "peak_rss_kb": 0},
    }


# -- coverage / report --------------------------------------------------------

@dataclass(frozen=True)
class CoverageReport:
    """How much of the sweep survived, and what was lost to which error."""

    total: int
    completed: int
    failed: int
    resumed: int
    failures: Tuple[dict, ...] = ()

    @property
    def complete(self) -> bool:
        return self.failed == 0 and self.completed == self.total

    def to_dict(self) -> dict:
        """Deterministic portion (no resume mechanics) for the manifest."""
        return {
            "total": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "failed_keys": [f["key"] for f in self.failures],
        }


@dataclass
class RunReport:
    """Everything the engine learned about one sweep."""

    records: Dict[str, dict]
    resumed_keys: List[str] = field(default_factory=list)
    run_dir: Optional[Path] = None
    pool_restarts: int = 0

    def ok_payload(self, key: str) -> Optional[dict]:
        record = self.records.get(key)
        if record is None or record["status"] != "ok":
            return None
        return record["payload"]

    def coverage(self) -> CoverageReport:
        failures = tuple(
            {
                "key": r["key"],
                "type": r["error"]["type"],
                "message": r["error"]["message"],
                "attempts": r["error"]["attempts"],
            }
            for r in self.records.values()
            if r["status"] == "failed"
        )
        completed = sum(
            1 for r in self.records.values() if r["status"] == "ok"
        )
        return CoverageReport(
            total=len(self.records),
            completed=completed,
            failed=len(failures),
            resumed=len(self.resumed_keys),
            failures=failures,
        )

    def manifest_dict(self) -> dict:
        """Deterministic results only: byte-identical across worker counts.

        Telemetry (wall times, RSS, pids) deliberately lives elsewhere —
        see :meth:`telemetry_dict`.
        """
        cells = []
        for key in sorted(self.records):
            record = self.records[key]
            cells.append(
                {
                    "key": key,
                    "experiment": record["experiment"],
                    "num_clients": record["num_clients"],
                    "scenario_index": record["scenario_index"],
                    "status": record["status"],
                    "payload": record["payload"],
                    "error": record["error"],
                }
            )
        return {
            "format": "repro.run-manifest",
            "version": 1,
            "coverage": self.coverage().to_dict(),
            "cells": cells,
        }

    def manifest_bytes(self) -> bytes:
        return (
            json.dumps(self.manifest_dict(), indent=2, sort_keys=True) + "\n"
        ).encode()

    def telemetry_dict(self) -> dict:
        per_cell = {
            key: record["telemetry"] for key, record in self.records.items()
        }
        wall = [t["wall_s"] for t in per_cell.values()]
        return {
            "format": "repro.run-telemetry",
            "version": 1,
            "pool_restarts": self.pool_restarts,
            "resumed_cells": len(self.resumed_keys),
            "total_cell_wall_s": sum(wall),
            "max_cell_wall_s": max(wall) if wall else 0.0,
            "max_peak_rss_kb": max(
                (t.get("peak_rss_kb", 0) for t in per_cell.values()), default=0
            ),
            "cells": {key: per_cell[key] for key in sorted(per_cell)},
        }


# -- the engine ---------------------------------------------------------------

def _sweep_fingerprint(cells: Sequence[CellSpec]) -> str:
    """Identity of a sweep: root seeds + cell keys + solver/MC settings."""
    digest = hashlib.sha256()
    for spec in sorted(cells, key=lambda s: s.key):
        digest.update(
            f"{spec.key}|{spec.root_seed}|{spec.mc_trials}|{spec.solver}".encode()
        )
    return digest.hexdigest()


class ExperimentEngine:
    """Shards cells across workers; survives failures; checkpoints.

    ``n_workers == 1`` executes cells inline (no subprocess), which is the
    default for tests and serves as the differential oracle — the parallel
    path must reproduce its results bit-for-bit.
    """

    def __init__(
        self,
        n_workers: int = 1,
        run_dir: Optional[str] = None,
        resume: bool = False,
        cell_timeout: Optional[float] = None,
        max_retries: int = 1,
        fault_plan: Optional[Dict[str, int]] = None,
        max_pool_restarts: int = 2,
    ) -> None:
        if n_workers < 1:
            raise ExperimentError(f"n_workers must be >= 1, got {n_workers}")
        if max_retries < 0:
            raise ExperimentError(f"max_retries must be >= 0, got {max_retries}")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ExperimentError(
                f"cell_timeout must be positive, got {cell_timeout}"
            )
        self.n_workers = n_workers
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.resume = resume
        self.cell_timeout = cell_timeout
        self.max_retries = max_retries
        #: test/CI hook: cell key -> number of injected failures (-1 = every
        #: attempt).  Shipped to workers with each cell, so it also works
        #: under the process pool.
        self.fault_plan = dict(fault_plan) if fault_plan else None
        self.max_pool_restarts = max_pool_restarts

    @staticmethod
    def from_experiment_config(config) -> "ExperimentEngine":
        """Build from the engine fields of an ``ExperimentConfig``."""
        return ExperimentEngine(
            n_workers=config.n_workers,
            run_dir=config.run_dir,
            resume=config.resume,
            cell_timeout=config.cell_timeout,
            max_retries=config.max_retries,
        )

    # -- public API ----------------------------------------------------------

    def run(self, cells: Sequence[CellSpec]) -> RunReport:
        cells = list(cells)
        keys = [spec.key for spec in cells]
        if len(set(keys)) != len(keys):
            raise ExperimentError("duplicate cell keys in sweep")

        completed = self._prepare_run_dir(cells)
        report = RunReport(records={}, run_dir=self.run_dir)
        pending: List[CellSpec] = []
        for spec in cells:
            if spec.key in completed:
                report.records[spec.key] = completed[spec.key]
                report.resumed_keys.append(spec.key)
            else:
                pending.append(spec)

        if pending:
            if self.n_workers == 1:
                self._run_serial(pending, report)
            else:
                self._run_parallel(pending, report)

        # Re-order to submission order so downstream aggregation is stable.
        report.records = {
            spec.key: report.records[spec.key] for spec in cells
        }
        self._write_summaries(report)
        return report

    # -- executors -----------------------------------------------------------

    def _run_serial(self, pending: List[CellSpec], report: RunReport) -> None:
        for spec in pending:
            record = _execute_cell(
                spec, self.fault_plan, self.cell_timeout, self.max_retries
            )
            self._commit(record, report)

    def _run_parallel(self, pending: List[CellSpec], report: RunReport) -> None:
        remaining = list(pending)
        no_progress_rounds = 0
        while remaining:
            progressed, _ = self._parallel_round(remaining, report)
            remaining = [
                spec for spec in remaining if spec.key not in report.records
            ]
            if not remaining:
                break
            # Cells are only left over when a worker died and broke the
            # pool: restart it and re-run them, unless we stop advancing.
            report.pool_restarts += 1
            no_progress_rounds = 0 if progressed else no_progress_rounds + 1
            if no_progress_rounds > self.max_pool_restarts:
                # The same cell keeps killing workers: degrade gracefully.
                for spec in remaining:
                    self._commit(
                        _crash_record(spec, report.pool_restarts), report
                    )
                break

    def _parallel_round(
        self, remaining: List[CellSpec], report: RunReport
    ) -> Tuple[bool, bool]:
        """One pool lifetime; returns (made_progress, pool_broke)."""
        progressed = False
        broke = False
        with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
            futures = {
                pool.submit(
                    _execute_cell,
                    spec,
                    self.fault_plan,
                    self.cell_timeout,
                    self.max_retries,
                ): spec
                for spec in remaining
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    spec = futures[future]
                    try:
                        record = future.result()
                    except BrokenProcessPool:
                        broke = True
                        continue
                    except Exception as exc:
                        # Result failed to come back (e.g. unpicklable);
                        # treat like any other per-cell failure.
                        record = _execute_record_error(spec, exc)
                    self._commit(record, report)
                    progressed = True
                if broke:
                    break
        return progressed, broke

    # -- checkpointing --------------------------------------------------------

    def _prepare_run_dir(self, cells: Sequence[CellSpec]) -> Dict[str, dict]:
        """Create/validate the run dir; return checkpointed ok-records."""
        if self.run_dir is None:
            return {}
        self.run_dir.mkdir(parents=True, exist_ok=True)
        fingerprint = _sweep_fingerprint(cells)
        run_file = self.run_dir / _RUN_FILE
        checkpoint = self.run_dir / _CHECKPOINT_FILE
        if self.resume and run_file.exists():
            recorded = json.loads(run_file.read_text()).get("fingerprint")
            if recorded != fingerprint:
                raise ExperimentError(
                    f"run dir {self.run_dir} holds a different sweep "
                    f"(fingerprint {recorded!r} != {fingerprint!r}); "
                    "refusing to resume"
                )
        else:
            run_file.write_text(
                json.dumps(
                    {
                        "format": "repro.run",
                        "version": 1,
                        "fingerprint": fingerprint,
                        "cells": sorted(spec.key for spec in cells),
                    },
                    indent=2,
                )
                + "\n"
            )
            if checkpoint.exists():
                checkpoint.unlink()
            return {}
        if not checkpoint.exists():
            return {}
        completed: Dict[str, dict] = {}
        with checkpoint.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail write from a killed run
                if record.get("status") == "ok":
                    completed[record["key"]] = record
                else:
                    completed.pop(record.get("key"), None)
        return completed

    def _commit(self, record: dict, report: RunReport) -> None:
        report.records[record["key"]] = record
        if self.run_dir is not None:
            with (self.run_dir / _CHECKPOINT_FILE).open("a") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def _write_summaries(self, report: RunReport) -> None:
        if self.run_dir is None:
            return
        (self.run_dir / _MANIFEST_FILE).write_bytes(report.manifest_bytes())
        (self.run_dir / _TELEMETRY_FILE).write_text(
            json.dumps(report.telemetry_dict(), indent=2, sort_keys=True) + "\n"
        )


def _execute_record_error(spec: CellSpec, exc: Exception) -> dict:
    """Failure record for a cell whose *result transfer* failed."""
    return {
        "key": spec.key,
        "experiment": spec.experiment,
        "num_clients": spec.num_clients,
        "scenario_index": spec.scenario_index,
        "status": "failed",
        "payload": None,
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "attempts": 1,
        },
        "telemetry": {"wall_s": 0.0, "attempts": 1, "peak_rss_kb": 0},
    }
