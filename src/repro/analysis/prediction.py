"""Prediction-error study: provisioning on predicted vs agreed rates.

Section III of the paper: "Although the agreed request arrival rates are
used to determine the profit, predicted average request arrival rates
are used to allocate resources to clients.  This can help us to use
resources more efficiently in cases that we know that the actual request
arrival rates are smaller than agreed."

This runner quantifies both sides of that bet:

* **efficiency** — when actual traffic really is ``factor x agreed``,
  how much profit does provisioning on the prediction unlock vs
  provisioning conservatively on the agreed rate?
* **risk** — if the prediction was wrong and actual traffic comes in at
  the agreed rate anyway, what does the under-provisioned allocation
  earn?  (Queues sized for less traffic saturate; the evaluator prices
  unstable queues as zero revenue.)

The paper motivates the mechanism without plotting it; this is the
EXPERIMENTS.md ``PRED`` extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.config import SolverConfig
from repro.core.allocator import ResourceAllocator
from repro.model.client import Client
from repro.model.datacenter import CloudSystem
from repro.model.profit import evaluate_profit
from repro.workload.generator import WorkloadConfig, generate_system
from repro.analysis.reporting import format_table


def _with_predicted_factor(system: CloudSystem, factor: float) -> CloudSystem:
    clients: List[Client] = [
        replace(client, rate_predicted=client.rate_agreed * factor)
        for client in system.clients
    ]
    return CloudSystem(clusters=system.clusters, clients=clients, name=system.name)


@dataclass
class PredictionRow:
    factor: float
    profit_trusting_prediction: float  # actual == predicted
    profit_conservative: float         # provision on agreed, actual == predicted
    profit_if_prediction_wrong: float  # provision on predicted, actual == agreed


@dataclass
class PredictionStudy:
    rows: List[PredictionRow] = field(default_factory=list)

    def to_table(self) -> str:
        return format_table(
            [
                "factor",
                "trust prediction",
                "conservative",
                "prediction wrong",
            ],
            [
                (
                    r.factor,
                    r.profit_trusting_prediction,
                    r.profit_conservative,
                    r.profit_if_prediction_wrong,
                )
                for r in self.rows
            ],
        )


def run_prediction_study(
    factors: Sequence[float] = (0.5, 0.7, 0.9, 1.0),
    num_clients: int = 20,
    seed: int = 17,
    solver: Optional[SolverConfig] = None,
) -> PredictionStudy:
    """Sweep the predicted/agreed ratio and score both provisioning policies.

    All three profits per row are evaluated by re-pricing the allocation
    under the stated *actual* rates (the evaluator recomputes response
    times from whatever traffic really arrives).
    """
    solver = solver or SolverConfig(seed=0)
    base = generate_system(
        num_clients=num_clients,
        seed=seed,
        config=WorkloadConfig(predicted_rate_factor=1.0),
    )
    allocator = ResourceAllocator(solver)

    study = PredictionStudy()
    conservative_result = allocator.solve(base)  # provisioned at agreed rates
    for factor in factors:
        predicted_system = _with_predicted_factor(base, factor)
        trusting_result = allocator.solve(predicted_system)

        # Actual traffic equals the prediction.
        trusting_profit = evaluate_profit(
            predicted_system, trusting_result.allocation, require_all_served=False
        ).total_profit
        conservative_profit = evaluate_profit(
            predicted_system, conservative_result.allocation, require_all_served=False
        ).total_profit
        # Actual traffic reverts to the agreed rate (prediction was wrong).
        wrong_profit = evaluate_profit(
            base, trusting_result.allocation, require_all_served=False
        ).total_profit

        study.rows.append(
            PredictionRow(
                factor=factor,
                profit_trusting_prediction=trusting_profit,
                profit_conservative=conservative_profit,
                profit_if_prediction_wrong=wrong_profit,
            )
        )
    return study
