"""Plain-text reporting: aligned tables, ASCII line charts, CSV export.

The paper's two figures are line charts of normalized profit vs client
count; :func:`format_series_chart` renders the same series in a terminal
so the benchmarks can print a directly comparable artifact.
"""

from __future__ import annotations

import io
import math
from typing import Dict, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned monospace table."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append("nan" if math.isnan(value) else float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(line[col]) for line in rendered)
        for col in range(len(headers))
    ]
    out = io.StringIO()
    for idx, line in enumerate(rendered):
        out.write(
            "  ".join(cell.rjust(widths[col]) for col, cell in enumerate(line))
        )
        out.write("\n")
        if idx == 0:
            out.write("  ".join("-" * w for w in widths))
            out.write("\n")
    return out.getvalue().rstrip("\n")


def format_series_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 64,
    y_label: str = "",
) -> str:
    """Render line series as an ASCII chart (one marker char per series)."""
    markers = "*o+x#@%&"
    points: List[float] = [
        v for values in series.values() for v in values if not math.isnan(v)
    ]
    if not points:
        return "(no data)"
    y_min = min(points + [0.0])
    y_max = max(points)
    if y_max == y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    x_min, x_max = min(x_values), max(x_values)
    span_x = (x_max - x_min) or 1.0

    def col_of(x: float) -> int:
        return min(int((x - x_min) / span_x * (width - 1)), width - 1)

    def row_of(y: float) -> int:
        frac = (y - y_min) / (y_max - y_min)
        return min(int((1.0 - frac) * (height - 1)), height - 1)

    for series_idx, (_, values) in enumerate(series.items()):
        marker = markers[series_idx % len(markers)]
        for x, y in zip(x_values, values):
            if math.isnan(y):
                continue
            grid[row_of(y)][col_of(x)] = marker

    out = io.StringIO()
    out.write(f"{y_max:8.2f} |" + "".join(grid[0]) + "\n")
    for line in grid[1:-1]:
        out.write(" " * 8 + " |" + "".join(line) + "\n")
    out.write(f"{y_min:8.2f} |" + "".join(grid[-1]) + "\n")
    out.write(" " * 10 + "-" * width + "\n")
    out.write(f"{' ' * 10}{x_min:<10.0f}{y_label:^{max(width - 20, 0)}}{x_max:>10.0f}\n")
    legend = "   ".join(
        f"{markers[idx % len(markers)]} {name}"
        for idx, name in enumerate(series)
    )
    out.write("legend: " + legend)
    return out.getvalue()


def format_fleet(breakdown, system) -> str:
    """Per-cluster fleet view: one bar per server, built from a breakdown.

    Renders processing utilization as a 10-cell bar (``#`` used, ``.``
    free, blank when OFF), plus the exact utilization numbers — the
    operator's one-glance consolidation check.
    """
    lines: List[str] = []
    for cluster in system.clusters:
        on = sum(
            1
            for server in cluster
            if breakdown.servers[server.server_id].is_on
        )
        lines.append(f"cluster {cluster.cluster_id}  ({on}/{len(cluster)} ON)")
        for server in cluster:
            outcome = breakdown.servers[server.server_id]
            if outcome.is_on:
                cells = int(round(min(outcome.utilization_processing, 1.0) * 10))
                bar = "#" * cells + "." * (10 - cells)
                detail = (
                    f"p={outcome.utilization_processing:4.0%} "
                    f"b={outcome.utilization_bandwidth:4.0%} "
                    f"cost={outcome.cost:.2f}"
                )
            else:
                bar = " " * 10
                detail = "OFF"
            lines.append(
                f"  server {server.server_id:>3} "
                f"[{bar}] {detail}"
            )
    return "\n".join(lines)


def format_coverage(coverage) -> str:
    """Render an engine :class:`~repro.analysis.runner.CoverageReport`.

    One summary line, plus one indented line per lost cell so a partial
    figure always says exactly which scenarios are missing and why.
    """
    parts = [f"coverage: {coverage.completed}/{coverage.total} cells"]
    if coverage.failed:
        parts.append(f"{coverage.failed} failed")
    if coverage.resumed:
        parts.append(f"{coverage.resumed} resumed from checkpoint")
    lines = [", ".join(parts) + ("" if coverage.complete else " — PARTIAL RESULT")]
    for failure in coverage.failures:
        lines.append(
            f"  FAILED {failure['key']}: {failure['type']}: "
            f"{failure['message']} ({failure['attempts']} attempt"
            f"{'s' if failure['attempts'] != 1 else ''})"
        )
    return "\n".join(lines)


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Minimal CSV export (values are numeric or simple strings)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(
            ",".join(
                f"{value:.6f}" if isinstance(value, float) else str(value)
                for value in row
            )
        )
    return "\n".join(lines)
