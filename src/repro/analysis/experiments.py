"""Runners for the paper's experiments (Figures 4, 5, complexity).

All sizes are parameterized via :class:`ExperimentConfig`.  The defaults
are scaled down so the full suite runs on a laptop in minutes; setting
the environment variable ``REPRO_FULL=1`` (or building the config by
hand) restores the paper-sized runs: client counts up to 200, at least
20 scenarios per point (5 at 200) and 10,000 Monte Carlo trials.
EXPERIMENTS.md records which settings produced the committed numbers.

Execution is delegated to the
:class:`~repro.analysis.runner.ExperimentEngine`: each ``(num_clients,
scenario)`` pair is an independent cell, so paper-sized sweeps shard
across worker processes (``n_workers``), checkpoint to a ``run_dir``,
resume after interruption, and synthesize figures from the surviving
cells when individual cells fail (the result carries a
:class:`~repro.analysis.runner.CoverageReport`).  Random streams derive
from named ``SeedSequence`` spawn keys — see ALGORITHMS.md §11 — so
figure-4 and figure-5 scenarios can never alias, for any pair of user
seeds, and results are independent of worker count.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import bootstrap_mean_ci

from repro.config import SolverConfig
from repro.analysis.runner import (
    ADMISSION_STUDY_POLICIES,
    CellSpec,
    CoverageReport,
    ExperimentEngine,
    RunReport,
)
from repro.analysis.reporting import format_series_chart, format_table
from repro.exceptions import ConfigurationError


def full_scale_requested() -> bool:
    """True when the environment asks for paper-sized experiment runs."""
    return os.environ.get("REPRO_FULL", "").strip() in {"1", "true", "yes"}


@dataclass(frozen=True)
class ExperimentConfig:
    """Sizes, seeds and engine settings for the figure runners.

    Paper-scale values (used when ``full_scale()``):
    ``client_counts=(20, 50, 80, 110, 140, 170, 200)``, 20 scenarios per
    point (5 at 200), 10,000 Monte Carlo trials.

    The engine fields mirror :class:`~repro.analysis.runner.ExperimentEngine`:
    ``n_workers`` shards scenario cells across processes (1 = serial, the
    differential oracle — results are bit-identical either way),
    ``run_dir``/``resume`` checkpoint and resume a sweep,
    ``cell_timeout`` bounds one cell's wall clock, and ``max_retries``
    re-runs a crashed cell before recording it as a failure.
    """

    client_counts: Sequence[int] = (10, 20, 40)
    scenarios_per_point: int = 3
    scenarios_at_largest: int = 2
    mc_trials: int = 25
    seed: int = 2011
    solver: SolverConfig = field(default_factory=lambda: SolverConfig(seed=0))
    n_workers: int = 1
    run_dir: Optional[str] = None
    resume: bool = False
    cell_timeout: Optional[float] = None
    max_retries: int = 1

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ConfigurationError("cell_timeout must be positive when given")

    @staticmethod
    def scaled_down() -> "ExperimentConfig":
        return ExperimentConfig()

    @staticmethod
    def paper_scale() -> "ExperimentConfig":
        return ExperimentConfig(
            client_counts=(20, 50, 80, 110, 140, 170, 200),
            scenarios_per_point=20,
            scenarios_at_largest=5,
            mc_trials=10_000,
        )

    @staticmethod
    def from_environment() -> "ExperimentConfig":
        return (
            ExperimentConfig.paper_scale()
            if full_scale_requested()
            else ExperimentConfig.scaled_down()
        )

    def scenarios_for(self, num_clients: int) -> int:
        if num_clients >= max(self.client_counts):
            return min(self.scenarios_per_point, self.scenarios_at_largest)
        return self.scenarios_per_point

    def engine(self) -> ExperimentEngine:
        return ExperimentEngine.from_experiment_config(self)


def figure4_cells(config: ExperimentConfig) -> List[CellSpec]:
    """The independent work units of Figure 4, in submission order."""
    return [
        CellSpec(
            experiment="fig4",
            point_index=point_index,
            num_clients=num_clients,
            scenario_index=scenario_index,
            root_seed=config.seed,
            mc_trials=config.mc_trials,
            solver=config.solver,
        )
        for point_index, num_clients in enumerate(config.client_counts)
        for scenario_index in range(config.scenarios_for(num_clients))
    ]


def figure5_cells(config: ExperimentConfig) -> List[CellSpec]:
    """The independent work units of Figure 5, in submission order."""
    return [
        CellSpec(
            experiment="fig5",
            point_index=point_index,
            num_clients=num_clients,
            scenario_index=scenario_index,
            root_seed=config.seed,
            mc_trials=config.mc_trials,
            solver=config.solver,
        )
        for point_index, num_clients in enumerate(config.client_counts)
        for scenario_index in range(config.scenarios_for(num_clients))
    ]


def _payloads_by_point(
    cells: Sequence[CellSpec], report: RunReport
) -> Dict[int, List[dict]]:
    """Surviving cell payloads grouped by client count (submission order)."""
    grouped: Dict[int, List[dict]] = {}
    for spec in cells:
        grouped.setdefault(spec.num_clients, [])
        payload = report.ok_payload(spec.key)
        if payload is not None:
            grouped[spec.num_clients].append(payload)
    return grouped


@dataclass
class Figure4Row:
    """One x-axis point of Figure 4 (all profits normalized by best found).

    ``proposed_ci`` / ``ps_ci`` are 95% bootstrap confidence intervals of
    the normalized means over the point's scenarios.
    """

    num_clients: int
    proposed: float
    modified_ps: float
    best_found: float
    scenarios: int
    proposed_ci: Tuple[float, float] = (math.nan, math.nan)
    ps_ci: Tuple[float, float] = (math.nan, math.nan)


@dataclass
class Figure4Result:
    rows: List[Figure4Row] = field(default_factory=list)
    runtime_seconds: float = 0.0
    coverage: Optional[CoverageReport] = None

    def to_table(self) -> str:
        return format_table(
            [
                "clients",
                "proposed",
                "95% CI",
                "modified PS",
                "95% CI",
                "best found",
                "scenarios",
            ],
            [
                (
                    r.num_clients,
                    r.proposed,
                    f"[{r.proposed_ci[0]:.3f}, {r.proposed_ci[1]:.3f}]",
                    r.modified_ps,
                    f"[{r.ps_ci[0]:.3f}, {r.ps_ci[1]:.3f}]",
                    r.best_found,
                    r.scenarios,
                )
                for r in self.rows
            ],
        )

    def to_chart(self) -> str:
        xs = [r.num_clients for r in self.rows]
        return format_series_chart(
            xs,
            {
                "proposed": [r.proposed for r in self.rows],
                "best found": [r.best_found for r in self.rows],
                "modified PS": [r.modified_ps for r in self.rows],
            },
            y_label="normalized total profit",
        )


def run_figure4(
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Figure4Result:
    """Reproduce Figure 4: proposed vs modified PS vs Monte Carlo best.

    Per scenario, every method sees the identical instance; profits are
    normalized by the best profit any method found for that scenario
    (matching "all the profit is normalized by the best found profit").
    Cells run through the experiment engine; the figure is synthesized
    from whichever cells survive and ``result.coverage`` says what, if
    anything, was lost.
    """
    config = config or ExperimentConfig.from_environment()
    engine = engine or config.engine()
    started = time.perf_counter()
    cells = figure4_cells(config)
    report = engine.run(cells)
    result = Figure4Result(coverage=report.coverage())
    payloads = _payloads_by_point(cells, report)
    for num_clients in config.client_counts:
        norm_proposed: List[float] = []
        norm_ps: List[float] = []
        for payload in payloads[num_clients]:
            best = max(payload["proposed"], payload["mc_best"])
            if best <= 0:
                continue  # degenerate unprofitable draw; not normalizable
            norm_proposed.append(payload["proposed"] / best)
            norm_ps.append(payload["modified_ps"] / best)
        if norm_proposed:
            proposed_summary = bootstrap_mean_ci(norm_proposed)
            ps_summary = bootstrap_mean_ci(norm_ps)
            result.rows.append(
                Figure4Row(
                    num_clients=num_clients,
                    proposed=proposed_summary.mean,
                    modified_ps=ps_summary.mean,
                    best_found=1.0,
                    scenarios=len(norm_proposed),
                    proposed_ci=(proposed_summary.ci_low, proposed_summary.ci_high),
                    ps_ci=(ps_summary.ci_low, ps_summary.ci_high),
                )
            )
    result.runtime_seconds = time.perf_counter() - started
    return result


@dataclass
class Figure5Row:
    """One x-axis point of Figure 5 (normalized by best found)."""

    num_clients: int
    worst_initial_before: float
    worst_initial_after: float
    worst_proposed: float
    best_found: float
    scenarios: int


@dataclass
class Figure5Result:
    rows: List[Figure5Row] = field(default_factory=list)
    runtime_seconds: float = 0.0
    coverage: Optional[CoverageReport] = None

    def to_table(self) -> str:
        return format_table(
            [
                "clients",
                "worst init (before)",
                "worst init (after)",
                "worst proposed",
                "best found",
                "scenarios",
            ],
            [
                (
                    r.num_clients,
                    r.worst_initial_before,
                    r.worst_initial_after,
                    r.worst_proposed,
                    r.best_found,
                    r.scenarios,
                )
                for r in self.rows
            ],
        )

    def to_chart(self) -> str:
        xs = [r.num_clients for r in self.rows]
        return format_series_chart(
            xs,
            {
                "worst init before": [r.worst_initial_before for r in self.rows],
                "worst init after": [r.worst_initial_after for r in self.rows],
                "worst proposed": [r.worst_proposed for r in self.rows],
                "best found": [r.best_found for r in self.rows],
            },
            y_label="normalized total profit",
        )


def run_figure5(
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Figure5Result:
    """Reproduce Figure 5: robustness of the local search to bad starts.

    Per scenario the Monte Carlo machinery records each random trial's
    profit before and after local search; across scenarios we keep the
    worst random start (before), that same trial after optimization, the
    worst of the proposed heuristic's runs, and normalize by best found.
    Cells run through the experiment engine (see :func:`run_figure4`).
    """
    config = config or ExperimentConfig.from_environment()
    engine = engine or config.engine()
    started = time.perf_counter()
    cells = figure5_cells(config)
    report = engine.run(cells)
    result = Figure5Result(coverage=report.coverage())
    payloads = _payloads_by_point(cells, report)
    for num_clients in config.client_counts:
        worst_before: List[float] = []
        worst_after: List[float] = []
        worst_proposed: List[float] = []
        for payload in payloads[num_clients]:
            best = max(payload["proposed"], payload["mc_best"])
            if best <= 0:
                continue
            worst_before.append(payload["worst_initial"] / best)
            worst_after.append(payload["worst_initial_after"] / best)
            worst_proposed.append(payload["proposed"] / best)
        if worst_before:
            result.rows.append(
                Figure5Row(
                    num_clients=num_clients,
                    worst_initial_before=float(np.min(worst_before)),
                    worst_initial_after=float(np.min(worst_after)),
                    worst_proposed=float(np.min(worst_proposed)),
                    best_found=1.0,
                    scenarios=len(worst_before),
                )
            )
    result.runtime_seconds = time.perf_counter() - started
    return result


def admission_cells(config: ExperimentConfig) -> List[CellSpec]:
    """The independent work units of the admission study."""
    return [
        CellSpec(
            experiment="admission",
            point_index=point_index,
            num_clients=num_clients,
            scenario_index=scenario_index,
            root_seed=config.seed,
            solver=config.solver,
        )
        for point_index, num_clients in enumerate(config.client_counts)
        for scenario_index in range(config.scenarios_for(num_clients))
    ]


@dataclass
class AdmissionRow:
    """One x-axis point of the admission study (mean profit per policy).

    ``uplift`` is the mean ratio of the opportunity-cost policy's profit
    to the always-admit baseline's over the point's scenarios — the
    headline number: how much profit overload admission control recovers.
    """

    num_clients: int
    profits: Dict[str, float] = field(default_factory=dict)
    refused: Dict[str, float] = field(default_factory=dict)
    uplift: float = math.nan
    scenarios: int = 0


@dataclass
class AdmissionResult:
    rows: List[AdmissionRow] = field(default_factory=list)
    runtime_seconds: float = 0.0
    coverage: Optional[CoverageReport] = None

    def to_table(self) -> str:
        return format_table(
            ["clients"]
            + list(ADMISSION_STUDY_POLICIES)
            + ["uplift", "scenarios"],
            [
                tuple(
                    [r.num_clients]
                    + [r.profits.get(name, math.nan) for name in ADMISSION_STUDY_POLICIES]
                    + [r.uplift, r.scenarios]
                )
                for r in self.rows
            ],
        )

    def to_chart(self) -> str:
        xs = [r.num_clients for r in self.rows]
        return format_series_chart(
            xs,
            {
                name: [r.profits.get(name, math.nan) for r in self.rows]
                for name in ADMISSION_STUDY_POLICIES
            },
            y_label="mean final profit",
        )


def run_admission_study(
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> AdmissionResult:
    """Head-to-head admission policies on overloaded service traces.

    Per scenario every policy replays the identical deterministic event
    stream over the identical overloaded instance (half the offered load
    is priced below its resource cost), so profit differences are purely
    the admission decisions.  Cells run through the experiment engine —
    sharding, checkpointing and coverage behave as in :func:`run_figure4`.
    """
    config = config or ExperimentConfig.from_environment()
    engine = engine or config.engine()
    started = time.perf_counter()
    cells = admission_cells(config)
    report = engine.run(cells)
    result = AdmissionResult(coverage=report.coverage())
    payloads = _payloads_by_point(cells, report)
    for num_clients in config.client_counts:
        profits: Dict[str, List[float]] = {
            name: [] for name in ADMISSION_STUDY_POLICIES
        }
        refused: Dict[str, List[float]] = {
            name: [] for name in ADMISSION_STUDY_POLICIES
        }
        uplifts: List[float] = []
        for payload in payloads[num_clients]:
            policies = payload["policies"]
            for name in ADMISSION_STUDY_POLICIES:
                profits[name].append(policies[name]["profit"])
                refused[name].append(policies[name]["admits_rejected"])
            baseline = policies["always_admit_if_feasible"]["profit"]
            if baseline > 0:
                uplifts.append(
                    policies["opportunity_cost"]["profit"] / baseline
                )
        scenarios = len(profits[ADMISSION_STUDY_POLICIES[0]])
        if scenarios:
            result.rows.append(
                AdmissionRow(
                    num_clients=num_clients,
                    profits={
                        name: float(np.mean(values))
                        for name, values in profits.items()
                    },
                    refused={
                        name: float(np.mean(values))
                        for name, values in refused.items()
                    },
                    uplift=(
                        float(np.mean(uplifts)) if uplifts else math.nan
                    ),
                    scenarios=scenarios,
                )
            )
    result.runtime_seconds = time.perf_counter() - started
    return result


@dataclass
class ScalabilityRow:
    num_clients: int
    num_servers: int
    solve_seconds: float
    profit: float


@dataclass
class ScalabilityResult:
    rows: List[ScalabilityRow] = field(default_factory=list)
    coverage: Optional[CoverageReport] = None


def scalability_cells(
    client_counts: Sequence[int],
    solver: SolverConfig,
    seed: int,
) -> List[CellSpec]:
    return [
        CellSpec(
            experiment="scalability",
            point_index=point_index,
            num_clients=num_clients,
            scenario_index=0,
            root_seed=seed,
            solver=solver,
        )
        for point_index, num_clients in enumerate(client_counts)
    ]


def run_scalability_report(
    client_counts: Sequence[int] = (10, 20, 40, 80),
    solver: Optional[SolverConfig] = None,
    seed: int = 7,
    engine: Optional[ExperimentEngine] = None,
) -> ScalabilityResult:
    """Runtime scaling of the full heuristic with instance size.

    Backs the paper's complexity paragraph: the initial-solution cost is
    linear in the total number of servers and in the DP granularity.
    Solve times are telemetry (machine-dependent), so they come from the
    engine's per-cell telemetry rather than the deterministic payload.
    """
    solver = solver or SolverConfig(seed=0)
    engine = engine or ExperimentEngine()
    cells = scalability_cells(client_counts, solver, seed)
    report = engine.run(cells)
    result = ScalabilityResult(coverage=report.coverage())
    for spec in cells:
        record = report.records[spec.key]
        if record["status"] != "ok":
            continue
        payload = record["payload"]
        result.rows.append(
            ScalabilityRow(
                num_clients=spec.num_clients,
                num_servers=payload["num_servers"],
                solve_seconds=record["telemetry"].get("solve_s", 0.0),
                profit=payload["profit"],
            )
        )
    return result


def run_scalability(
    client_counts: Sequence[int] = (10, 20, 40, 80),
    solver: Optional[SolverConfig] = None,
    seed: int = 7,
    engine: Optional[ExperimentEngine] = None,
) -> List[ScalabilityRow]:
    """Row-list view of :func:`run_scalability_report` (back-compat)."""
    return run_scalability_report(client_counts, solver, seed, engine).rows
