"""Runners for the paper's experiments (Figures 4, 5, complexity).

All sizes are parameterized via :class:`ExperimentConfig`.  The defaults
are scaled down so the full suite runs on a laptop in minutes; setting
the environment variable ``REPRO_FULL=1`` (or building the config by
hand) restores the paper-sized runs: client counts up to 200, at least
20 scenarios per point (5 at 200) and 10,000 Monte Carlo trials.
EXPERIMENTS.md records which settings produced the committed numbers.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import bootstrap_mean_ci

from repro.config import SolverConfig
from repro.baselines.monte_carlo import MonteCarloSearch
from repro.baselines.proportional_share import modified_proportional_share
from repro.core.allocator import ResourceAllocator
from repro.model.profit import evaluate_profit
from repro.workload.generator import generate_system
from repro.analysis.reporting import format_series_chart, format_table


def full_scale_requested() -> bool:
    """True when the environment asks for paper-sized experiment runs."""
    return os.environ.get("REPRO_FULL", "").strip() in {"1", "true", "yes"}


@dataclass(frozen=True)
class ExperimentConfig:
    """Sizes and seeds for the figure runners.

    Paper-scale values (used when ``full_scale()``):
    ``client_counts=(20, 50, 80, 110, 140, 170, 200)``, 20 scenarios per
    point (5 at 200), 10,000 Monte Carlo trials.
    """

    client_counts: Sequence[int] = (10, 20, 40)
    scenarios_per_point: int = 3
    scenarios_at_largest: int = 2
    mc_trials: int = 25
    seed: int = 2011
    solver: SolverConfig = field(default_factory=lambda: SolverConfig(seed=0))

    @staticmethod
    def scaled_down() -> "ExperimentConfig":
        return ExperimentConfig()

    @staticmethod
    def paper_scale() -> "ExperimentConfig":
        return ExperimentConfig(
            client_counts=(20, 50, 80, 110, 140, 170, 200),
            scenarios_per_point=20,
            scenarios_at_largest=5,
            mc_trials=10_000,
        )

    @staticmethod
    def from_environment() -> "ExperimentConfig":
        return (
            ExperimentConfig.paper_scale()
            if full_scale_requested()
            else ExperimentConfig.scaled_down()
        )

    def scenarios_for(self, num_clients: int) -> int:
        if num_clients >= max(self.client_counts):
            return min(self.scenarios_per_point, self.scenarios_at_largest)
        return self.scenarios_per_point


@dataclass
class Figure4Row:
    """One x-axis point of Figure 4 (all profits normalized by best found).

    ``proposed_ci`` / ``ps_ci`` are 95% bootstrap confidence intervals of
    the normalized means over the point's scenarios.
    """

    num_clients: int
    proposed: float
    modified_ps: float
    best_found: float
    scenarios: int
    proposed_ci: Tuple[float, float] = (math.nan, math.nan)
    ps_ci: Tuple[float, float] = (math.nan, math.nan)


@dataclass
class Figure4Result:
    rows: List[Figure4Row] = field(default_factory=list)
    runtime_seconds: float = 0.0

    def to_table(self) -> str:
        return format_table(
            [
                "clients",
                "proposed",
                "95% CI",
                "modified PS",
                "95% CI",
                "best found",
                "scenarios",
            ],
            [
                (
                    r.num_clients,
                    r.proposed,
                    f"[{r.proposed_ci[0]:.3f}, {r.proposed_ci[1]:.3f}]",
                    r.modified_ps,
                    f"[{r.ps_ci[0]:.3f}, {r.ps_ci[1]:.3f}]",
                    r.best_found,
                    r.scenarios,
                )
                for r in self.rows
            ],
        )

    def to_chart(self) -> str:
        xs = [r.num_clients for r in self.rows]
        return format_series_chart(
            xs,
            {
                "proposed": [r.proposed for r in self.rows],
                "best found": [r.best_found for r in self.rows],
                "modified PS": [r.modified_ps for r in self.rows],
            },
            y_label="normalized total profit",
        )


def run_figure4(config: Optional[ExperimentConfig] = None) -> Figure4Result:
    """Reproduce Figure 4: proposed vs modified PS vs Monte Carlo best.

    Per scenario, every method sees the identical instance; profits are
    normalized by the best profit any method found for that scenario
    (matching "all the profit is normalized by the best found profit").
    """
    config = config or ExperimentConfig.from_environment()
    started = time.perf_counter()
    seed_source = np.random.default_rng(config.seed)
    result = Figure4Result()
    for num_clients in config.client_counts:
        scenarios = config.scenarios_for(num_clients)
        norm_proposed: List[float] = []
        norm_ps: List[float] = []
        for _ in range(scenarios):
            scenario_seed = int(seed_source.integers(0, 2**31 - 1))
            system = generate_system(num_clients=num_clients, seed=scenario_seed)
            proposed = ResourceAllocator(config.solver).solve(system).profit
            ps_profit = evaluate_profit(
                system,
                modified_proportional_share(system, config.solver),
                require_all_served=False,
            ).total_profit
            mc = MonteCarloSearch(
                num_trials=config.mc_trials, config=config.solver
            ).run(system, seed=scenario_seed + 1)
            best = max(proposed, mc.best_profit)
            if best <= 0:
                continue  # degenerate unprofitable draw; not normalizable
            norm_proposed.append(proposed / best)
            norm_ps.append(ps_profit / best)
        if norm_proposed:
            proposed_summary = bootstrap_mean_ci(norm_proposed)
            ps_summary = bootstrap_mean_ci(norm_ps)
            result.rows.append(
                Figure4Row(
                    num_clients=num_clients,
                    proposed=proposed_summary.mean,
                    modified_ps=ps_summary.mean,
                    best_found=1.0,
                    scenarios=len(norm_proposed),
                    proposed_ci=(proposed_summary.ci_low, proposed_summary.ci_high),
                    ps_ci=(ps_summary.ci_low, ps_summary.ci_high),
                )
            )
    result.runtime_seconds = time.perf_counter() - started
    return result


@dataclass
class Figure5Row:
    """One x-axis point of Figure 5 (normalized by best found)."""

    num_clients: int
    worst_initial_before: float
    worst_initial_after: float
    worst_proposed: float
    best_found: float
    scenarios: int


@dataclass
class Figure5Result:
    rows: List[Figure5Row] = field(default_factory=list)
    runtime_seconds: float = 0.0

    def to_table(self) -> str:
        return format_table(
            [
                "clients",
                "worst init (before)",
                "worst init (after)",
                "worst proposed",
                "best found",
                "scenarios",
            ],
            [
                (
                    r.num_clients,
                    r.worst_initial_before,
                    r.worst_initial_after,
                    r.worst_proposed,
                    r.best_found,
                    r.scenarios,
                )
                for r in self.rows
            ],
        )

    def to_chart(self) -> str:
        xs = [r.num_clients for r in self.rows]
        return format_series_chart(
            xs,
            {
                "worst init before": [r.worst_initial_before for r in self.rows],
                "worst init after": [r.worst_initial_after for r in self.rows],
                "worst proposed": [r.worst_proposed for r in self.rows],
                "best found": [r.best_found for r in self.rows],
            },
            y_label="normalized total profit",
        )


def run_figure5(config: Optional[ExperimentConfig] = None) -> Figure5Result:
    """Reproduce Figure 5: robustness of the local search to bad starts.

    Per scenario the Monte Carlo machinery records each random trial's
    profit before and after local search; across scenarios we keep the
    worst random start (before), that same trial after optimization, the
    worst of the proposed heuristic's runs, and normalize by best found.
    """
    config = config or ExperimentConfig.from_environment()
    started = time.perf_counter()
    seed_source = np.random.default_rng(config.seed + 1)
    result = Figure5Result()
    for num_clients in config.client_counts:
        scenarios = config.scenarios_for(num_clients)
        worst_before: List[float] = []
        worst_after: List[float] = []
        worst_proposed: List[float] = []
        for _ in range(scenarios):
            scenario_seed = int(seed_source.integers(0, 2**31 - 1))
            system = generate_system(num_clients=num_clients, seed=scenario_seed)
            proposed = ResourceAllocator(config.solver).solve(system).profit
            mc = MonteCarloSearch(
                num_trials=config.mc_trials, config=config.solver
            ).run(system, seed=scenario_seed + 1)
            best = max(proposed, mc.best_profit)
            if best <= 0:
                continue
            worst_before.append(mc.worst_initial_profit / best)
            worst_after.append(mc.worst_initial_after_search / best)
            worst_proposed.append(proposed / best)
        if worst_before:
            result.rows.append(
                Figure5Row(
                    num_clients=num_clients,
                    worst_initial_before=float(np.min(worst_before)),
                    worst_initial_after=float(np.min(worst_after)),
                    worst_proposed=float(np.min(worst_proposed)),
                    best_found=1.0,
                    scenarios=len(worst_before),
                )
            )
    result.runtime_seconds = time.perf_counter() - started
    return result


@dataclass
class ScalabilityRow:
    num_clients: int
    num_servers: int
    solve_seconds: float
    profit: float


def run_scalability(
    client_counts: Sequence[int] = (10, 20, 40, 80),
    solver: Optional[SolverConfig] = None,
    seed: int = 7,
) -> List[ScalabilityRow]:
    """Runtime scaling of the full heuristic with instance size.

    Backs the paper's complexity paragraph: the initial-solution cost is
    linear in the total number of servers and in the DP granularity.
    """
    solver = solver or SolverConfig(seed=0)
    rows: List[ScalabilityRow] = []
    for num_clients in client_counts:
        system = generate_system(num_clients=num_clients, seed=seed)
        started = time.perf_counter()
        result = ResourceAllocator(solver).solve(system)
        rows.append(
            ScalabilityRow(
                num_clients=num_clients,
                num_servers=system.num_servers,
                solve_seconds=time.perf_counter() - started,
                profit=result.profit,
            )
        )
    return rows
