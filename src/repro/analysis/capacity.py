"""Capacity planning: size a fleet for a book of SLAs.

The paper optimizes a *given* datacenter; the operator's preceding
question is how much hardware to buy.  This planner inverts the model:

1. per client, compute the capacity that holds its two-queue response
   at ``target_response_fraction`` of its utility's zero crossing (the
   same SLA-aware minimum the modified-PS baseline uses), with the
   stability floor as a lower bound;
2. first-fit-decreasing bin packing of those (processing, bandwidth,
   storage) triples into servers, buying the SKU with the best
   capacity-per-cost ratio each time a new bin is opened;
3. report the per-SKU shopping list, its fixed-cost burn, and the
   implied utilization.

The plan is deliberately conservative (capacity for every client at its
SLA target simultaneously); :func:`build_planned_system` turns it into a
:class:`~repro.model.CloudSystem` so the real allocator can confirm the
fleet actually earns a profit (see ``examples/capacity_planning.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import SolverError
from repro.model.client import Client
from repro.model.cluster import Cluster
from repro.model.datacenter import CloudSystem
from repro.model.server import Server, ServerClass


@dataclass(frozen=True)
class ClientRequirement:
    """Absolute capacity one client needs to hit its SLA target."""

    client_id: int
    processing: float
    bandwidth: float
    storage: float


@dataclass
class CapacityPlan:
    """The shopping list and its projected economics."""

    servers_by_class: Dict[int, int] = field(default_factory=dict)
    requirements: List[ClientRequirement] = field(default_factory=list)
    fixed_cost: float = 0.0
    mean_processing_utilization: float = 0.0

    @property
    def total_servers(self) -> int:
        return sum(self.servers_by_class.values())


def client_requirements(
    clients: Sequence[Client],
    target_response_fraction: float = 2.0 / 3.0,
    stability_margin: float = 1.05,
) -> List[ClientRequirement]:
    """SLA-aware capacity needs per client.

    The two tandem queues each get half of the response budget
    ``target_response_fraction * R_max`` (``R_max`` = the utility's zero
    crossing from its linear surrogate), which pins the service rate and
    hence the absolute capacity ``x`` via ``x / t - lambda = 2 / budget``.
    Clients with flat utilities fall back to the stability floor.
    """
    if not 0 < target_response_fraction < 1:
        raise SolverError("target_response_fraction must lie in (0, 1)")
    requirements = []
    for client in clients:
        linear = client.utility_class.linear_approximation()
        floor_p = client.rate_predicted * client.t_proc * stability_margin
        floor_b = client.rate_predicted * client.t_comm * stability_margin
        need_p, need_b = floor_p, floor_b
        if linear.slope > 0 and linear.base_value > 0:
            budget = target_response_fraction * linear.base_value / linear.slope
            per_queue = budget / 2.0
            headroom = 1.0 / per_queue  # required (mu - lambda)
            need_p = max(
                floor_p, (client.rate_predicted + headroom) * client.t_proc
            )
            need_b = max(
                floor_b, (client.rate_predicted + headroom) * client.t_comm
            )
        requirements.append(
            ClientRequirement(
                client_id=client.client_id,
                processing=need_p,
                bandwidth=need_b,
                storage=client.storage_req,
            )
        )
    return requirements


def _best_sku(server_classes: Sequence[ServerClass]) -> ServerClass:
    """SKU with the best processing capacity per unit of full-load cost."""
    return max(
        server_classes,
        key=lambda sc: sc.cap_processing
        / (sc.power_fixed + sc.power_per_util),
    )


def plan_capacity(
    clients: Sequence[Client],
    server_classes: Sequence[ServerClass],
    target_response_fraction: float = 2.0 / 3.0,
    stability_margin: float = 1.05,
) -> CapacityPlan:
    """First-fit-decreasing packing of SLA-aware needs into bought servers.

    A client whose need exceeds every SKU is split across bins (the model
    allows traffic splitting, so this stays faithful).  Raises when a
    client's *storage* cannot fit any SKU — storage is unsplittable per
    server in the model only in the sense that every hosting server pays
    it, so a footprint larger than every disk is genuinely unservable at
    target.
    """
    if not server_classes:
        raise SolverError("need at least one server class")
    max_storage = max(sc.cap_storage for sc in server_classes)
    requirements = client_requirements(
        clients, target_response_fraction, stability_margin
    )
    for requirement in requirements:
        if requirement.storage > max_storage:
            raise SolverError(
                f"client {requirement.client_id} needs storage "
                f"{requirement.storage} > largest SKU disk {max_storage}"
            )

    sku = _best_sku(server_classes)
    # Open bins: remaining (processing, bandwidth, storage) per server.
    bins: List[List[float]] = []
    bins_by_class: Dict[int, int] = {}

    def open_bin() -> List[float]:
        bins_by_class[sku.index] = bins_by_class.get(sku.index, 0) + 1
        fresh = [sku.cap_processing, sku.cap_bandwidth, sku.cap_storage]
        bins.append(fresh)
        return fresh

    for requirement in sorted(
        requirements, key=lambda r: r.processing, reverse=True
    ):
        need_p, need_b = requirement.processing, requirement.bandwidth
        ratio = need_b / need_p if need_p > 0 else 0.0
        touched: set = set()  # bins already charged this client's storage
        guard = 0
        while need_p > 1e-9 and guard < 1000:
            guard += 1
            placed = False
            for bin_id, bin_state in enumerate(bins):
                first_touch = bin_id not in touched
                if first_touch and bin_state[2] < requirement.storage:
                    continue
                take_p = min(bin_state[0], need_p)
                if ratio > 0:
                    take_p = min(take_p, bin_state[1] / ratio)
                if take_p <= 1e-9:
                    continue
                take_b = take_p * ratio
                bin_state[0] -= take_p
                bin_state[1] -= take_b
                if first_touch:
                    bin_state[2] -= requirement.storage
                    touched.add(bin_id)
                need_p -= take_p
                need_b -= take_b
                placed = True
                break
            if not placed:
                open_bin()
        if need_p > 1e-9:
            raise SolverError(
                f"could not pack client {requirement.client_id} "
                "(pathological requirement)"
            )

    fixed_cost = sum(
        count
        * next(sc for sc in server_classes if sc.index == index).power_fixed
        for index, count in bins_by_class.items()
    )
    used_fractions = [
        1.0 - bin_state[0] / sku.cap_processing for bin_state in bins
    ]
    mean_util = (
        float(sum(used_fractions) / len(used_fractions)) if used_fractions else 0.0
    )
    return CapacityPlan(
        servers_by_class=bins_by_class,
        requirements=requirements,
        fixed_cost=fixed_cost,
        mean_processing_utilization=mean_util,
    )


def build_planned_system(
    clients: Sequence[Client],
    server_classes: Sequence[ServerClass],
    plan: CapacityPlan,
    num_clusters: int = 1,
    name: str = "planned",
) -> CloudSystem:
    """Materialize the plan as a CloudSystem (round-robin over clusters)."""
    if num_clusters < 1:
        raise SolverError("num_clusters must be >= 1")
    by_index = {sc.index: sc for sc in server_classes}
    servers_flat: List[Tuple[int, ServerClass]] = []
    server_id = 0
    for index, count in sorted(plan.servers_by_class.items()):
        for _ in range(count):
            servers_flat.append((server_id, by_index[index]))
            server_id += 1
    clusters: List[Cluster] = []
    for cluster_id in range(num_clusters):
        members = [
            Server(server_id=sid, cluster_id=cluster_id, server_class=sc)
            for idx, (sid, sc) in enumerate(servers_flat)
            if idx % num_clusters == cluster_id
        ]
        clusters.append(Cluster(cluster_id=cluster_id, servers=members))
    # Drop clusters that received no servers (tiny plans, many clusters).
    clusters = [c for c in clusters if len(c)] or [Cluster(cluster_id=0)]
    return CloudSystem(clusters=clusters, clients=list(clients), name=name)
