"""Experiment runners and reporting for the paper's evaluation section.

* :mod:`repro.analysis.experiments` — Figure 4 and Figure 5 runners plus
  the complexity sweep, all parameterized so tests/benchmarks can run
  scaled-down versions and ``REPRO_FULL=1`` unlocks paper-sized runs;
* :mod:`repro.analysis.reporting` — ASCII tables/charts and CSV export.
"""

from repro.analysis.experiments import (
    AdmissionResult,
    AdmissionRow,
    ExperimentConfig,
    Figure4Result,
    Figure4Row,
    Figure5Result,
    Figure5Row,
    run_admission_study,
    run_figure4,
    run_figure5,
    run_scalability,
    ScalabilityRow,
)
from repro.analysis.reporting import format_table, format_series_chart, rows_to_csv
from repro.analysis.stats import (
    SampleSummary,
    bootstrap_mean_ci,
    geometric_mean,
    paired_gap_summary,
)
from repro.analysis.prediction import PredictionStudy, run_prediction_study
from repro.analysis.capacity import (
    CapacityPlan,
    build_planned_system,
    client_requirements,
    plan_capacity,
)

__all__ = [
    "CapacityPlan",
    "build_planned_system",
    "client_requirements",
    "plan_capacity",
    "SampleSummary",
    "bootstrap_mean_ci",
    "geometric_mean",
    "paired_gap_summary",
    "PredictionStudy",
    "run_prediction_study",
    "AdmissionResult",
    "AdmissionRow",
    "run_admission_study",
    "ExperimentConfig",
    "Figure4Result",
    "Figure4Row",
    "Figure5Result",
    "Figure5Row",
    "run_figure4",
    "run_figure5",
    "run_scalability",
    "ScalabilityRow",
    "format_table",
    "format_series_chart",
    "rows_to_csv",
]
