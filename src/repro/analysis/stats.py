"""Statistics helpers for experiment reporting.

Figure points in the paper average a handful of scenarios; this module
adds bootstrap confidence intervals so EXPERIMENTS.md can state how firm
each reproduced number is, plus a compact summary container the runners
and benches share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SampleSummary:
    """Mean with a bootstrap confidence interval."""

    mean: float
    ci_low: float
    ci_high: float
    count: int
    level: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.3f} "
            f"[{self.ci_low:.3f}, {self.ci_high:.3f}] "
            f"(n={self.count}, {self.level:.0%})"
        )

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0


def bootstrap_mean_ci(
    samples: Sequence[float],
    level: float = 0.95,
    num_resamples: int = 2000,
    seed: Optional[int] = 0,
) -> SampleSummary:
    """Percentile-bootstrap CI for the mean of a small sample.

    With a single sample the interval degenerates to the point (there is
    nothing to resample); an empty sample is a caller error.
    """
    if not 0 < level < 1:
        raise ValueError(f"level must lie in (0, 1), got {level}")
    if num_resamples < 1:
        raise ValueError(f"num_resamples must be >= 1, got {num_resamples}")
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("need at least one sample")
    mean = float(values.mean())
    if values.size == 1:
        return SampleSummary(mean, mean, mean, 1, level)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, values.size, size=(num_resamples, values.size))
    resample_means = values[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    low, high = np.quantile(resample_means, [alpha, 1.0 - alpha])
    return SampleSummary(mean, float(low), float(high), int(values.size), level)


def paired_gap_summary(
    better: Sequence[float],
    worse: Sequence[float],
    level: float = 0.95,
) -> SampleSummary:
    """Bootstrap summary of the per-scenario gap ``better - worse``."""
    a = np.asarray(list(better), dtype=float)
    b = np.asarray(list(worse), dtype=float)
    if a.shape != b.shape:
        raise ValueError("paired samples must have the same length")
    return bootstrap_mean_ci(a - b, level=level)


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean of strictly positive samples (ratios, speedups)."""
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("need at least one sample")
    if np.any(values <= 0):
        raise ValueError("geometric mean requires strictly positive samples")
    return float(np.exp(np.log(values).mean()))
