"""Configuration dataclasses shared across the library.

:class:`SolverConfig` collects every tunable of the paper's heuristic in
one validated place.  Paper defaults are used wherever the paper states a
value (e.g. 3 randomized initial solutions, section VI); the rest are
engineering knobs documented field by field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class SolverConfig:
    """Tunables of the ``Resource_Alloc`` heuristic (section V).

    Attributes:
        num_initial_solutions: randomized greedy passes; the best one seeds
            the local search.  The paper uses 3.
        alpha_granularity: grid size ``G`` for the traffic-portion DP in
            ``Assign_Distribute``; alpha takes values ``g / G``.  The
            paper's complexity analysis is linear in this granularity.
        max_improvement_rounds: upper bound on the while-not-steady local
            search loop (a safety net; the loop normally exits on a
            sub-``improvement_tolerance`` round).
        improvement_tolerance: minimum absolute profit gain for a round of
            local search to count as progress.
        bandwidth_shadow_price: marginal cost assigned to one unit of a
            server's *communication* share inside the greedy constructor.
            Bandwidth has no energy cost in the paper's model, so without
            a shadow price the constructor would greedily exhaust it.
        capacity_price_factor: fraction of a server's fixed cost ``P0``
            folded into the constructor's per-share capacity price (for
            both resources, on top of ``P1`` / the bandwidth shadow
            price).  This is the "approximated profit ... captur[ing]
            incompleteness of information" of section V.A: a client that
            monopolizes a server's share at its myopically optimal level
            forces the next client onto a fresh server at cost ``P0``, so
            capacity must be priced at its system-wide opportunity cost
            for consolidation to emerge.  0 disables the amortization.
        min_share: numerical floor for any positive GPS share (the paper's
            constraint (7) epsilon).
        stability_margin: multiplicative headroom over the M/M/1 stability
            bound when computing the smallest admissible share, keeping
            response times finite under later perturbations.
        include_cluster_reassignment: run a cluster-level client
            reassignment pass inside each improvement round (section V:
            the local search "changes client assignment to decrease the
            resource saturation in some of clusters").  Disable to
            measure the contribution of the per-cluster moves alone.
        seed: seed for the randomized client orderings; ``None`` draws one
            from the OS.
        parallel_clusters: evaluate candidate clusters with a process pool
            (the paper's "distributed decision making").  Pure speed knob;
            results are identical.
        num_workers: pool size when ``parallel_clusters`` is set; ``None``
            means one worker per cluster.
        use_vectorized_kernels: compute the eq.-(16) profit curves and the
            traffic-split DP with the NumPy kernels
            (:func:`repro.core.assign.batched_server_curves`,
            :func:`repro.optim.dp.combine_server_curves`) instead of the
            scalar reference loops.  Pure speed knob: the kernels evaluate
            the same IEEE-754 expressions element-wise, so results are
            bit-identical (property-tested).
        use_delta_scoring: attach a
            :class:`~repro.core.delta.DeltaScorer` to the solver's working
            state so accept-if-better gates re-score only the clients and
            servers a move touched, instead of re-evaluating the whole
            datacenter.  Pure speed knob; the delta path is held to the
            exact evaluator within 1e-9 (see ``validate_delta_scoring``).
        validate_delta_scoring: debug flag — on every incremental profit
            query, recompute the full :func:`repro.model.profit.evaluate_profit`
            score and raise if the two disagree beyond 1e-9.  Slow;
            intended for tests and for diagnosing scorer drift.
        use_curve_cache: attach a :class:`~repro.core.cache.MemoCache` to
            the solver's working state so eq.-(16) profit curves, DP
            combination tables, activation profiles, incumbent share
            bounds, and dispersion resplits are memoized across candidate
            moves instead of being rebuilt from scratch on every
            evaluation.  Pure speed knob: cached objects are stored
            exactly as the kernels computed them and keys capture every
            input, so results are bit-identical to a cache-free run
            (differentially verified).  Only takes effect together with
            ``use_vectorized_kernels``; the scalar path stays a cache-free
            reference oracle.
        curve_cache_max_entries: eviction bound for the per-(client,
            server-signature) curve store; crossing it clears the curve
            and DP stores (simple, predictable, never stale).
        dp_cache_max_entries: eviction bound for the DP combination table
            store, and for the auxiliary activation/incumbent/dispersion
            stores.
        cluster_bandwidth_prices: per-cluster overrides of
            ``bandwidth_shadow_price`` as a sorted tuple of
            ``(cluster_id, price)`` pairs; clusters not listed keep the
            flat price.  This is the coordination signal of the sharded
            solver: the coordinator raises a congested cluster's price
            between rounds, and every shard's eq.-(16) curves respond by
            steering traffic elsewhere.  ``None`` (the default) keeps the
            flat price and the kernels' arithmetic bit-identical to
            previous releases.
        num_shards: client partitions for the sharded hierarchical solver
            (:class:`~repro.core.sharded.ShardedAllocator`); 1 disables
            sharding.  Each shard solves a disjoint slice of clients and
            servers, so merged allocations are feasible by construction.
        shard_coordination_rounds: price-coordination rounds after the
            initial shard solves (each round re-prices clusters from the
            merged usage summary and lets every shard warm-improve).
        shard_price_gain: sensitivity of the per-cluster price update,
            ``price_k = base * (1 + gain * utilization_k)``.
        shard_final_rounds: full improvement rounds run sequentially on
            the *merged* allocation after coordination ends — the
            hierarchy's repair step (the per-cluster distributed solver
            does the same with its final reassignment passes).  Each
            round sees the whole system, so moves the partition forbade
            (cross-shard placements, global share rebalancing) become
            available; this is what closes most of the sharding gap.
        shard_levels: depth of the sharded solver's coordinator tree.
            1 (the default) is the flat PR-6 topology: one coordinator
            sees every shard spec and merges every row set.  2 groups
            shards into super-shards: the root coordinates super-shard
            summaries only, each super-shard coordinates its own member
            shards, and row merges climb the tree pairwise — so no
            single merge call ever materializes more than one level's
            rows.  The shard *plan* is identical at every level (the
            tree only changes who coordinates whom), and the merged
            allocation is bitwise-identical to the flat merge of the
            same plan (property-tested).
        adaptive_shard_sizing: re-plan the shard size from measured
            per-shard solve cost.  The first coordination round times
            every shard solve; if the observed cost per client is
            superlinear in shard size (it is — the local search's
            shutdown sweep is quadratic-ish in hosted clients), the
            plan is re-cut toward the measured sweet spot before the
            remaining rounds.  Off by default: re-cutting changes which
            clients share a shard, hence the merged result (still
            audit-clean, but not bit-comparable to the fixed plan).
        use_txn_shutdown: roll back rejected server-shutdown candidates
            with the undo-log transaction machinery instead of a full
            snapshot/restore.  A rejected candidate then costs
            O(mutations it made) instead of O(live entries) — the
            dominant win inside large-shard solves, where
            ``turn_off_servers`` tries dozens of victims per round and
            rejects most of them.  Off by default because undo-replay
            is not *bitwise* identical to snapshot/restore (dict
            iteration order after remove/re-add, incremental aggregate
            ulp drift) even though it is semantically exact; profiles
            that require bit-reproducibility with historical runs keep
            the snapshot path.
        parallel_polish: partition each merged-state polish round
            (``shard_final_rounds``) by cluster across the persistent
            worker pool — the DistributedAllocator pattern applied to
            the sharded solver's repair step — instead of improving the
            merged state sequentially.  A final sequential reassignment
            pass restores the cross-cluster move, exactly as in
            :class:`~repro.core.distributed.DistributedAllocator`.
    """

    num_initial_solutions: int = 3
    alpha_granularity: int = 10
    max_improvement_rounds: int = 25
    improvement_tolerance: float = 1e-6
    bandwidth_shadow_price: float = 0.25
    capacity_price_factor: float = 1.0
    min_share: float = 1e-6
    stability_margin: float = 1.05
    include_cluster_reassignment: bool = True
    seed: Optional[int] = None
    parallel_clusters: bool = False
    num_workers: Optional[int] = None
    use_vectorized_kernels: bool = True
    use_delta_scoring: bool = True
    validate_delta_scoring: bool = False
    use_curve_cache: bool = True
    curve_cache_max_entries: int = 200_000
    dp_cache_max_entries: int = 200_000
    cluster_bandwidth_prices: Optional[Tuple[Tuple[int, float], ...]] = None
    num_shards: int = 1
    shard_coordination_rounds: int = 1
    shard_price_gain: float = 0.5
    shard_final_rounds: int = 3
    shard_levels: int = 1
    adaptive_shard_sizing: bool = False
    use_txn_shutdown: bool = False
    parallel_polish: bool = False

    def __post_init__(self) -> None:
        if self.num_initial_solutions < 1:
            raise ConfigurationError("num_initial_solutions must be >= 1")
        if self.alpha_granularity < 1:
            raise ConfigurationError("alpha_granularity must be >= 1")
        if self.max_improvement_rounds < 0:
            raise ConfigurationError("max_improvement_rounds must be >= 0")
        if self.improvement_tolerance < 0:
            raise ConfigurationError("improvement_tolerance must be >= 0")
        if self.bandwidth_shadow_price < 0:
            raise ConfigurationError("bandwidth_shadow_price must be >= 0")
        if self.capacity_price_factor < 0:
            raise ConfigurationError("capacity_price_factor must be >= 0")
        if not 0 < self.min_share < 1:
            raise ConfigurationError("min_share must lie in (0, 1)")
        if self.stability_margin < 1.0:
            raise ConfigurationError("stability_margin must be >= 1")
        if self.num_workers is not None and self.num_workers < 1:
            raise ConfigurationError("num_workers must be >= 1 when given")
        if self.curve_cache_max_entries < 1:
            raise ConfigurationError("curve_cache_max_entries must be >= 1")
        if self.dp_cache_max_entries < 1:
            raise ConfigurationError("dp_cache_max_entries must be >= 1")
        if self.cluster_bandwidth_prices is not None:
            seen = set()
            for pair in self.cluster_bandwidth_prices:
                if len(pair) != 2:
                    raise ConfigurationError(
                        "cluster_bandwidth_prices entries must be "
                        "(cluster_id, price) pairs"
                    )
                cluster_id, price = pair
                if cluster_id in seen:
                    raise ConfigurationError(
                        f"duplicate cluster id {cluster_id} in "
                        "cluster_bandwidth_prices"
                    )
                seen.add(cluster_id)
                if price < 0:
                    raise ConfigurationError(
                        "cluster_bandwidth_prices prices must be >= 0"
                    )
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if self.shard_coordination_rounds < 0:
            raise ConfigurationError("shard_coordination_rounds must be >= 0")
        if self.shard_price_gain < 0:
            raise ConfigurationError("shard_price_gain must be >= 0")
        if self.shard_final_rounds < 0:
            raise ConfigurationError("shard_final_rounds must be >= 0")
        if self.shard_levels not in (1, 2):
            raise ConfigurationError("shard_levels must be 1 or 2")
