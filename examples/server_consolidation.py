"""Server consolidation: profit-driven power-down of an idle fleet.

The paper's introduction motivates the work with energy: over-provisioned
datacenters burn fixed power ``P0`` on servers the load does not need.
This example builds a deliberately over-provisioned datacenter (10 servers
per cluster, 8 clients total), then shows how the heuristic's
``TurnOFF_servers`` move drives most of the fleet dark while keeping every
SLA satisfied.

Run with::

    python examples/server_consolidation.py
"""

from repro import Allocation, ResourceAllocator, SolverConfig, evaluate_profit
from repro.workload import consolidation_scenario


def fleet_report(system, allocation, label):
    breakdown = evaluate_profit(system, allocation, require_all_served=False)
    on = breakdown.num_servers_on
    total = system.num_servers
    print(
        f"{label:<28} profit {breakdown.total_profit:8.3f}   "
        f"servers ON {on:2d}/{total}   energy cost {breakdown.total_cost:7.3f}"
    )
    return breakdown


def dedicated_hosting(system):
    """The naive operator: every client gets its own private server.

    Each client is placed alone on the first feasible unused server of
    some cluster with generous (0.9 / 0.9) shares — no consolidation, no
    SLA weighting.  This is the over-provisioning pattern the paper's
    introduction warns about.
    """
    allocation = Allocation()
    used = set()
    for client in system.clients:
        for cluster in system.clusters:
            placed = False
            for server in cluster:
                if server.server_id in used:
                    continue
                stable_p = 0.9 * server.cap_processing / client.t_proc
                stable_b = 0.9 * server.cap_bandwidth / client.t_comm
                if (
                    server.free_storage >= client.storage_req
                    and stable_p > client.rate_predicted
                    and stable_b > client.rate_predicted
                ):
                    allocation.assign_client(client.client_id, cluster.cluster_id)
                    allocation.set_entry(
                        client.client_id, server.server_id, 1.0, 0.9, 0.9
                    )
                    used.add(server.server_id)
                    placed = True
                    break
            if placed:
                break
    return allocation


def main() -> None:
    system = consolidation_scenario(seed=11)
    print(system.describe())
    print()

    # The strawman: one server per client, always on.
    naive = fleet_report(system, dedicated_hosting(system), "dedicated hosting (naive)")

    # The heuristic: consolidation is priced into every decision.
    result = ResourceAllocator(SolverConfig(seed=3)).solve(system)
    final = fleet_report(system, result.allocation, "profit-driven consolidation")

    saved = naive.total_cost - final.total_cost
    print()
    print(f"energy cost saved by consolidation: {saved:.3f} "
          f"({saved / max(naive.total_cost, 1e-9) * 100:.0f}%)")
    print(f"profit improvement: {final.total_profit - naive.total_profit:+.3f}")

    served = sum(1 for c in final.clients.values() if c.served)
    print(f"clients served by the consolidated fleet: {served}/{system.num_clients}")


if __name__ == "__main__":
    main()
