"""Decision epochs: the value of re-allocating as arrival rates drift.

Section III of the paper frames the allocator as running once per
"decision epoch" with predicted rates, leaving in-epoch wiggle to the
cluster dispatchers.  This example simulates a day of drifting traffic
and compares two operators:

* **re-allocate** — runs the heuristic at the start of every epoch with
  fresh predictions;
* **static** — keeps the day-one allocation forever.

Both are scored against the true rates of each epoch.

Run with::

    python examples/dynamic_epochs.py
"""

from repro import SolverConfig, generate_system
from repro.analysis.reporting import format_table
from repro.sim import EpochConfig, run_epoch_simulation


def main() -> None:
    system = generate_system(num_clients=20, seed=31)
    report = run_epoch_simulation(
        system,
        EpochConfig(num_epochs=10, drift=0.35, seed=13),
        SolverConfig(seed=2),
    )

    rows = [
        (epoch, fresh, stale, fresh - stale)
        for epoch, (fresh, stale) in enumerate(
            zip(report.reallocate_profits, report.static_profits)
        )
    ]
    print(format_table(["epoch", "re-allocate", "static", "gain"], rows))
    print()
    print(f"total profit, re-allocating : {report.total_reallocate:9.3f}")
    print(f"total profit, static        : {report.total_static:9.3f}")
    gain = report.reallocation_gain
    pct = gain / abs(report.total_static) * 100 if report.total_static else 0.0
    print(f"value of per-epoch decisions: {gain:9.3f} ({pct:+.1f}%)")


if __name__ == "__main__":
    main()
