"""Archive a solved instance to JSON, reload it, and re-score the solution.

Reproductions are only useful if their artifacts travel: this example
solves an instance, saves both the problem and the solution as plain
JSON, reloads them in a "different session", and shows the reloaded
solution earning the identical profit — plus what happens when an
archived allocation is replayed against the wrong instance.

Run with::

    python examples/archive_and_rescore.py
"""

import tempfile
from pathlib import Path

from repro import ResourceAllocator, SolverConfig, evaluate_profit, generate_system
from repro.io import load_allocation, load_system, save_allocation, save_system


def main() -> None:
    system = generate_system(num_clients=12, seed=101)
    result = ResourceAllocator(SolverConfig(seed=5)).solve(system)
    print(f"solved: {result.breakdown.summary()}")

    with tempfile.TemporaryDirectory() as tmp:
        system_path = str(Path(tmp) / "instance.json")
        solution_path = str(Path(tmp) / "solution.json")
        save_system(system, system_path)
        save_allocation(result.allocation, solution_path)
        print(
            f"archived: instance {Path(system_path).stat().st_size} bytes, "
            f"solution {Path(solution_path).stat().st_size} bytes"
        )

        # "Another session": nothing shared but the files.
        reloaded_system = load_system(system_path)
        reloaded_solution = load_allocation(solution_path)
        rescored = evaluate_profit(reloaded_system, reloaded_solution)
        print(f"re-scored: {rescored.summary()}")
        assert abs(rescored.total_profit - result.profit) < 1e-9
        print("profit identical after the JSON round trip")

        # Replaying a solution against the wrong instance is caught by
        # the validator, not silently mis-priced.
        wrong_system = generate_system(num_clients=12, seed=999)
        mismatch = evaluate_profit(
            wrong_system, reloaded_solution, require_all_served=False
        )
        print(
            f"\nreplayed against the wrong instance: "
            f"{len(mismatch.violations)} violations flagged "
            f"(e.g. {mismatch.violations[0]})"
            if mismatch.violations
            else "\nreplay on wrong instance went unnoticed (!)"
        )


if __name__ == "__main__":
    main()
