"""Shoot-out: every solver in the library on one instance.

Runs the proposed heuristic, its distributed variant, the modified and
original Proportional Share baselines, Monte Carlo search, simulated
annealing and genetic search on the same section-VI instance and prints a
normalized league table — a one-command version of the paper's Figure 4
plus the stochastic-optimizer comparison.

Run with::

    python examples/compare_solvers.py
"""

import time

from repro import ResourceAllocator, SolverConfig, evaluate_profit, generate_system
from repro.analysis.reporting import format_table
from repro.baselines import (
    MonteCarloSearch,
    SimulatedAnnealingConfig,
    GeneticConfig,
    genetic_search,
    modified_proportional_share,
    original_proportional_share,
    simulated_annealing,
)
from repro.core.distributed import DistributedAllocator


def main() -> None:
    system = generate_system(num_clients=25, seed=77)
    config = SolverConfig(seed=3)
    print(system.describe())
    print()

    rows = []

    def record(name, profit, seconds):
        rows.append([name, profit, seconds])

    started = time.perf_counter()
    heuristic = ResourceAllocator(config).solve(system)
    record("proposed heuristic", heuristic.profit, time.perf_counter() - started)

    started = time.perf_counter()
    distributed = DistributedAllocator(config).solve(system)
    record("distributed heuristic", distributed.profit, time.perf_counter() - started)

    started = time.perf_counter()
    ps = evaluate_profit(
        system, modified_proportional_share(system, config), require_all_served=False
    )
    record("modified PS", ps.total_profit, time.perf_counter() - started)

    started = time.perf_counter()
    ops = evaluate_profit(
        system, original_proportional_share(system, config), require_all_served=False
    )
    record("original PS", ops.total_profit, time.perf_counter() - started)

    started = time.perf_counter()
    mc = MonteCarloSearch(num_trials=40, config=config).run(system, seed=4)
    record("Monte Carlo (40 trials)", mc.best_profit, time.perf_counter() - started)

    started = time.perf_counter()
    sa = simulated_annealing(
        system, SimulatedAnnealingConfig(iterations=150), config, seed=4
    )
    record("simulated annealing", sa.best_profit, time.perf_counter() - started)

    started = time.perf_counter()
    ga = genetic_search(
        system, GeneticConfig(population_size=14, generations=8), config, seed=4
    )
    record("genetic search", ga.best_profit, time.perf_counter() - started)

    best = max(row[1] for row in rows)
    table = [
        (name, profit, profit / best, seconds)
        for name, profit, seconds in rows
    ]
    table.sort(key=lambda r: r[1], reverse=True)
    print(format_table(["method", "profit", "normalized", "seconds"], table))


if __name__ == "__main__":
    main()
