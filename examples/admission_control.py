"""Admission control: the profit of being allowed to say no.

The paper's problem must serve every client (constraint (6)).  At
contract time the provider chooses its client book — this example runs
the constrained solve first, then lets the admission-controlled variant
reject clients whose SLA price cannot cover the capacity and energy they
consume, and reports who got cut and what it was worth.

A batch of deliberately under-priced "freeloader" clients is mixed into
the standard population so there is something worth rejecting.

Run with::

    python examples/admission_control.py
"""

from repro import SolverConfig, generate_system
from repro.analysis.reporting import format_table
from repro.core.admission import admission_controlled_solve
from repro.model.client import Client
from repro.model.datacenter import CloudSystem
from repro.model.utility import ClippedLinearUtility, UtilityClass


def with_freeloaders(system, count=4):
    """Append clients who pay a token price but demand real capacity."""
    cheap = UtilityClass(
        index=90, function=ClippedLinearUtility(base_value=0.4, slope=0.3),
        name="freeloader",
    )
    next_id = max(system.client_ids()) + 1
    extra = [
        Client(
            client_id=next_id + k,
            utility_class=cheap,
            rate_agreed=3.0,
            t_proc=0.9,
            t_comm=0.9,
            storage_req=1.5,
        )
        for k in range(count)
    ]
    return CloudSystem(
        clusters=system.clusters,
        clients=list(system.clients) + extra,
        name=system.name + "+freeloaders",
    )


def main() -> None:
    system = with_freeloaders(generate_system(num_clients=16, seed=29), count=4)
    result = admission_controlled_solve(system, SolverConfig(seed=2))

    print(
        format_table(
            ["policy", "profit"],
            [
                ("serve everyone (paper's constraint)", result.baseline_profit),
                ("with admission control", result.profit),
            ],
        )
    )
    print()
    print(f"admission gain: {result.admission_gain:+.3f}")
    print(f"rejected clients: {result.rejected}")
    freeloader_ids = [c.client_id for c in system.clients
                      if c.utility_class.name == "freeloader"]
    caught = sorted(set(result.rejected) & set(freeloader_ids))
    print(f"freeloaders caught: {caught} (of {freeloader_ids})")


if __name__ == "__main__":
    main()
