"""Validate the paper's analytical queueing model against a simulation.

The profit the optimizer maximizes rests on eq. (1): GPS shares decouple
the multi-class server into per-client M/M/1 queues whose tandem sojourn
times add.  This example *checks* that claim instead of assuming it:

* ``PARTITIONED`` mode dedicates ``phi * C`` to each client — the exact
  regime eq. (1) models — and the measured means should match analytics;
* ``GPS`` mode is true work-conserving Generalized Processor Sharing,
  which recycles idle classes' capacity, so measured response times fall
  *below* the analytical bound.

Run with::

    python examples/validate_queueing_model.py
"""

import numpy as np

from repro import ResourceAllocator, SolverConfig, generate_system
from repro.analysis.reporting import format_table
from repro.sim import DatacenterSimulator, SharingMode

DURATION = 3000.0


def main() -> None:
    system = generate_system(num_clients=8, seed=55)
    result = ResourceAllocator(SolverConfig(seed=1)).solve(system)

    reports = {}
    for mode in (SharingMode.PARTITIONED, SharingMode.GPS):
        sim = DatacenterSimulator(system, result.allocation, mode=mode, seed=9)
        reports[mode] = sim.run(duration=DURATION)

    part = reports[SharingMode.PARTITIONED]
    gps = reports[SharingMode.GPS]
    rows = []
    for cid in sorted(part.clients):
        p = part.clients[cid]
        g = gps.clients[cid]
        rows.append(
            (
                cid,
                p.analytical_mean,
                p.measured_mean,
                p.relative_error() * 100,
                g.measured_mean,
            )
        )
    print(
        format_table(
            [
                "client",
                "eq.(1) analytical",
                "partitioned measured",
                "error %",
                "true GPS measured",
            ],
            rows,
        )
    )
    print()
    print(
        f"partitioned worst |error|: {part.worst_relative_error() * 100:.1f}% "
        f"over {part.total_completed} requests"
    )
    mean_gps = np.mean([c.measured_mean for c in gps.clients.values()])
    mean_analytic = np.mean([c.analytical_mean for c in part.clients.values()])
    print(
        f"true GPS mean response is {mean_gps / mean_analytic:.2f}x the "
        "analytical bound — the model is conservative, never optimistic"
    )


if __name__ == "__main__":
    main()
