"""Quickstart: generate a cloud, maximize its profit, inspect the result.

Run with::

    python examples/quickstart.py

This walks the library's advertised 4-step workflow:

1. draw a problem instance from the paper's section-VI distribution;
2. run the ``Resource_Alloc`` heuristic;
3. re-score the returned allocation with the independent evaluator;
4. validate every hard constraint.
"""

from repro import (
    ResourceAllocator,
    SolverConfig,
    evaluate_profit,
    generate_system,
    validate_allocation,
)


def main() -> None:
    # 1. A datacenter with 5 clusters and 30 clients (auto-sized servers).
    system = generate_system(num_clients=30, seed=42)
    print(system.describe())
    print()

    # 2. Solve.  The config seeds the randomized greedy orderings so the
    #    run is reproducible; everything else is the paper's defaults.
    allocator = ResourceAllocator(SolverConfig(seed=7))
    result = allocator.solve(system)
    print(f"initial greedy profit : {result.initial_profit:8.3f}")
    print(f"after local search    : {result.profit:8.3f} "
          f"({result.rounds} rounds, {result.runtime_seconds:.2f}s)")
    print()

    # 3. Independent scoring: revenue, cost, per-client response times.
    breakdown = evaluate_profit(system, result.allocation)
    print(breakdown.summary())
    slowest = max(breakdown.clients.values(), key=lambda c: c.response_time)
    fastest = min(breakdown.clients.values(), key=lambda c: c.response_time)
    print(f"fastest client {fastest.client_id}: R = {fastest.response_time:.3f}, "
          f"revenue {fastest.revenue:.3f}")
    print(f"slowest client {slowest.client_id}: R = {slowest.response_time:.3f}, "
          f"revenue {slowest.revenue:.3f}")
    print()

    # 4. Validation: raises InfeasibleAllocationError on any violation.
    validate_allocation(system, result.allocation)
    print("all hard constraints satisfied "
          "(shares, storage, stability, one-cluster-per-client)")


if __name__ == "__main__":
    main()
