"""Multi-tier applications: the paper's future work, implemented.

Deploys classic web -> app -> db pipelines whose SLA prices the
*end-to-end* response time, with all tiers of an application co-located
in one cluster.  The additive response-time model makes the linear
utility decompose exactly across tiers, so the flat heuristic does the
heavy lifting while application-level moves keep pipelines whole.

Run with::

    python examples/multitier_applications.py
"""

from repro import SolverConfig
from repro.analysis.reporting import format_table
from repro.multitier import MultiTierAllocator, generate_multitier_system


def main() -> None:
    system = generate_multitier_system(num_applications=10, seed=5)
    total_tiers = sum(app.num_tiers for app in system.applications)
    print(
        f"{system.num_applications} applications, {total_tiers} tiers, "
        f"{sum(len(c) for c in system.clusters)} servers in "
        f"{len(system.clusters)} clusters"
    )
    print()

    result = MultiTierAllocator(SolverConfig(seed=1)).solve(system)
    print(result.breakdown.summary())
    print()

    rows = []
    for app in system.applications:
        outcome = result.breakdown.applications[app.app_id]
        rows.append(
            (
                app.app_id,
                app.num_tiers,
                outcome.cluster_id,
                outcome.response_time,
                " + ".join(f"{r:.2f}" for r in outcome.tier_response_times),
                outcome.revenue,
            )
        )
    print(
        format_table(
            ["app", "tiers", "cluster", "end-to-end R", "per-tier R", "revenue"],
            rows,
        )
    )
    print()
    assert all(o.colocated for o in result.breakdown.applications.values())
    print("every pipeline is co-located in a single cluster (constraint (6) "
          "lifted to applications)")


if __name__ == "__main__":
    main()
