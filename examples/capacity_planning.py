"""Capacity planning: size a fleet for a book of SLAs, then prove it works.

The paper optimizes a given datacenter; an operator first has to buy one.
This example takes a client population, computes SLA-aware capacity
requirements, packs them into a shopping list of servers, materializes
that fleet, and lets the real allocator confirm the plan serves everyone
at a profit.

Run with::

    python examples/capacity_planning.py
"""

from repro import ResourceAllocator, SolverConfig, generate_system
from repro.analysis.capacity import build_planned_system, plan_capacity
from repro.analysis.reporting import format_table


def main() -> None:
    # The client book (hardware of this draw is ignored — we are buying).
    market = generate_system(num_clients=25, seed=61)
    clients = list(market.clients)
    catalog = sorted(
        {s.server_class.index: s.server_class for s in market.servers()}.values(),
        key=lambda sc: sc.index,
    )
    print(f"{len(clients)} clients to serve; catalog of {len(catalog)} SKUs")

    plan = plan_capacity(clients, catalog, target_response_fraction=2.0 / 3.0)
    rows = [
        (idx, count, next(sc for sc in catalog if sc.index == idx).cap_processing)
        for idx, count in sorted(plan.servers_by_class.items())
    ]
    print()
    print(format_table(["SKU", "servers to buy", "C^p each"], rows))
    print(
        f"\nplanned fleet: {plan.total_servers} servers, fixed-cost burn "
        f"{plan.fixed_cost:.2f}/epoch, planned processing utilization "
        f"{plan.mean_processing_utilization:.0%}"
    )

    system = build_planned_system(clients, catalog, plan, num_clusters=3)
    result = ResourceAllocator(SolverConfig(seed=1)).solve(system)
    served = sum(
        1 for cid in system.client_ids() if result.allocation.entries_of_client(cid)
    )
    print()
    print(f"allocator verdict: {result.breakdown.summary()}")
    print(f"clients served on the planned fleet: {served}/{len(clients)}")
    print(
        f"servers actually powered on: "
        f"{result.breakdown.num_servers_on}/{plan.total_servers} "
        "(the allocator consolidates below the plan's worst case)"
    )


if __name__ == "__main__":
    main()
