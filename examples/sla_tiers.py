"""Tiered SLAs: gold clients buy speed, bronze clients buy capacity.

The paper's utility classes model exactly this: a *gold* SLA pays a high
price that decays quickly with response time, *bronze* pays little and
barely cares.  A profit-maximizing allocator should therefore give gold
clients the lion's share of GPS capacity and let bronze queue.

Run with::

    python examples/sla_tiers.py
"""

from collections import defaultdict

import numpy as np

from repro import ResourceAllocator, SolverConfig, evaluate_profit
from repro.workload import tiered_sla_scenario


def main() -> None:
    system = tiered_sla_scenario(seed=23, num_clients=24)
    result = ResourceAllocator(SolverConfig(seed=5)).solve(system)
    breakdown = evaluate_profit(system, result.allocation)
    print(breakdown.summary())
    print()

    per_tier = defaultdict(list)
    for client in system.clients:
        outcome = breakdown.clients[client.client_id]
        per_tier[client.utility_class.name].append(outcome)

    print(f"{'tier':<8} {'clients':>7} {'mean R':>8} {'max R':>8} "
          f"{'revenue':>9} {'rev/client':>11}")
    print("-" * 56)
    for tier in ("gold", "silver", "bronze"):
        outcomes = per_tier[tier]
        responses = [o.response_time for o in outcomes]
        revenue = sum(o.revenue for o in outcomes)
        print(
            f"{tier:<8} {len(outcomes):>7} {np.mean(responses):>8.3f} "
            f"{max(responses):>8.3f} {revenue:>9.3f} "
            f"{revenue / len(outcomes):>11.3f}"
        )

    gold_mean = float(np.mean([o.response_time for o in per_tier["gold"]]))
    bronze_mean = float(np.mean([o.response_time for o in per_tier["bronze"]]))
    print()
    print(
        f"gold runs {bronze_mean / gold_mean:.1f}x faster than bronze — "
        "capacity follows the utility slope, exactly as the SLA model prices it"
    )


if __name__ == "__main__":
    main()
