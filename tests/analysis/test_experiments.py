"""Tests for the figure runners (tiny configurations)."""

import pytest

from repro.analysis.experiments import (
    ExperimentConfig,
    run_figure4,
    run_figure5,
    run_scalability,
)
from repro.config import SolverConfig


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        client_counts=(6, 10),
        scenarios_per_point=2,
        scenarios_at_largest=1,
        mc_trials=4,
        seed=5,
        solver=SolverConfig(
            seed=0,
            num_initial_solutions=1,
            alpha_granularity=6,
            max_improvement_rounds=2,
        ),
    )


@pytest.fixture(scope="module")
def fig4(tiny_config):
    return run_figure4(tiny_config)


@pytest.fixture(scope="module")
def fig5(tiny_config):
    return run_figure5(tiny_config)


class TestExperimentConfig:
    def test_paper_scale_matches_section_vi(self):
        config = ExperimentConfig.paper_scale()
        assert max(config.client_counts) == 200
        assert config.scenarios_per_point == 20
        assert config.scenarios_at_largest == 5
        assert config.mc_trials == 10_000

    def test_scenarios_for_largest_point(self):
        config = ExperimentConfig(
            client_counts=(10, 20), scenarios_per_point=5, scenarios_at_largest=2
        )
        assert config.scenarios_for(10) == 5
        assert config.scenarios_for(20) == 2

    def test_from_environment_default_is_scaled_down(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert ExperimentConfig.from_environment().mc_trials < 100

    def test_from_environment_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert ExperimentConfig.from_environment().mc_trials == 10_000


class TestFigure4:
    def test_row_per_client_count(self, fig4, tiny_config):
        assert [r.num_clients for r in fig4.rows] == list(tiny_config.client_counts)

    def test_best_found_is_unity(self, fig4):
        for row in fig4.rows:
            assert row.best_found == 1.0

    def test_proposed_close_to_best(self, fig4):
        """Paper: 'differences ... not more than 9%'."""
        for row in fig4.rows:
            assert row.proposed >= 0.85
            assert row.proposed <= 1.0 + 1e-9

    def test_ps_below_proposed(self, fig4):
        for row in fig4.rows:
            assert row.modified_ps < row.proposed

    def test_table_and_chart_render(self, fig4):
        assert "proposed" in fig4.to_table()
        assert "95% CI" in fig4.to_table()
        assert "legend" in fig4.to_chart()

    def test_confidence_intervals_bracket_means(self, fig4):
        for row in fig4.rows:
            lo, hi = row.proposed_ci
            assert lo - 1e-9 <= row.proposed <= hi + 1e-9
            lo, hi = row.ps_ci
            assert lo - 1e-9 <= row.modified_ps <= hi + 1e-9


class TestFigure5:
    def test_ordering_of_series(self, fig5):
        """Local search lifts the worst random start toward the best."""
        for row in fig5.rows:
            assert row.worst_initial_before <= row.worst_initial_after + 1e-9
            assert row.worst_initial_after <= 1.0 + 1e-9
            assert row.worst_proposed <= 1.0 + 1e-9

    def test_proposed_is_robust(self, fig5):
        """The heuristic's worst case stays near the optimum (robustness)."""
        for row in fig5.rows:
            assert row.worst_proposed >= 0.8

    def test_table_and_chart_render(self, fig5):
        assert "worst" in fig5.to_table()
        assert "legend" in fig5.to_chart()


class TestScalability:
    def test_rows_and_monotone_size(self):
        rows = run_scalability(
            client_counts=(4, 8),
            solver=SolverConfig(
                seed=0,
                num_initial_solutions=1,
                alpha_granularity=5,
                max_improvement_rounds=1,
            ),
        )
        assert [r.num_clients for r in rows] == [4, 8]
        assert rows[1].num_servers >= rows[0].num_servers
        for row in rows:
            assert row.solve_seconds > 0
