"""Tests for bootstrap statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import (
    SampleSummary,
    bootstrap_mean_ci,
    geometric_mean,
    paired_gap_summary,
)


class TestBootstrapMeanCi:
    def test_mean_matches_numpy(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        summary = bootstrap_mean_ci(samples)
        assert summary.mean == pytest.approx(2.5)
        assert summary.count == 4

    def test_interval_contains_mean(self):
        summary = bootstrap_mean_ci([3.0, 5.0, 4.0, 6.0, 2.0])
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_single_sample_degenerates(self):
        summary = bootstrap_mean_ci([7.0])
        assert summary.ci_low == summary.ci_high == summary.mean == 7.0

    def test_deterministic_for_seed(self):
        a = bootstrap_mean_ci([1.0, 5.0, 3.0], seed=4)
        b = bootstrap_mean_ci([1.0, 5.0, 3.0], seed=4)
        assert (a.ci_low, a.ci_high) == (b.ci_low, b.ci_high)

    def test_wider_at_higher_level(self):
        samples = list(np.random.default_rng(0).normal(0, 1, size=30))
        narrow = bootstrap_mean_ci(samples, level=0.80)
        wide = bootstrap_mean_ci(samples, level=0.99)
        assert wide.half_width >= narrow.half_width

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], level=1.5)

    def test_str_renders(self):
        text = str(bootstrap_mean_ci([1.0, 2.0]))
        assert "n=2" in text

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100), min_size=5, max_size=30
        )
    )
    def test_interval_brackets_sample_mean(self, samples):
        summary = bootstrap_mean_ci(samples)
        assert summary.ci_low - 1e-9 <= summary.mean <= summary.ci_high + 1e-9


class TestPairedGap:
    def test_positive_gap_detected(self):
        better = [10.0, 11.0, 12.0, 13.0]
        worse = [8.0, 9.5, 10.0, 11.0]
        summary = paired_gap_summary(better, worse)
        assert summary.mean > 0
        assert summary.ci_low > 0  # consistently better

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_gap_summary([1.0], [1.0, 2.0])


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])
