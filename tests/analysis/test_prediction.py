"""Tests for the prediction-error study."""

import pytest

from repro.analysis.prediction import run_prediction_study
from repro.config import SolverConfig


@pytest.fixture(scope="module")
def study():
    return run_prediction_study(
        factors=(0.6, 1.0),
        num_clients=10,
        seed=17,
        solver=SolverConfig(
            seed=0,
            num_initial_solutions=1,
            alpha_granularity=6,
            max_improvement_rounds=2,
        ),
    )


class TestPredictionStudy:
    def test_one_row_per_factor(self, study):
        assert [row.factor for row in study.rows] == [0.6, 1.0]

    def test_factor_one_policies_coincide(self, study):
        """With factor 1.0, trusting the prediction IS the conservative plan."""
        row = next(r for r in study.rows if r.factor == 1.0)
        assert row.profit_trusting_prediction == pytest.approx(
            row.profit_conservative, rel=0.05
        )

    def test_trusting_correct_prediction_pays(self, study):
        """When actual < agreed, provisioning on the prediction earns more."""
        row = next(r for r in study.rows if r.factor == 0.6)
        assert row.profit_trusting_prediction >= row.profit_conservative - 1e-6

    def test_wrong_prediction_costs(self, study):
        """An under-provisioned allocation hit by full traffic earns less."""
        row = next(r for r in study.rows if r.factor == 0.6)
        assert row.profit_if_prediction_wrong <= row.profit_trusting_prediction + 1e-6

    def test_table_renders(self, study):
        table = study.to_table()
        assert "trust prediction" in table
        assert "conservative" in table
