"""Tests for the capacity planner."""

import pytest

from repro.analysis.capacity import (
    build_planned_system,
    client_requirements,
    plan_capacity,
)
from repro.config import SolverConfig
from repro.core.allocator import ResourceAllocator
from repro.exceptions import SolverError
from repro.model.client import Client
from repro.model.server import ServerClass
from repro.model.utility import ClippedLinearUtility, UtilityClass
from repro.workload import generate_system


@pytest.fixture(scope="module")
def population():
    system = generate_system(num_clients=15, seed=23)
    classes = sorted(
        {s.server_class.index: s.server_class for s in system.servers()}.values(),
        key=lambda sc: sc.index,
    )
    return list(system.clients), list(classes)


class TestClientRequirements:
    def test_above_stability_floor(self, population):
        clients, _ = population
        for requirement, client in zip(client_requirements(clients), clients):
            assert requirement.processing >= client.rate_predicted * client.t_proc
            assert requirement.bandwidth >= client.rate_predicted * client.t_comm
            assert requirement.storage == client.storage_req

    def test_tighter_target_needs_more(self, population):
        clients, _ = population
        loose = client_requirements(clients, target_response_fraction=0.9)
        tight = client_requirements(clients, target_response_fraction=0.3)
        for l, t in zip(loose, tight):
            assert t.processing >= l.processing - 1e-12

    def test_invalid_fraction_rejected(self, population):
        clients, _ = population
        with pytest.raises(SolverError):
            client_requirements(clients, target_response_fraction=1.5)


class TestPlanCapacity:
    def test_plan_covers_demand(self, population):
        clients, classes = population
        plan = plan_capacity(clients, classes)
        assert plan.total_servers >= 1
        bought_capacity = sum(
            count * next(sc for sc in classes if sc.index == idx).cap_processing
            for idx, count in plan.servers_by_class.items()
        )
        total_need = sum(r.processing for r in plan.requirements)
        assert bought_capacity >= total_need - 1e-6

    def test_utilization_in_range(self, population):
        clients, classes = population
        plan = plan_capacity(clients, classes)
        assert 0.0 < plan.mean_processing_utilization <= 1.0 + 1e-9

    def test_fixed_cost_positive(self, population):
        clients, classes = population
        plan = plan_capacity(clients, classes)
        assert plan.fixed_cost > 0

    def test_no_server_classes_rejected(self, population):
        clients, _ = population
        with pytest.raises(SolverError):
            plan_capacity(clients, [])

    def test_oversized_storage_rejected(self, population):
        _, classes = population
        monster = Client(
            client_id=0,
            utility_class=UtilityClass(0, ClippedLinearUtility(3.0, 1.0)),
            rate_agreed=1.0,
            t_proc=0.5,
            t_comm=0.5,
            storage_req=100.0,
        )
        with pytest.raises(SolverError):
            plan_capacity([monster], classes)


class TestBuildPlannedSystem:
    def test_fleet_matches_plan(self, population):
        clients, classes = population
        plan = plan_capacity(clients, classes)
        system = build_planned_system(clients, classes, plan, num_clusters=2)
        assert system.num_servers == plan.total_servers
        assert system.num_clients == len(clients)

    def test_planned_fleet_serves_everyone(self, population):
        """The whole point: the solver confirms the shopping list works."""
        clients, classes = population
        plan = plan_capacity(clients, classes)
        system = build_planned_system(clients, classes, plan, num_clusters=2)
        result = ResourceAllocator(SolverConfig(seed=1)).solve(system)
        assert result.breakdown.feasible
        served = sum(
            1
            for cid in system.client_ids()
            if result.allocation.entries_of_client(cid)
        )
        assert served == len(clients)

    def test_invalid_cluster_count(self, population):
        clients, classes = population
        plan = plan_capacity(clients, classes)
        with pytest.raises(SolverError):
            build_planned_system(clients, classes, plan, num_clusters=0)
