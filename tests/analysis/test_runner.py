"""Determinism, fault-tolerance and resume tests for the experiment engine.

The engine's contract: results are a pure function of the sweep spec —
independent of worker count, completion order, interruption/resume, and
individual cell failures (which degrade coverage, never correctness).
"""

import json

import pytest

from repro.analysis.experiments import (
    ExperimentConfig,
    figure4_cells,
    figure5_cells,
    run_figure4,
    run_figure5,
    run_scalability,
    run_scalability_report,
)
from repro.analysis.reporting import format_coverage
from repro.analysis.runner import (
    CellSpec,
    ExperimentEngine,
    cell_stream_seeds,
)
from repro.config import SolverConfig
from repro.exceptions import ExperimentError

TINY_SOLVER = SolverConfig(
    seed=0,
    num_initial_solutions=1,
    alpha_granularity=5,
    max_improvement_rounds=1,
)


def tiny_config(**overrides) -> ExperimentConfig:
    base = dict(
        client_counts=(5, 6),
        scenarios_per_point=2,
        scenarios_at_largest=1,
        mc_trials=2,
        seed=5,
        solver=TINY_SOLVER,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


class TestSeedTree:
    def test_fig4_and_fig5_streams_disjoint_for_adjacent_seeds(self):
        """Regression for the old ``default_rng(seed)`` / ``seed + 1``
        derivation, where figure 5 at seed S shared figure 4's stream at
        seed S + 1 and MC seeds could exceed the 2**31 - 1 draw bound."""
        seeds = set()
        for root in (2011, 2012, 2013):
            config = tiny_config(seed=root)
            for spec in figure4_cells(config) + figure5_cells(config):
                scenario_seed, mc_seed = cell_stream_seeds(spec)
                seeds.update((scenario_seed, mc_seed))
        # 3 roots x (3 fig4 + 3 fig5 cells) x 2 streams, all distinct.
        assert len(seeds) == 3 * 6 * 2

    def test_cell_seeds_do_not_depend_on_sweep_shape(self):
        """A cell's streams depend only on its named key, not on which
        other cells happen to be in the sweep."""
        wide = tiny_config(client_counts=(5, 6, 7), scenarios_at_largest=2)
        narrow = tiny_config()
        wide_seeds = {
            spec.key: cell_stream_seeds(spec) for spec in figure4_cells(wide)
        }
        for spec in figure4_cells(narrow):
            assert cell_stream_seeds(spec) == wide_seeds[spec.key]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            CellSpec(
                experiment="fig9",
                point_index=0,
                num_clients=5,
                scenario_index=0,
                root_seed=1,
            )


class TestWorkerCountDeterminism:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("serial")
        result = run_figure4(tiny_config(run_dir=str(run_dir)))
        return result, (run_dir / "manifest.json").read_bytes()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_manifest_byte_identical_across_worker_counts(
        self, workers, reference, tmp_path
    ):
        _, serial_manifest = reference
        result = run_figure4(
            tiny_config(n_workers=workers, run_dir=str(tmp_path))
        )
        assert (tmp_path / "manifest.json").read_bytes() == serial_manifest
        assert result.coverage.complete

    def test_parallel_table_matches_serial(self, reference, tmp_path):
        serial_result, _ = reference
        parallel = run_figure4(
            tiny_config(n_workers=2, run_dir=str(tmp_path))
        )
        assert parallel.to_table() == serial_result.to_table()

    def test_figure5_parallel_matches_serial(self, tmp_path):
        serial = run_figure5(tiny_config(run_dir=str(tmp_path / "s")))
        parallel = run_figure5(
            tiny_config(n_workers=2, run_dir=str(tmp_path / "p"))
        )
        assert (tmp_path / "s" / "manifest.json").read_bytes() == (
            tmp_path / "p" / "manifest.json"
        ).read_bytes()
        assert parallel.to_table() == serial.to_table()


class TestFaultTolerance:
    def test_injected_fault_degrades_to_coverage_report(self, tmp_path):
        config = tiny_config(run_dir=str(tmp_path), max_retries=0)
        victim = figure4_cells(config)[0]
        engine = ExperimentEngine(
            run_dir=str(tmp_path),
            max_retries=0,
            fault_plan={victim.key: -1},
        )
        result = run_figure4(config, engine=engine)
        coverage = result.coverage
        assert not coverage.complete
        assert coverage.failed == 1
        assert coverage.failures[0]["key"] == victim.key
        assert coverage.failures[0]["type"] == "SolverError"
        # The figure is still synthesized from the surviving cells.
        assert [row.num_clients for row in result.rows] == [5, 6]
        assert result.rows[0].scenarios == 1

    def test_injected_fault_under_process_pool(self, tmp_path):
        config = tiny_config(n_workers=2, run_dir=str(tmp_path))
        victim = figure4_cells(config)[1]
        engine = ExperimentEngine(
            n_workers=2,
            run_dir=str(tmp_path),
            fault_plan={victim.key: -1},
        )
        result = run_figure4(config, engine=engine)
        assert result.coverage.failed == 1
        assert result.coverage.failures[0]["key"] == victim.key

    def test_transient_fault_retried_to_success(self, tmp_path):
        config = tiny_config(run_dir=str(tmp_path))
        victim = figure4_cells(config)[0]
        engine = ExperimentEngine(
            run_dir=str(tmp_path),
            max_retries=1,
            fault_plan={victim.key: 1},  # fail once, succeed on retry
        )
        result = run_figure4(config, engine=engine)
        assert result.coverage.complete
        retried = [
            json.loads(line)
            for line in (tmp_path / "cells.jsonl").read_text().splitlines()
            if json.loads(line)["key"] == victim.key
        ]
        assert retried[0]["telemetry"]["attempts"] == 2

    def test_failed_cells_never_poison_results(self, tmp_path):
        """A sweep where *every* cell fails yields empty rows, not a crash."""
        config = tiny_config(run_dir=str(tmp_path))
        plan = {spec.key: -1 for spec in figure4_cells(config)}
        engine = ExperimentEngine(run_dir=str(tmp_path), fault_plan=plan)
        result = run_figure4(config, engine=engine)
        assert result.rows == []
        assert result.coverage.completed == 0
        assert "PARTIAL RESULT" in format_coverage(result.coverage)

    def test_cell_timeout_recorded_as_failure(self, tmp_path):
        # A microscopic budget trips SIGALRM inside the first solve.
        config = tiny_config(
            client_counts=(12,),
            scenarios_per_point=1,
            scenarios_at_largest=1,
            cell_timeout=1e-4,
            max_retries=0,
            run_dir=str(tmp_path),
        )
        result = run_figure4(config)
        assert result.coverage.failed == result.coverage.total == 1
        assert result.coverage.failures[0]["type"] == "CellTimeoutError"


class TestCheckpointResume:
    def test_kill_mid_sweep_then_resume_is_identical(self, tmp_path):
        config = tiny_config()
        reference = run_figure4(
            tiny_config(run_dir=str(tmp_path / "ref"))
        )
        ref_manifest = (tmp_path / "ref" / "manifest.json").read_bytes()

        # "Kill" after two cells: fail the third permanently, then resume.
        interrupted_dir = tmp_path / "interrupted"
        victim = figure4_cells(config)[2]
        first = ExperimentEngine(
            run_dir=str(interrupted_dir),
            max_retries=0,
            fault_plan={victim.key: -1},
        )
        partial = run_figure4(tiny_config(run_dir=str(interrupted_dir)), engine=first)
        assert partial.coverage.failed == 1

        resumed_engine = ExperimentEngine(
            run_dir=str(interrupted_dir), resume=True
        )
        resumed = run_figure4(
            tiny_config(run_dir=str(interrupted_dir)), engine=resumed_engine
        )
        assert resumed.coverage.complete
        assert resumed.coverage.resumed == 2
        assert resumed.to_table() == reference.to_table()
        assert (
            interrupted_dir / "manifest.json"
        ).read_bytes() == ref_manifest

    def test_truncated_checkpoint_line_is_ignored(self, tmp_path):
        """A torn tail write (killed mid-append) must not break resume."""
        config = tiny_config(run_dir=str(tmp_path))
        run_figure4(config)
        checkpoint = tmp_path / "cells.jsonl"
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        )
        resumed = run_figure4(
            config,
            engine=ExperimentEngine(run_dir=str(tmp_path), resume=True),
        )
        assert resumed.coverage.complete
        assert resumed.coverage.resumed == len(lines) - 1

    def test_resume_refuses_foreign_run_dir(self, tmp_path):
        run_figure4(tiny_config(run_dir=str(tmp_path)))
        other = tiny_config(seed=6, run_dir=str(tmp_path), resume=True)
        with pytest.raises(ExperimentError, match="different sweep"):
            run_figure4(other)

    def test_serial_and_resumed_runs_share_checkpoint_format(self, tmp_path):
        """n_workers=1 writes the same JSONL cells the parallel path reads."""
        serial_dir = tmp_path / "serial"
        run_figure4(tiny_config(run_dir=str(serial_dir)))
        resumed = run_figure4(
            tiny_config(run_dir=str(serial_dir)),
            engine=ExperimentEngine(
                n_workers=2, run_dir=str(serial_dir), resume=True
            ),
        )
        assert resumed.coverage.resumed == resumed.coverage.total

    def test_run_dir_artifacts_present(self, tmp_path):
        run_figure4(tiny_config(run_dir=str(tmp_path)))
        for name in ("run.json", "cells.jsonl", "manifest.json", "telemetry.json"):
            assert (tmp_path / name).exists(), name
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["format"] == "repro.run-manifest"
        assert manifest["coverage"]["failed"] == 0
        telemetry = json.loads((tmp_path / "telemetry.json").read_text())
        assert set(telemetry["cells"]) == {
            cell["key"] for cell in manifest["cells"]
        }
        for entry in telemetry["cells"].values():
            assert entry["wall_s"] > 0
            assert entry["attempts"] == 1


class TestScalabilityThroughEngine:
    def test_rows_preserved_and_coverage_attached(self):
        report = run_scalability_report(
            client_counts=(4, 8), solver=TINY_SOLVER
        )
        assert [r.num_clients for r in report.rows] == [4, 8]
        assert report.coverage.complete
        for row in report.rows:
            assert row.solve_seconds > 0

    def test_back_compat_wrapper_returns_rows(self):
        rows = run_scalability(client_counts=(4,), solver=TINY_SOLVER)
        assert rows[0].num_clients == 4


class TestEngineValidation:
    def test_duplicate_cell_keys_rejected(self):
        spec = CellSpec(
            experiment="fig4",
            point_index=0,
            num_clients=5,
            scenario_index=0,
            root_seed=1,
            mc_trials=1,
            solver=TINY_SOLVER,
        )
        with pytest.raises(ExperimentError, match="duplicate"):
            ExperimentEngine().run([spec, spec])

    def test_bad_engine_parameters_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentEngine(n_workers=0)
        with pytest.raises(ExperimentError):
            ExperimentEngine(max_retries=-1)
        with pytest.raises(ExperimentError):
            ExperimentEngine(cell_timeout=0.0)

    def test_bad_experiment_config_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            tiny_config(n_workers=0)
        with pytest.raises(ConfigurationError):
            tiny_config(cell_timeout=-1.0)


class TestCoverageRendering:
    def test_clean_run_renders_one_line(self, tmp_path):
        result = run_figure4(tiny_config(run_dir=str(tmp_path)))
        text = format_coverage(result.coverage)
        assert text == "coverage: 3/3 cells"

    def test_failure_lines_name_cell_and_error(self, tmp_path):
        config = tiny_config(run_dir=str(tmp_path), max_retries=0)
        victim = figure4_cells(config)[0]
        engine = ExperimentEngine(
            run_dir=str(tmp_path), max_retries=0, fault_plan={victim.key: -1}
        )
        text = format_coverage(run_figure4(config, engine=engine).coverage)
        assert "PARTIAL RESULT" in text
        assert victim.key in text
        assert "SolverError" in text
