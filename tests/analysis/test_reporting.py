"""Tests for tables, charts and CSV export."""

import math

from repro.analysis.reporting import format_series_chart, format_table, rows_to_csv


class TestFormatTable:
    def test_alignment_and_separator(self):
        table = format_table(["name", "value"], [("a", 1.0), ("long-name", 22.5)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # Columns right-aligned: all rows same width.
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        table = format_table(["x"], [(1.23456,)])
        assert "1.235" in table

    def test_nan_rendering(self):
        table = format_table(["x"], [(float("nan"),)])
        assert "nan" in table

    def test_custom_float_format(self):
        table = format_table(["x"], [(1.23456,)], float_format="{:.1f}")
        assert "1.2" in table


class TestSeriesChart:
    def test_contains_legend_and_markers(self):
        chart = format_series_chart(
            [1, 2, 3],
            {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]},
        )
        assert "legend:" in chart
        assert "* up" in chart
        assert "o down" in chart
        assert "*" in chart.splitlines()[0] + chart  # markers plotted

    def test_handles_nan_series(self):
        chart = format_series_chart([1, 2], {"s": [float("nan"), 1.0]})
        assert "legend" in chart

    def test_no_data(self):
        assert format_series_chart([1], {"s": [float("nan")]}) == "(no data)"

    def test_flat_series(self):
        chart = format_series_chart([1, 2], {"s": [1.0, 1.0]})
        assert "legend" in chart


class TestCsv:
    def test_header_and_rows(self):
        csv = rows_to_csv(["a", "b"], [(1, 2.5), (3, 4.0)])
        lines = csv.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.500000"
        assert lines[2] == "3,4.000000"
