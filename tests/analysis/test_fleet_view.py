"""Tests for the fleet-utilization report."""

import pytest

from repro.analysis.reporting import format_fleet
from repro.config import SolverConfig
from repro.core.allocator import ResourceAllocator
from repro.model.allocation import Allocation
from repro.model.profit import evaluate_profit


class TestFormatFleet:
    def test_marks_off_servers(self, two_cluster_system):
        breakdown = evaluate_profit(
            two_cluster_system, Allocation(), require_all_served=False
        )
        text = format_fleet(breakdown, two_cluster_system)
        assert text.count("OFF") == two_cluster_system.num_servers
        assert "0/2 ON" in text

    def test_marks_on_servers_with_bars(self, two_cluster_system):
        alloc = Allocation()
        alloc.assign_client(0, 0)
        alloc.set_entry(0, 0, 1.0, 0.5, 0.3)
        breakdown = evaluate_profit(
            two_cluster_system, alloc, require_all_served=False
        )
        text = format_fleet(breakdown, two_cluster_system)
        assert "1/2 ON" in text
        assert "#####....." in text  # 50% processing bar
        assert "p= 50%" in text
        assert "b= 30%" in text

    def test_one_line_per_server(self, small, solver_config):
        result = ResourceAllocator(solver_config).solve(small)
        text = format_fleet(result.breakdown, small)
        server_lines = [l for l in text.splitlines() if "server" in l]
        assert len(server_lines) == small.num_servers

    def test_cost_shown_for_on_servers(self, small, solver_config):
        result = ResourceAllocator(solver_config).solve(small)
        text = format_fleet(result.breakdown, small)
        assert "cost=" in text
