"""Tests for the multi-tier model and its flat expansion."""

import pytest

from repro.exceptions import ModelError
from repro.model.utility import ClippedLinearUtility, LinearUtility, UtilityClass
from repro.multitier.model import (
    MultiTierApplication,
    MultiTierSystem,
    TierSpec,
    expand_to_flat,
)
from repro.multitier.scenarios import generate_multitier_system


def make_app(app_id=0, num_tiers=3, base=6.0, slope=1.0, rate=2.0):
    tiers = tuple(
        TierSpec(name=f"tier-{k}", t_proc=0.5, t_comm=0.4, storage_req=0.5)
        for k in range(num_tiers)
    )
    return MultiTierApplication(
        app_id=app_id,
        utility_class=UtilityClass(0, ClippedLinearUtility(base, slope)),
        rate_agreed=rate,
        tiers=tiers,
    )


class TestTierSpec:
    def test_valid(self):
        tier = TierSpec(name="web", t_proc=0.3, t_comm=0.2, storage_req=0.1)
        assert tier.name == "web"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(t_proc=0.0, t_comm=0.2, storage_req=0.1),
            dict(t_proc=0.3, t_comm=-0.1, storage_req=0.1),
            dict(t_proc=0.3, t_comm=0.2, storage_req=-0.1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ModelError):
            TierSpec(name="bad", **kwargs)


class TestMultiTierApplication:
    def test_valid(self):
        app = make_app()
        assert app.num_tiers == 3
        assert app.rate_predicted == app.rate_agreed

    def test_needs_tiers(self):
        with pytest.raises(ModelError):
            MultiTierApplication(
                app_id=0,
                utility_class=UtilityClass(0, ClippedLinearUtility(1.0, 1.0)),
                rate_agreed=1.0,
                tiers=(),
            )

    def test_duplicate_app_ids_rejected(self):
        base = generate_multitier_system(num_applications=2, seed=0)
        with pytest.raises(ModelError):
            MultiTierSystem(
                clusters=base.clusters,
                applications=[make_app(0), make_app(0)],
            )


class TestExpansion:
    def make_system(self):
        base = generate_multitier_system(num_applications=1, seed=0)
        return MultiTierSystem(
            clusters=base.clusters,
            applications=[make_app(0, num_tiers=3)],
        )

    def test_one_pseudo_client_per_tier(self):
        system = self.make_system()
        expansion = expand_to_flat(system)
        assert expansion.flat_system.num_clients == 3
        assert len(expansion.tier_clients[0]) == 3

    def test_mapping_is_inverse(self):
        expansion = expand_to_flat(self.make_system())
        for app_id, ids in expansion.tier_clients.items():
            for cid in ids:
                assert expansion.app_of_client[cid] == app_id

    def test_tiers_inherit_rate_and_demands(self):
        system = self.make_system()
        expansion = expand_to_flat(system)
        app = system.applications[0]
        for cid, tier in zip(expansion.tier_clients[0], app.tiers):
            client = expansion.flat_system.client(cid)
            assert client.rate_agreed == app.rate_agreed
            assert client.t_proc == tier.t_proc
            assert client.storage_req == tier.storage_req

    def test_linear_decomposition_is_exact(self):
        """sum of per-tier utilities == application's linear utility."""
        system = self.make_system()
        expansion = expand_to_flat(system)
        app = system.applications[0]
        linear = app.utility_class.linear_approximation()
        tier_fns = [
            expansion.flat_system.client(cid).utility_class.function
            for cid in expansion.tier_clients[0]
        ]
        for responses in ([0.1, 0.2, 0.3], [1.0, 1.0, 1.0], [0.0, 2.0, 0.5]):
            total = sum(fn.value(r) for fn, r in zip(tier_fns, responses))
            assert total == pytest.approx(linear.value(sum(responses)))

    def test_tier_utilities_are_linear(self):
        expansion = expand_to_flat(self.make_system())
        for client in expansion.flat_system.clients:
            assert isinstance(client.utility_class.function, LinearUtility)


class TestGenerator:
    def test_counts(self):
        system = generate_multitier_system(num_applications=6, seed=3)
        assert system.num_applications == 6
        for app in system.applications:
            assert 2 <= app.num_tiers <= 3

    def test_deterministic(self):
        a = generate_multitier_system(num_applications=4, seed=9)
        b = generate_multitier_system(num_applications=4, seed=9)
        assert [app.rate_agreed for app in a.applications] == [
            app.rate_agreed for app in b.applications
        ]

    def test_price_scales_with_tiers(self):
        system = generate_multitier_system(num_applications=10, seed=3)
        for app in system.applications:
            base = app.utility_class.function.value(0.0)
            # Per-tier price is in the flat generator's (2, 4) range.
            assert 2.0 * app.num_tiers <= base <= 4.0 * app.num_tiers + 1e-9

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_multitier_system(num_applications=0)
        with pytest.raises(ValueError):
            generate_multitier_system(num_applications=2, min_tiers=3, max_tiers=2)
