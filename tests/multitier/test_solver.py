"""Tests for the multi-tier allocator and evaluator."""

import math

import pytest

from repro.config import SolverConfig
from repro.model.validation import find_violations
from repro.multitier import (
    MultiTierAllocator,
    evaluate_multitier_profit,
    expand_to_flat,
    generate_multitier_system,
)


@pytest.fixture(scope="module")
def solved():
    system = generate_multitier_system(num_applications=6, seed=5)
    result = MultiTierAllocator(SolverConfig(seed=1)).solve(system)
    return system, result


class TestMultiTierAllocator:
    def test_feasible(self, solved):
        system, result = solved
        assert result.breakdown.feasible, [
            str(v) for v in result.breakdown.violations
        ]

    def test_all_applications_served(self, solved):
        _, result = solved
        assert all(o.served for o in result.breakdown.applications.values())

    def test_colocation_holds(self, solved):
        _, result = solved
        for outcome in result.breakdown.applications.values():
            assert outcome.colocated
            assert outcome.cluster_id is not None

    def test_flat_resource_constraints_hold(self, solved):
        _, result = solved
        violations = find_violations(
            result.expansion.flat_system,
            result.allocation,
            require_all_served=False,
        )
        assert violations == []

    def test_profit_history_non_decreasing(self, solved):
        _, result = solved
        for earlier, later in zip(result.profit_history, result.profit_history[1:]):
            assert later >= earlier - 1e-9

    def test_reported_profit_matches_evaluator(self, solved):
        system, result = solved
        independent = evaluate_multitier_profit(
            system, result.expansion, result.allocation
        )
        assert result.profit == pytest.approx(independent.total_profit)

    def test_deterministic(self):
        system = generate_multitier_system(num_applications=4, seed=7)
        a = MultiTierAllocator(SolverConfig(seed=3)).solve(system)
        b = MultiTierAllocator(SolverConfig(seed=3)).solve(system)
        assert a.profit == pytest.approx(b.profit)


class TestMultiTierEvaluator:
    def test_response_is_sum_of_tiers(self, solved):
        system, result = solved
        for outcome in result.breakdown.applications.values():
            assert outcome.response_time == pytest.approx(
                sum(outcome.tier_response_times)
            )

    def test_unserved_app_flagged(self, solved):
        system, result = solved
        broken = result.allocation.copy()
        victim_app = system.applications[0]
        first_tier = result.expansion.tier_clients[victim_app.app_id][0]
        broken.unassign_client(first_tier)
        breakdown = evaluate_multitier_profit(system, result.expansion, broken)
        assert not breakdown.feasible
        outcome = breakdown.applications[victim_app.app_id]
        assert not outcome.served
        assert outcome.revenue == 0.0
        assert math.isinf(outcome.response_time)

    def test_colocation_violation_flagged(self, solved):
        system, result = solved
        expansion = result.expansion
        flat = expansion.flat_system
        # Find an app and move one tier's entry to another cluster.
        for app in system.applications:
            ids = expansion.tier_clients[app.app_id]
            if len(ids) < 2:
                continue
            moved = result.allocation.copy()
            victim = ids[0]
            current_cluster = moved.cluster_of[victim]
            other_cluster = next(
                k for k in flat.cluster_ids() if k != current_cluster
            )
            target_server = flat.cluster(other_cluster).server_ids()[0]
            moved.assign_client(victim, other_cluster)
            moved.set_entry(victim, target_server, 1.0, 0.3, 0.3)
            breakdown = evaluate_multitier_profit(system, expansion, moved)
            assert any("span clusters" in v.detail for v in breakdown.violations)
            return
        pytest.skip("no multi-tier app in the fixture")

    def test_summary_mentions_served_count(self, solved):
        system, result = solved
        assert "apps served" in result.breakdown.summary()


class TestEconomics:
    def test_multitier_profit_positive_by_default(self, solved):
        _, result = solved
        assert result.profit > 0

    def test_single_tier_app_matches_flat_semantics(self):
        """A 1-tier application is exactly a flat client."""
        system = generate_multitier_system(
            num_applications=5, seed=11, min_tiers=1, max_tiers=1
        )
        result = MultiTierAllocator(SolverConfig(seed=1)).solve(system)
        expansion = result.expansion
        for app in system.applications:
            outcome = result.breakdown.applications[app.app_id]
            assert len(expansion.tier_clients[app.app_id]) == 1
            assert outcome.served
