"""Focused tests for the reassignment pass and straggler handling."""

import numpy as np
import pytest

from repro.config import SolverConfig
from repro.core.allocator import ResourceAllocator
from repro.core.local_search import reassignment_pass
from repro.core.scoring import score
from repro.core.state import WorkingState
from repro.baselines.assignment import (
    build_allocation_for_assignment,
    random_assignment,
)
from repro.model.validation import find_violations
from repro.workload import generate_system
from repro.workload.generator import WorkloadConfig


class TestReassignmentPass:
    def test_delta_matches_score_change(self, small, solver_config):
        rng = np.random.default_rng(2)
        assignment = random_assignment(small, rng)
        state = build_allocation_for_assignment(small, assignment, solver_config)
        before = score(small, state.allocation)
        delta = reassignment_pass(state, solver_config, np.random.default_rng(1))
        after = score(small, state.allocation)
        assert after - before == pytest.approx(delta, abs=1e-9)

    def test_keeps_feasibility(self, small, solver_config):
        rng = np.random.default_rng(4)
        assignment = random_assignment(small, rng)
        state = build_allocation_for_assignment(small, assignment, solver_config)
        reassignment_pass(state, solver_config, np.random.default_rng(1))
        assert (
            find_violations(small, state.allocation, require_all_served=False)
            == []
        )

    def test_idempotent_at_local_optimum(self, small, solver_config):
        """Once no move helps, repeating the pass changes nothing."""
        rng = np.random.default_rng(5)
        assignment = random_assignment(small, rng)
        state = build_allocation_for_assignment(small, assignment, solver_config)
        for _ in range(6):
            delta = reassignment_pass(state, solver_config, np.random.default_rng(1))
            if delta <= 1e-9:
                break
        settled = state.snapshot()
        final_delta = reassignment_pass(
            state, solver_config, np.random.default_rng(1)
        )
        assert final_delta <= 1e-9
        assert state.allocation == settled


class TestStragglerHandling:
    def make_tight_system(self):
        """Tight capacity: the greedy pass usually strands someone."""
        config = WorkloadConfig(
            num_clusters=2,
            num_server_classes=3,
            num_utility_classes=2,
            servers_per_cluster=3,
        )
        return generate_system(num_clients=12, seed=7, config=config)

    def test_solver_serves_everyone_or_reports_honestly(self):
        system = self.make_tight_system()
        result = ResourceAllocator(SolverConfig(seed=0)).solve(system)
        served = sum(
            1
            for cid in system.client_ids()
            if result.allocation.entries_of_client(cid)
        )
        if served == system.num_clients:
            assert result.breakdown.feasible
        else:
            # Honesty: the breakdown must flag exactly the unserved ones.
            unserved = {
                v.subject
                for v in result.breakdown.violations
                if v.constraint == "(6)"
            }
            assert len(unserved) == system.num_clients - served

    def test_no_resource_violations_even_when_tight(self):
        system = self.make_tight_system()
        result = ResourceAllocator(SolverConfig(seed=0)).solve(system)
        hard = [
            v
            for v in find_violations(
                system, result.allocation, require_all_served=False
            )
        ]
        assert hard == []
