"""Tests for the sharded hierarchical solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SolverConfig
from repro.core import distributed
from repro.core.allocator import ResourceAllocator
from repro.core.distributed import system_fingerprint
from repro.core.sharded import (
    ShardedAllocator,
    ShardSpec,
    _coordination_prices,
    _reassign_stragglers,
    _ShardRuntime,
    _strip_clients,
    plan_shards,
    shard_subsystem,
)
from repro.io import allocation_to_dict, dump_canonical, system_to_dict
from repro.model import Client
from repro.model.allocation import Allocation, AllocationRows
from repro.model.validation import find_violations
from repro.workload import generate_system


def _manifest(allocation: Allocation) -> str:
    return dump_canonical(allocation_to_dict(allocation))


class TestPlanShards:
    def test_partition_is_exact(self, generated_20):
        specs = plan_shards(generated_20, 4)
        clients = [cid for spec in specs for cid in spec.client_ids]
        servers = [sid for spec in specs for sid in spec.server_ids]
        assert sorted(clients) == sorted(generated_20.client_ids())
        assert sorted(servers) == sorted(
            s.server_id for s in generated_20.servers()
        )
        assert len(clients) == len(set(clients))
        assert len(servers) == len(set(servers))

    def test_balanced_within_one(self, generated_20):
        specs = plan_shards(generated_20, 3)
        client_sizes = [len(spec.client_ids) for spec in specs]
        server_sizes = [len(spec.server_ids) for spec in specs]
        assert max(client_sizes) - min(client_sizes) <= 1
        assert max(server_sizes) - min(server_sizes) <= 1

    def test_every_shard_sees_every_cluster(self, generated_20):
        # Striding the cluster-ordered server list deals each cluster's
        # servers round-robin: with >= num_shards servers per cluster,
        # every shard holds a slice of every cluster.
        specs = plan_shards(generated_20, 2)
        all_clusters = set(generated_20.cluster_ids())
        for spec in specs:
            seen = {
                generated_20.cluster_of_server(sid) for sid in spec.server_ids
            }
            assert seen == all_clusters

    def test_clamps_to_population(self, two_cluster_system):
        specs = plan_shards(two_cluster_system, 99)
        # 3 clients / 4 servers -> at most 3 shards.
        assert len(specs) == 3
        assert all(spec.client_ids for spec in specs)
        assert all(spec.server_ids for spec in specs)

    def test_deterministic(self, generated_20):
        assert plan_shards(generated_20, 4) == plan_shards(generated_20, 4)


class TestShardSubsystem:
    def test_shares_objects_and_preserves_ids(self, generated_20):
        # The object path never copies Server objects; exercise it on a
        # materialized twin (the generated fixture is array-backed).
        objects = generated_20.materialize()
        spec = plan_shards(objects, 4)[1]
        sub = shard_subsystem(objects, spec)
        assert {c.client_id for c in sub.clients} == set(spec.client_ids)
        assert {s.server_id for s in sub.servers()} == set(spec.server_ids)
        for server in sub.servers():
            assert server is objects.server(server.server_id)
            assert sub.cluster_of_server(
                server.server_id
            ) == objects.cluster_of_server(server.server_id)

    def test_whole_cluster_reuses_cluster_object(self, generated_20):
        objects = generated_20.materialize()
        spec = ShardSpec(
            shard_id=0,
            client_ids=tuple(objects.client_ids()[:4]),
            server_ids=tuple(objects.cluster(0).server_ids()),
        )
        sub = shard_subsystem(objects, spec)
        assert sub.cluster(0) is objects.cluster(0)

    def test_array_backed_slice_matches_object_path(self, generated_20):
        # The SoA fancy-index slice and the object path must describe the
        # same shard instance field for field.
        for spec in plan_shards(generated_20, 3):
            soa = shard_subsystem(generated_20, spec)
            obj = shard_subsystem(generated_20.materialize(), spec)
            assert dump_canonical(system_to_dict(soa)) == dump_canonical(
                system_to_dict(obj)
            )

    def test_omits_empty_clusters(self, two_cluster_system):
        spec = ShardSpec(shard_id=0, client_ids=(0,), server_ids=(0, 1))
        sub = shard_subsystem(two_cluster_system, spec)
        assert sub.cluster_ids() == [0]


class TestRowsRoundTrip:
    def test_to_rows_from_rows_identity(self, generated_20, fast_config):
        result = ResourceAllocator(fast_config).solve(generated_20)
        rows = result.allocation.to_rows()
        rebuilt = Allocation.from_rows(rows)
        assert _manifest(rebuilt) == _manifest(result.allocation)
        # Iteration order (and hence canonical replay order) survives too.
        assert list(rebuilt.cluster_of) == list(result.allocation.cluster_of)

    def test_concatenate_matches_union(self, generated_20, fast_config):
        result = ResourceAllocator(fast_config).solve(generated_20)
        rows = result.allocation.to_rows()
        half = len(rows.assign_clients) // 2
        first = set(rows.assign_clients[:half].tolist())
        part_a = _strip_clients(
            rows, set(rows.assign_clients.tolist()) - first
        )
        part_b = _strip_clients(rows, first)
        merged = Allocation.from_rows(
            AllocationRows.concatenate([part_a, part_b])
        )
        assert allocation_to_dict(merged) == allocation_to_dict(
            result.allocation
        )


class TestStripClients:
    def test_drops_assignments_and_entries(self, generated_20, fast_config):
        result = ResourceAllocator(fast_config).solve(generated_20)
        rows = result.allocation.to_rows()
        victim = int(rows.assign_clients[0])
        stripped = Allocation.from_rows(_strip_clients(rows, {victim}))
        assert not stripped.is_assigned(victim)
        assert not stripped.entries_of_client(victim)
        survivors = set(rows.assign_clients.tolist()) - {victim}
        assert set(stripped.cluster_of) == survivors

    def test_empty_drop_is_identity(self, generated_20, fast_config):
        result = ResourceAllocator(fast_config).solve(generated_20)
        rows = result.allocation.to_rows()
        assert _strip_clients(rows, set()) is rows


class TestShardedAllocator:
    def test_feasible_and_audit_clean(self, generated_20):
        config = SolverConfig(seed=1, num_shards=2, num_workers=2)
        with ShardedAllocator(config) as allocator:
            result = allocator.solve(generated_20)
        assert result.breakdown.feasible
        assert find_violations(generated_20, result.allocation) == []

    def test_deterministic_across_solves(self, generated_20):
        config = SolverConfig(seed=3, num_shards=2, num_workers=2)
        with ShardedAllocator(config) as allocator:
            first = allocator.solve(generated_20)
            second = allocator.solve(generated_20)
        assert _manifest(first.allocation) == _manifest(second.allocation)
        assert first.profit == second.profit

    def test_quality_comparable_to_unsharded(self, generated_20):
        config = SolverConfig(seed=1, num_shards=2, num_workers=2)
        with ShardedAllocator(config) as allocator:
            sharded = allocator.solve(generated_20)
        unsharded = ResourceAllocator(SolverConfig(seed=1)).solve(generated_20)
        assert sharded.profit >= unsharded.profit * 0.9

    def test_single_shard_degenerates_to_plain_heuristic(self, generated_20):
        config = SolverConfig(seed=1, num_shards=1)
        with ShardedAllocator(config) as allocator:
            sharded = allocator.solve(generated_20)
        plain = ResourceAllocator(SolverConfig(seed=1)).solve(generated_20)
        assert _manifest(sharded.allocation) == _manifest(plain.allocation)

    def test_profit_history_tracks_rounds(self, generated_20):
        config = SolverConfig(
            seed=1, num_shards=2, num_workers=2, shard_coordination_rounds=2
        )
        with ShardedAllocator(config) as allocator:
            result = allocator.solve(generated_20)
        # 1 (round 0) + 2 coordination rounds, plus >= 1 polish round.
        assert len(result.profit_history) >= 4
        assert result.profit >= result.profit_history[0] - 1e-9


class TestShardRuntime:
    """In-process worker runtime: warm rounds must be cache-warm."""

    def _runtime(self, system, num_shards=2):
        spec = plan_shards(system, num_shards)[0]
        config = SolverConfig(
            seed=2, num_initial_solutions=1, max_improvement_rounds=3
        )
        return _ShardRuntime(system, spec, config)

    def test_solve_then_export_is_feasible(self, generated_20):
        runtime = self._runtime(generated_20)
        result = runtime.solve_initial(seed=11, prices=None)
        sub = runtime.sub_system
        merged = Allocation.from_rows(result.rows)
        assert find_violations(sub, merged, require_all_served=False) == []
        assert result.nonce == runtime.nonce

    def test_warm_round_has_no_curve_misses(self, generated_20):
        runtime = self._runtime(generated_20)
        runtime.solve_initial(seed=11, prices=None)
        # Round 1 populates the runtime's cache (solve_initial builds its
        # own internal state, so the resident cache starts cold).
        runtime.improve_round(seed=13, prices=None)
        before = dict(runtime.state.cache.stats)
        runtime.improve_round(seed=17, prices=None)
        after = runtime.state.cache.stats
        # Unchanged prices keep every curve block valid: revalidation may
        # patch rows but never rebuilds a block from scratch.
        assert after["curve_misses"] == before["curve_misses"]
        assert after["curve_hits"] > before["curve_hits"]

    def test_price_change_clears_curve_cache(self, generated_20):
        runtime = self._runtime(generated_20)
        runtime.solve_initial(seed=11, prices=None)
        runtime.improve_round(seed=13, prices=None)
        before = dict(runtime.state.cache.stats)
        prices = tuple(
            (kid, 0.5) for kid in sorted(runtime.sub_system.cluster_ids())
        )
        runtime.improve_round(seed=17, prices=prices)
        after = runtime.state.cache.stats
        # CurveBlock validation covers capacity inputs, not prices, so the
        # runtime must drop the cache wholesale on a price change.
        assert after["curve_misses"] > before["curve_misses"]

    def test_marginal_response_covers_clusters(self, generated_20):
        runtime = self._runtime(generated_20)
        result = runtime.solve_initial(seed=11, prices=None)
        assert set(result.marginal) == set(runtime.sub_system.cluster_ids())


class TestCoordination:
    def _result_stub(self, shard_id, runtime_result):
        return runtime_result

    def test_prices_rise_with_utilization(self, generated_20):
        runtime = _ShardRuntime(
            generated_20,
            plan_shards(generated_20, 2)[0],
            SolverConfig(seed=2, num_initial_solutions=1, max_improvement_rounds=2),
        )
        result = runtime.solve_initial(seed=7, prices=None)
        config = SolverConfig(shard_price_gain=0.5)
        prices = _coordination_prices(config, [result])
        base = config.bandwidth_shadow_price
        for kid, price in prices:
            usage = result.usage[kid]
            expected = base * (
                1.0
                + 0.5 * usage.used_bandwidth / max(usage.total_servers, 1)
            )
            assert price == pytest.approx(expected)
            assert price >= base

    def test_zero_gain_reproduces_base_price(self, generated_20):
        runtime = _ShardRuntime(
            generated_20,
            plan_shards(generated_20, 2)[0],
            SolverConfig(seed=2, num_initial_solutions=1, max_improvement_rounds=2),
        )
        result = runtime.solve_initial(seed=7, prices=None)
        config = SolverConfig(shard_price_gain=0.0)
        for _, price in _coordination_prices(config, [result]):
            assert price == pytest.approx(config.bandwidth_shadow_price)

    def test_straggler_moves_to_roomier_shard(self, generated_20):
        config = SolverConfig(
            seed=2, num_initial_solutions=1, max_improvement_rounds=2
        )
        specs = plan_shards(generated_20, 2)
        results = []
        for spec in specs:
            runtime = _ShardRuntime(generated_20, spec, config)
            results.append(runtime.solve_initial(seed=7, prices=None))
        # Pretend shard 0's first client went unplaced.
        victim = specs[0].client_ids[0]
        from dataclasses import replace

        doctored = replace(results[0], unplaced=(victim,))
        new_specs, moved_from = _reassign_stragglers(
            generated_20, specs, [doctored, results[1]]
        )
        if moved_from:
            assert moved_from == {0: {victim}}
            assert victim in new_specs[1].client_ids
            assert victim not in new_specs[0].client_ids
            assert new_specs[0].server_ids == specs[0].server_ids
        else:
            # Legitimate outcome: shard 1 had no room/profit headroom.
            assert new_specs == specs

    def test_no_stragglers_is_identity(self, generated_20):
        config = SolverConfig(
            seed=2, num_initial_solutions=1, max_improvement_rounds=2
        )
        specs = plan_shards(generated_20, 2)
        results = [
            _ShardRuntime(generated_20, spec, config).solve_initial(
                seed=7, prices=None
            )
            for spec in specs
        ]
        for result in results:
            assert result.unplaced == ()
        new_specs, moved_from = _reassign_stragglers(
            generated_20, specs, results
        )
        assert new_specs is specs
        assert moved_from == {}


class TestFingerprintMemo:
    def test_repeated_calls_hit_memo(self, generated_20):
        first = system_fingerprint(generated_20)
        slot = distributed._FINGERPRINT_MEMO[id(generated_20)]
        assert system_fingerprint(generated_20) == first
        # Same memo slot object: the second call did not recompute.
        assert distributed._FINGERPRINT_MEMO[id(generated_20)] is slot

    def test_membership_edit_invalidates(self, generated_20, gold_class):
        before = system_fingerprint(generated_20)
        new_id = max(generated_20.client_ids()) + 1
        generated_20.add_client(
            Client(
                client_id=new_id,
                utility_class=gold_class,
                rate_agreed=1.0,
                t_proc=0.4,
                t_comm=0.4,
                storage_req=0.5,
            )
        )
        after = system_fingerprint(generated_20)
        assert after != before
        generated_20.remove_client(new_id)
        assert system_fingerprint(generated_20) == before

    def test_dead_system_evicted(self, gold_class):
        import gc

        system = generate_system(num_clients=4, seed=9)
        key = id(system)
        system_fingerprint(system)
        assert key in distributed._FINGERPRINT_MEMO
        del system
        gc.collect()
        assert key not in distributed._FINGERPRINT_MEMO


class TestTwoTierMergeParity:
    """The level-2 row merge must be bitwise-identical to the flat merge.

    Shard row tables are produced once (a real solve per shard of a
    fixed plan); Hypothesis then draws the super-shard grouping and a
    mutate/restore interleaving — each touched shard's rows are pushed
    through a :class:`WorkingState`, mutated, snapshot-restored and
    re-exported before merging — and the grouped pairwise concatenation
    must reproduce the flat concatenation column for column, bit for
    bit.
    """

    _pieces = None

    @classmethod
    def _shard_pieces(cls):
        if cls._pieces is None:
            system = generate_system(num_clients=20, seed=5)
            config = SolverConfig(
                seed=0,
                num_initial_solutions=1,
                alpha_granularity=5,
                max_improvement_rounds=2,
            )
            specs = plan_shards(system, 5)
            pieces = []
            for spec in specs:
                sub = shard_subsystem(system, spec)
                result = ResourceAllocator(config).solve(sub)
                pieces.append((spec, sub, result.allocation.to_rows()))
            cls._pieces = (system, pieces)
        return cls._pieces

    @staticmethod
    def _assert_bitwise_equal(a: AllocationRows, b: AllocationRows) -> None:
        for field in (
            "assign_clients",
            "assign_clusters",
            "entry_clients",
            "entry_servers",
            "alpha",
            "phi_p",
            "phi_b",
        ):
            left = getattr(a, field)
            right = getattr(b, field)
            assert left.dtype == right.dtype
            assert left.tobytes() == right.tobytes()

    @settings(deadline=None, max_examples=30)
    @given(data=st.data())
    def test_grouped_merge_bitwise_matches_flat(self, data):
        from repro.core.sharded import _super_shard_groups
        from repro.core.state import WorkingState

        _, pieces = self._shard_pieces()
        count = len(pieces)
        cuts = data.draw(
            st.sets(st.integers(1, count - 1), max_size=count - 1),
            label="group cuts",
        )
        bounds = [0, *sorted(cuts), count]
        groups = [range(a, b) for a, b in zip(bounds[:-1], bounds[1:])]

        rows_by_shard = []
        for index, (spec, sub, rows) in enumerate(pieces):
            interleave = data.draw(
                st.booleans(), label=f"interleave shard {index}"
            )
            if interleave:
                # Mutate-then-restore round trip: the exported table must
                # be byte-identical to what went in, so the merge cannot
                # depend on a shard's mutation history.
                state = WorkingState(sub)
                state.restore_rows(rows)
                saved = state.snapshot()
                victim = int(rows.entry_clients[0])
                state.clear_client(victim)
                state.restore(saved)
                rows = state.export_rows()
                self._assert_bitwise_equal(rows, pieces[index][2])
            rows_by_shard.append(rows)

        flat = AllocationRows.concatenate(rows_by_shard)
        grouped = AllocationRows.concatenate(
            [
                AllocationRows.concatenate([rows_by_shard[i] for i in group])
                for group in groups
            ]
        )
        self._assert_bitwise_equal(grouped, flat)

        # The production grouping (contiguous ~sqrt partition) is one of
        # the drawn shapes; pin it explicitly too.
        production = AllocationRows.concatenate(
            [
                AllocationRows.concatenate([rows_by_shard[i] for i in group])
                for group in _super_shard_groups(count)
            ]
        )
        self._assert_bitwise_equal(production, flat)


class TestSolverTopologies:
    def _config(self, **overrides):
        base = dict(
            seed=3,
            num_shards=4,
            num_workers=1,
            num_initial_solutions=1,
            max_improvement_rounds=2,
            shard_coordination_rounds=1,
            shard_final_rounds=1,
        )
        base.update(overrides)
        return SolverConfig(**base)

    def test_two_tier_solve_matches_flat(self, generated_20):
        with ShardedAllocator(self._config()) as allocator:
            flat = allocator.solve(generated_20)
        with ShardedAllocator(
            self._config(shard_levels=2)
        ) as allocator:
            tiered = allocator.solve(generated_20)
        assert tiered.profit == flat.profit
        assert tiered.profit_history == flat.profit_history
        assert allocation_to_dict(tiered.allocation) == allocation_to_dict(
            flat.allocation
        )

    def test_inline_executor_matches_pool(self, generated_20):
        with ShardedAllocator(self._config(num_workers=1)) as allocator:
            inline = allocator.solve(generated_20)
        with ShardedAllocator(self._config(num_workers=2)) as allocator:
            pooled = allocator.solve(generated_20)
        assert inline.profit == pooled.profit
        assert allocation_to_dict(inline.allocation) == allocation_to_dict(
            pooled.allocation
        )

    def test_parallel_polish_is_audit_clean(self, generated_20):
        with ShardedAllocator(
            self._config(parallel_polish=True, shard_final_rounds=2)
        ) as allocator:
            result = allocator.solve(generated_20)
        assert (
            find_violations(generated_20, result.allocation) == []
        )

    def test_telemetry_recorded(self, generated_20):
        allocator = ShardedAllocator(self._config())
        with allocator:
            allocator.solve(generated_20)
        assert allocator.last_telemetry["shard_count"] == 4
        assert allocator.last_telemetry["shard_solve_seconds_total"] > 0.0
