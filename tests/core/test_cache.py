"""Tests for the cross-move memoization cache (MemoCache / CurveBlock).

The cache's contract is *bitwise transparency*: every value served from
it must be exactly what a fresh evaluation would have produced.  These
tests pin the machinery that contract rests on — two-tier curve-block
validation (epoch filter, then value compare), per-row content versions
gating the DP memo, client rate-epoch tokens, joint block/DP eviction,
and survival of blocks across snapshot/restore churn.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SolverConfig
from repro.core.assign import (
    _client_curve_block,
    apply_placement,
    best_placement,
)
from repro.core.cache import MemoCache, maybe_attach_cache
from repro.core.scoring import score_state
from repro.core.state import WorkingState
from repro.exceptions import SolverError


@pytest.fixture
def cached_state(two_cluster_system, solver_config):
    state = WorkingState(two_cluster_system)
    cache = maybe_attach_cache(state, solver_config)
    assert cache is not None
    return state, cache


class TestAttachment:
    def test_attach_requires_cache_and_vectorized(self, two_cluster_system):
        state = WorkingState(two_cluster_system)
        assert maybe_attach_cache(state, SolverConfig(seed=0)) is not None

    def test_no_cache_when_disabled(self, two_cluster_system):
        state = WorkingState(two_cluster_system)
        cfg = SolverConfig(seed=0, use_curve_cache=False)
        assert maybe_attach_cache(state, cfg) is None
        assert state.cache is None

    def test_no_cache_on_scalar_path(self, two_cluster_system):
        # The scalar path stays cache-free: it is the reference oracle
        # the differential harness compares the cached path against.
        state = WorkingState(two_cluster_system)
        cfg = SolverConfig(seed=0, use_vectorized_kernels=False)
        assert maybe_attach_cache(state, cfg) is None

    def test_cache_is_single_owner(self, two_cluster_system, solver_config):
        state = WorkingState(two_cluster_system)
        cache = maybe_attach_cache(state, solver_config)
        other = WorkingState(two_cluster_system)
        with pytest.raises(SolverError):
            cache.attach(other)


class TestCurveBlockValidation:
    def test_rebuild_then_hit(self, cached_state, solver_config):
        state, cache = cached_state
        client = state.system.clients[0]
        block = _client_curve_block(state, client, solver_config, cache)
        assert cache.stats["curve_misses"] == 1
        again = _client_curve_block(state, client, solver_config, cache)
        assert again is block
        assert cache.stats["curve_hits"] == 1
        assert cache.stats["curve_patches"] == 0

    def test_epoch_churn_with_restored_values_is_a_hit(
        self, cached_state, solver_config
    ):
        # A rejected move bumps server epochs but returns the aggregates
        # to bitwise the same values; the block must revalidate, not
        # recompute (this is what makes warm replay passes all-hit).
        state, cache = cached_state
        client = state.system.clients[0]
        block = _client_curve_block(state, client, solver_config, cache)
        state.assign_client(1, 0)
        state.set_entry(1, 0, 1.0, 0.3, 0.2)
        state.remove_entry(1, 0)
        state.unassign_client(1)
        assert state.server_epoch(0) > 0  # epochs did move
        again = _client_curve_block(state, client, solver_config, cache)
        assert again is block
        assert cache.stats["curve_patches"] == 0
        assert not block.row_version.any()

    def test_changed_input_patches_only_that_row(
        self, cached_state, solver_config
    ):
        state, cache = cached_state
        client = state.system.clients[0]
        block = _client_curve_block(state, client, solver_config, cache)
        state.assign_client(1, 0)
        state.set_entry(1, 0, 1.0, 0.3, 0.2)  # server 0 genuinely changed
        patched = _client_curve_block(state, client, solver_config, cache)
        assert patched is block
        assert cache.stats["curve_patches"] == 1
        idx = state._sid_index[0]
        assert block.row_version[idx] == 1
        others = np.delete(np.arange(len(block.row_version)), idx)
        assert not block.row_version[others].any()

    def test_patched_block_matches_fresh_build_bitwise(
        self, two_cluster_system, solver_config
    ):
        state = WorkingState(two_cluster_system)
        cache = maybe_attach_cache(state, solver_config)
        client = two_cluster_system.clients[0]
        _client_curve_block(state, client, solver_config, cache)
        state.assign_client(1, 0)
        state.set_entry(1, 0, 1.0, 0.3, 0.2)
        patched = _client_curve_block(state, client, solver_config, cache)

        oracle_state = WorkingState(two_cluster_system, state.snapshot())
        oracle_cache = maybe_attach_cache(oracle_state, solver_config)
        fresh = _client_curve_block(
            oracle_state, client, solver_config, oracle_cache
        )
        assert np.array_equal(patched.values, fresh.values)
        assert np.array_equal(patched.phi_p, fresh.phi_p)
        assert np.array_equal(patched.phi_b, fresh.phi_b)
        assert np.array_equal(patched.row_ok, fresh.row_ok)

    def test_client_token_bump_forces_rebuild(self, cached_state, solver_config):
        state, cache = cached_state
        client = state.system.clients[0]
        _client_curve_block(state, client, solver_config, cache)
        cache.invalidate_client(client.client_id)
        _client_curve_block(state, client, solver_config, cache)
        assert cache.stats["curve_misses"] == 2
        assert cache.stats["client_epoch_bumps"] == 1

    def test_eviction_clears_blocks_and_dp_together(
        self, two_cluster_system, solver_config
    ):
        # A rebuilt block restarts row versions at zero; stale DP tables
        # keyed on the old block's versions must not survive to alias it.
        state = WorkingState(two_cluster_system)
        cache = MemoCache(solver_config, max_curve_entries=1)
        state.attach_cache(cache)
        cache.attach(state)
        for client in two_cluster_system.clients[:2]:
            best_placement(state, client, solver_config)
        assert cache.stats["evictions"] >= 1
        assert len(cache._blocks) <= 1
        surviving = set(cache._blocks)
        assert all(key[0] in surviving for key in cache._dp)


class TestDpMemo:
    def test_repeat_placement_hits_and_returns_same_result(
        self, cached_state, solver_config
    ):
        state, cache = cached_state
        client = state.system.clients[0]
        first = best_placement(state, client, solver_config)
        misses = cache.stats["dp_misses"]
        second = best_placement(state, client, solver_config)
        assert cache.stats["dp_hits"] > 0
        assert cache.stats["dp_misses"] == misses
        assert second is first  # memo stores the finished placement

    def test_memoized_placement_matches_uncached_bitwise(
        self, two_cluster_system, solver_config
    ):
        state = WorkingState(two_cluster_system)
        maybe_attach_cache(state, solver_config)
        client = two_cluster_system.clients[0]
        best_placement(state, client, solver_config)  # prime the memo
        cached = best_placement(state, client, solver_config)

        off = SolverConfig(seed=0, use_curve_cache=False)
        plain = best_placement(WorkingState(two_cluster_system), client, off)
        assert cached.entries == plain.entries
        assert cached.estimated_profit == plain.estimated_profit

    def test_row_change_invalidates_dp(self, cached_state, solver_config):
        state, cache = cached_state
        client = state.system.clients[0]
        placement = best_placement(state, client, solver_config)
        apply_placement(state, placement)
        misses = cache.stats["dp_misses"]
        other = state.system.clients[1]
        best_placement(state, other, solver_config)
        assert cache.stats["dp_misses"] > misses  # new rows, no stale reuse


class TestStateReset:
    def test_restore_keeps_blocks_serving(self, cached_state, solver_config):
        # note_state_reset no longer drops the block store: restore bumps
        # every epoch, but value validation finds the inputs came back.
        state, cache = cached_state
        client = state.system.clients[0]
        start = state.snapshot()
        placement = best_placement(state, client, solver_config)
        apply_placement(state, placement)
        state.restore(start)
        assert cache._blocks  # survived the reset
        patches = cache.stats["curve_patches"]
        misses = cache.stats["curve_misses"]
        _client_curve_block(state, client, solver_config, cache)
        assert cache.stats["curve_misses"] == misses
        assert cache.stats["curve_patches"] == patches

    def test_restore_drops_incumbent_store(self, cached_state, solver_config):
        state, cache = cached_state
        cache.store_incumbent(0, state.server_epoch(0), (0.1, 0.2))
        state.restore(state.snapshot())
        assert not cache._incumbent

    def test_cached_solve_is_transparent_after_restore(
        self, two_cluster_system, solver_config
    ):
        state = WorkingState(two_cluster_system)
        maybe_attach_cache(state, solver_config)
        start = state.snapshot()
        for client in two_cluster_system.clients:
            placement = best_placement(state, client, solver_config)
            if placement is not None:
                apply_placement(state, placement)
        state.restore(start)
        # Replay against a cache-off state: every step must agree bitwise.
        off_cfg = SolverConfig(seed=0, use_curve_cache=False)
        off = WorkingState(two_cluster_system)
        for client in two_cluster_system.clients:
            warm = best_placement(state, client, solver_config)
            plain = best_placement(off, client, off_cfg)
            assert (warm is None) == (plain is None)
            if warm is not None:
                assert warm.entries == plain.entries
                apply_placement(state, warm)
                apply_placement(off, plain)
        assert score_state(state) == score_state(off)
        assert state.allocation == off.allocation


class TestReporting:
    def test_summary_mentions_every_section(self, cached_state, solver_config):
        state, cache = cached_state
        best_placement(state, state.system.clients[0], solver_config)
        text = cache.summary()
        for word in ("curve", "dp", "activation", "incumbent", "dispersion",
                     "patches", "evictions"):
            assert word in text

    def test_hit_rate_tracks_stats(self, cached_state, solver_config):
        state, cache = cached_state
        client = state.system.clients[0]
        _client_curve_block(state, client, solver_config, cache)
        assert cache.hit_rate("curve") == 0.0
        _client_curve_block(state, client, solver_config, cache)
        assert cache.hit_rate("curve") == 0.5
